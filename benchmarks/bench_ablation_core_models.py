"""Ablation: swapping the core performance model (paper §3.1).

The paper's modularity claim, demonstrated: replacing the in-order core
model with the out-of-order one changes every clock-derived quantity —
simulated run-time, memory and network utilization — while the
functional simulation (and therefore program results) is untouched.
Memory-bound kernels gain the most from the OoO window's memory-level
parallelism; compute-bound kernels gain roughly the dispatch width.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

from conftest import paper_config, save_artifact

WORKLOADS = ["fft", "fmm", "ocean_cont", "radix"]
NTHREADS = 8
SCALE = 0.5


def run_cycles(name: str, model: str):
    config = paper_config(num_tiles=NTHREADS)
    config.core.model = model
    simulator = Simulator(config)
    program = get_workload(name).main(nthreads=NTHREADS, scale=SCALE)
    result = simulator.run(program)
    return result.simulated_cycles, result.main_result


@pytest.mark.benchmark(group="ablations")
def test_ablation_core_models(benchmark):
    data = {}

    def run_all():
        for name in WORKLOADS:
            for model in ("in_order", "out_of_order"):
                data[(name, model)] = run_cycles(name, model)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("Ablation: in-order vs out-of-order core model "
                  "(simulated cycles)",
                  ["app", "in-order", "out-of-order", "OoO speedup"])
    for name in WORKLOADS:
        in_order = data[(name, "in_order")][0]
        ooo = data[(name, "out_of_order")][0]
        table.add_row(name, in_order, ooo, f"{in_order / ooo:.2f}x")
    save_artifact("ablation_core_models", table)

    for name in WORKLOADS:
        # Functional results identical; OoO never slower.
        assert data[(name, "in_order")][1] == \
            data[(name, "out_of_order")][1]
        assert data[(name, "out_of_order")][0] <= \
            data[(name, "in_order")][0]
    # The memory-bound kernel gains more than the compute-bound one.
    gain = {n: data[(n, "in_order")][0] / data[(n, "out_of_order")][0]
            for n in WORKLOADS}
    assert gain["fft"] > gain["fmm"] * 0.9
