"""Ablations on the simulation engine itself.

* **Dispatch quantum vs. limited-directory contention** — the Figure 9
  pointer thrashing requires near-instruction-granular interleaving of
  target threads; coarse quanta give each thread artificial temporal
  locality on shared lines and hide the contention (this is why
  bench_fig9 runs with a 100-instruction quantum).
* **Network model cost** — magic vs mesh vs mesh-with-contention on a
  communication-heavy kernel: modelled packet latency and simulated
  run-time respond in order.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

from conftest import paper_config, save_artifact

OPTIONS = 1024
TILES = 32
QUANTA = [100, 500, 2000, 10_000]


def dir4nb_penalty(quantum: int) -> float:
    """Slowdown of Dir4NB relative to full-map at one quantum size."""
    rois = {}
    for scheme in ("limited", "full_map"):
        config = paper_config(num_tiles=TILES)
        config.memory.directory_type = scheme
        config.memory.directory_max_sharers = 4
        config.host.quantum_instructions = quantum
        simulator = Simulator(config)
        program = get_workload("blackscholes").main(nthreads=TILES,
                                                    options=OPTIONS)
        rois[scheme] = simulator.run(program).parallel_cycles
    return rois["limited"] / rois["full_map"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_quantum_vs_contention(benchmark):
    penalties = {}

    def run_all():
        for quantum in QUANTA:
            penalties[quantum] = dir4nb_penalty(quantum)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("Ablation: dispatch quantum vs Dir4NB contention "
                  "(blackscholes, 32 tiles)",
                  ["quantum (instructions)",
                   "Dir4NB / full-map run-time"])
    for quantum in QUANTA:
        table.add_row(quantum, f"{penalties[quantum]:.2f}x")
    save_artifact("ablation_quantum", table)

    # Fine quanta expose the thrashing; coarse quanta hide it.
    assert penalties[100] > penalties[10_000]
    assert penalties[100] > 1.5


@pytest.mark.benchmark(group="ablations")
def test_ablation_network_models(benchmark):
    results = {}

    def run_all():
        for model in ("magic", "mesh", "mesh_contention"):
            config = paper_config(num_tiles=16)
            config.network.memory_model = model
            simulator = Simulator(config)
            program = get_workload("fft").main(nthreads=16, scale=0.5)
            result = simulator.run(program)
            packets = result.counter("network.memory_net.packets")
            latency = result.counter(
                "network.memory_net.total_latency_cycles")
            results[model] = (latency / packets if packets else 0.0,
                              result.simulated_cycles)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("Ablation: memory-network model (fft, 16 tiles)",
                  ["model", "mean packet latency", "simulated cycles"])
    for model, (latency, cycles) in results.items():
        table.add_row(model, f"{latency:.1f}", cycles)
    save_artifact("ablation_network_models", table)

    assert results["magic"][0] == 0.0
    assert results["mesh"][0] > 0.0
    assert results["mesh_contention"][0] > results["mesh"][0]
    # More modelled latency -> longer simulated run-time.
    assert results["mesh"][1] > results["magic"][1]
