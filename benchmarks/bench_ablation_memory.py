"""Ablations on the memory system's design choices.

Two mechanisms DESIGN.md calls out are toggled/swept here:

* **Clean-shared forwarding** (``MemoryConfig.forward_shared_reads``) —
  with forwarding off, every S-state read miss re-reads the home DRAM
  controller; the widely read-shared globals of blackscholes then
  serialize behind one controller's 1/N bandwidth slice and the
  Figure 9 scaling knee collapses.
* **DRAM bandwidth partitioning** (paper §4.4) — the per-controller
  slice shrinks as 1/N with tile count, so memory service time grows
  linearly with tiles: the flattening mechanism behind Figure 9.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

from conftest import paper_config, save_artifact

TILE_COUNTS = [1, 8, 32]
OPTIONS = 1024


def run_roi(tiles: int, forward: bool) -> int:
    config = paper_config(num_tiles=tiles)
    config.memory.forward_shared_reads = forward
    config.host.quantum_instructions = 200
    simulator = Simulator(config)
    program = get_workload("blackscholes").main(nthreads=tiles,
                                                options=OPTIONS)
    return simulator.run(program).parallel_cycles


@pytest.mark.benchmark(group="ablations")
def test_ablation_shared_read_forwarding(benchmark):
    cycles = {}

    def run_all():
        for forward in (True, False):
            for tiles in TILE_COUNTS:
                cycles[(forward, tiles)] = run_roi(tiles, forward)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("Ablation: clean-shared cache-to-cache forwarding "
                  "(blackscholes ROI speedup vs 1 tile)",
                  ["tiles", "forwarding on", "forwarding off"])
    for tiles in TILE_COUNTS:
        on = cycles[(True, 1)] / cycles[(True, tiles)]
        off = cycles[(False, 1)] / cycles[(False, tiles)]
        table.add_row(tiles, f"{on:.2f}x", f"{off:.2f}x")
    save_artifact("ablation_forwarding", table)

    on32 = cycles[(True, 1)] / cycles[(True, 32)]
    off32 = cycles[(False, 1)] / cycles[(False, 32)]
    # Forwarding is what buys high-tile-count scaling.
    assert on32 > 1.5 * off32


@pytest.mark.benchmark(group="ablations")
def test_ablation_dram_service_scaling(benchmark):
    """Per-controller service time grows ~linearly with tile count."""
    from repro.common.config import DramConfig
    from repro.common.ids import TileId
    from repro.common.stats import StatGroup
    from repro.memory.dram import DramController
    from repro.sync.progress import ProgressEstimator

    def service(tiles: int) -> int:
        controller = DramController(TileId(0), DramConfig(), tiles,
                                    10 ** 9, ProgressEstimator(8),
                                    StatGroup("d"))
        return controller.service_cycles(64)

    counts = [1, 16, 64, 256, 1024]
    services = {}

    def run_all():
        for n in counts:
            services[n] = service(n)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("Ablation: DRAM service time vs tile count "
                  "(64 B line, 5.13 GB/s total)",
                  ["tiles", "service cycles/line"])
    for n in counts:
        table.add_row(n, services[n])
    save_artifact("ablation_dram_partitioning", table)

    # Linear-in-tiles growth (the paper's static partitioning).
    assert services[64] == pytest.approx(64 * services[1], rel=0.10)
    assert services[1024] == pytest.approx(1024 * services[1], rel=0.10)


def _private_rmw(ctx):
    """Each thread reads its own block, then stores back-to-back.

    The dense store phase fills the store buffer, so MSI's upgrade
    round trips stall the pipeline; under MESI the lines were granted
    Exclusive during the read phase and every store is a silent E -> M
    cache hit.
    """
    def worker(ctx, index, base):
        lines = 64
        mine = base + index * lines * 64
        for i in range(lines):           # read phase: E under MESI
            yield from ctx.load_u64(mine + i * 64)
        for i in range(lines):           # dense store phase
            yield from ctx.store_u64(mine + i * 64, i)

    base = yield from ctx.malloc(8 * 64 * 64, align=64)
    threads = yield from ctx.spawn_workers(worker, 7, base)
    yield from worker(ctx, 7, base)
    yield from ctx.join_all(threads)
    return True


@pytest.mark.benchmark(group="ablations")
def test_ablation_msi_vs_mesi(benchmark):
    """MESI's Exclusive state removes the upgrade round trip on private
    read-then-write; the price is an owner-recall on the first remote
    read of an E line.  Both sides of the trade-off are shown: a
    private-RMW microkernel (pure win) and ocean_cont (upgrades halve,
    but boundary-row recalls give the time back).
    """
    from repro.workloads import get_workload as _get

    stats = {}

    def run_all():
        for protocol in ("msi", "mesi"):
            for name in ("private_rmw", "ocean_cont"):
                config = paper_config(num_tiles=8)
                config.memory.protocol = protocol
                simulator = Simulator(config)
                if name == "private_rmw":
                    program = _private_rmw
                else:
                    program = _get(name).main(nthreads=8, scale=0.5)
                result = simulator.run(program)
                stats[(protocol, name)] = (result.simulated_cycles,
                                           result.counter(".upgrades"),
                                           result.main_result)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("Ablation: MSI vs MESI (8 tiles)",
                  ["workload", "protocol", "simulated cycles",
                   "upgrade round trips"])
    for name in ("private_rmw", "ocean_cont"):
        for protocol in ("msi", "mesi"):
            cycles, upgrades, _ = stats[(protocol, name)]
            table.add_row(name, protocol.upper(), cycles, upgrades)
    save_artifact("ablation_protocols", table)

    for name in ("private_rmw", "ocean_cont"):
        # Functional agreement and strictly fewer upgrades under MESI.
        assert stats[("msi", name)][2] == stats[("mesi", name)][2]
        assert stats[("mesi", name)][1] < stats[("msi", name)][1]
    # The private-RMW pattern is a clean MESI win in simulated time.
    assert stats[("mesi", "private_rmw")][0] < \
        stats[("msi", "private_rmw")][0]
