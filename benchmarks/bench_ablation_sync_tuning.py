"""Ablation: tuning the synchronization models (paper §4.3, Summary).

The paper observes that "the parameters to synchronization models can
be tuned to match application behavior.  For example, some applications
can tolerate large barrier intervals with no measurable degradation in
accuracy.  This allows LaxBarrier to achieve performance near that of
LaxP2P for some applications."  This benchmark quantifies both knobs:

* **barrier-interval sweep** — error stays near zero while simulator
  run-time falls as the interval grows;
* **LaxP2P slack sweep** — tighter slack costs sleeps (performance) and
  buys accuracy; looser slack converges to plain Lax.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.sim.experiment import repeat_runs
from repro.workloads import get_workload

from conftest import paper_config, save_artifact

NTHREADS = 16
SCALE = 0.4
RUNS = 5
BARRIER_INTERVALS = [500, 1000, 5000, 20_000, 100_000]
SLACKS = [1_000, 5_000, 20_000, 100_000]


def run_with(model: str, **sync_kwargs):
    config = paper_config(num_tiles=NTHREADS)
    config.sync.model = model
    for key, value in sync_kwargs.items():
        setattr(config.sync, key, value)
    program = get_workload("ocean_cont").main(nthreads=NTHREADS,
                                              scale=SCALE)
    return repeat_runs(config, program, runs=RUNS)


@pytest.mark.benchmark(group="ablations")
def test_ablation_sync_tuning(benchmark):
    results = {}

    def run_all():
        results["lax"] = run_with("lax")
        results["baseline"] = run_with("lax_barrier",
                                       barrier_interval=500)
        for interval in BARRIER_INTERVALS:
            results[("barrier", interval)] = run_with(
                "lax_barrier", barrier_interval=interval)
        for slack in SLACKS:
            results[("p2p", slack)] = run_with(
                "lax_p2p", p2p_slack=slack, p2p_interval=slack // 4)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    baseline_cycles = results["baseline"].mean_cycles
    lax_wall = results["lax"].mean_wall_clock

    barrier_table = Table(
        "Ablation: LaxBarrier interval sweep (ocean_cont)",
        ["interval (cycles)", "run-time (norm to lax)", "error %"])
    for interval in BARRIER_INTERVALS:
        s = results[("barrier", interval)]
        barrier_table.add_row(interval,
                              f"{s.mean_wall_clock / lax_wall:.2f}",
                              f"{s.error_percent(baseline_cycles):.2f}")

    p2p_table = Table(
        "Ablation: LaxP2P slack sweep (ocean_cont)",
        ["slack (cycles)", "run-time (norm to lax)", "error %"])
    for slack in SLACKS:
        s = results[("p2p", slack)]
        p2p_table.add_row(slack,
                          f"{s.mean_wall_clock / lax_wall:.2f}",
                          f"{s.error_percent(baseline_cycles):.2f}")

    lax_error = results["lax"].error_percent(baseline_cycles)
    footer = ("plain lax: run-time 1.00, error "
              f"{lax_error:.2f}% (the no-synchronization endpoint)")
    save_artifact("ablation_sync_tuning",
                  barrier_table.render() + "\n\n" + p2p_table.render()
                  + "\n\n" + footer,
                  data={"barrier": barrier_table.to_dict(),
                        "p2p": p2p_table.to_dict()})

    # Larger barrier intervals are never slower than smaller ones
    # (monotone within noise), and the largest approaches Lax speed.
    tight = results[("barrier", 500)].mean_wall_clock
    loose = results[("barrier", 100_000)].mean_wall_clock
    assert loose < tight
    assert loose / lax_wall < 1.35
    # The loosest P2P slack behaves like Lax in error terms; the
    # tightest is far more accurate than Lax.
    tight_err = results[("p2p", 1_000)].error_percent(baseline_cycles)
    assert tight_err < max(lax_error, 1e-9) or tight_err < 1.0
