"""Sweep-pool scaling: wall-clock of a configuration sweep vs workers.

The mp design keeps a single simulation globally sequential (for
byte-identical reproducibility; see docs/distribution.md), so the
backend's wall-clock win is measured where it lives: a sweep of
independent configurations fanned across the process pool.  On a
multi-core host the 4-configuration sweep should scale with workers;
on a single-core host the pool can only tie (and pays fork/IPC
overhead), which the artefact records honestly alongside the cpu
count.

Not a pytest-benchmark module on purpose: one timed run per pool size
is the honest grain here — per-iteration variance is dominated by
process start-up, which is part of what is being measured.
"""

from __future__ import annotations

import os
import time

from conftest import paper_config, save_artifact

from repro.distrib.wire import WorkloadRef
from repro.sim.experiment import sweep

#: The sweep: one workload over four target/host variations.
_SWEEP_SEEDS = (42, 43, 44, 45)
_WORKER_COUNTS = (1, 2, 4)


def _sweep_configs():
    return [paper_config(num_tiles=32, machines=1, cores=8, seed=seed)
            for seed in _SWEEP_SEEDS]


def test_backend_scaling():
    program = WorkloadRef("matrix_multiply", nthreads=32, scale=2.0)
    host_cpus = os.cpu_count() or 1
    rows = []
    cycles_by_workers = {}
    for workers in _WORKER_COUNTS:
        start = time.perf_counter()
        results = sweep(_sweep_configs(), program, workers=workers)
        elapsed = time.perf_counter() - start
        cycles = [r.simulated_cycles for r in results]
        cycles_by_workers[workers] = cycles
        rows.append((workers, elapsed, cycles))
    # Whatever the host, parallelism must never change the results.
    baseline_cycles = cycles_by_workers[_WORKER_COUNTS[0]]
    for workers, cycles in cycles_by_workers.items():
        assert cycles == baseline_cycles, \
            f"workers={workers} changed simulation results"

    base = rows[0][1]
    lines = [
        "Sweep wall-clock vs pool workers "
        f"(4 configs, matrix_multiply, host has {host_cpus} cpu(s))",
        f"{'workers':>8} {'seconds':>9} {'speedup':>8}",
    ]
    for workers, elapsed, _ in rows:
        lines.append(f"{workers:>8} {elapsed:>9.2f} "
                     f"{base / elapsed:>7.2f}x")
    if host_cpus == 1:
        lines.append("note: single-core host - the pool can only tie "
                     "serial execution here; speedup requires "
                     ">= 2 cpus.")
    save_artifact("backend_scaling", "\n".join(lines), data={
        "host_cpus": host_cpus,
        "sweep_size": len(_SWEEP_SEEDS),
        "workload": "matrix_multiply",
        "runs": [{"workers": w, "seconds": round(s, 3)}
                 for w, s, _ in rows],
        "simulated_cycles": baseline_cycles,
    })
