"""Figure 4: SPLASH simulation speedup vs host cores (1 -> 64).

The paper simulates a 32-tile target running 32-thread SPLASH kernels
and adds host cores: 1-8 within one machine, then 2, 4 and 8 machines
of 8 cores.  Speed-up is wall-clock, normalized to one host core.

Expected shape: near-linear scaling inside one machine for the
compute-heavy kernels (fmm, ocean, radix); a dip moving from 8 to 16
cores (the machine boundary) for communication-heavy apps; fft worst
(~2x at 64 cores in the paper), radix among the best (~20x).
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import render_series
from repro.analysis.tables import Table
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

from conftest import paper_config, save_artifact

#: (machines, cores per machine) host sweep -> 1..64 total cores.
HOST_SWEEP = [(1, 1), (1, 2), (1, 4), (1, 8), (2, 8), (4, 8), (8, 8)]

WORKLOADS = ["cholesky", "fft", "fmm", "lu_cont", "lu_non_cont",
             "ocean_cont", "ocean_non_cont", "radix",
             "water_nsquared", "water_spatial"]

NTHREADS = 32
SCALE = 1.0


def simulate(name: str, machines: int, cores: int) -> float:
    config = paper_config(num_tiles=NTHREADS, machines=machines,
                          cores=cores)
    simulator = Simulator(config)
    program = get_workload(name).main(nthreads=NTHREADS, scale=SCALE)
    return simulator.run(program).wall_clock_seconds


@pytest.mark.benchmark(group="fig4")
def test_fig4_host_scaling(benchmark):
    speedups = {}

    def run_sweep():
        for name in WORKLOADS:
            walls = [simulate(name, m, c) for m, c in HOST_SWEEP]
            speedups[name] = [walls[0] / w for w in walls]

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    core_counts = [m * c for m, c in HOST_SWEEP]
    table = Table("Figure 4: speed-up vs host cores "
                  "(normalized to 1 core)",
                  ["app"] + [str(c) for c in core_counts])
    for name in WORKLOADS:
        table.add_row(name, *[f"{s:.2f}" for s in speedups[name]])
    chart = render_series("Figure 4 (speed-up at 64 host cores)",
                          WORKLOADS,
                          {"speedup@64": [speedups[n][-1]
                                          for n in WORKLOADS]},
                          unit="x")
    save_artifact("fig4_host_scaling",
                  table.render() + "\n\n" + chart,
                  data=table.to_dict())

    # Shape assertions (paper §4.2).
    for name in WORKLOADS:
        assert speedups[name][-1] > 1.0, f"{name} never sped up"
    # fft is the worst scaler; radix/fmm/ocean are among the best.
    best_scalers = max(speedups["radix"][-1], speedups["fmm"][-1],
                       speedups["ocean_cont"][-1])
    assert speedups["fft"][-1] < best_scalers
    # Within one machine, compute-heavy apps scale near-linearly.
    assert speedups["fmm"][3] > 4.0  # >= half-ideal at 8 cores
