"""Figure 5: 1024-thread matrix-multiply across 1-10 host machines.

The paper runs a matrix-multiply kernel with 1024 threads on 1024
target tiles and adds host machines: performance improves steadily,
reaching 3.85x at ten machines over one, with near-linear speed-up
countered by sequential per-process initialisation.

Expected shape: monotonic improvement with machine count; clearly
sublinear (the paper's 10-machine point is 3.85x, not 10x).
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import render_series
from repro.analysis.tables import Table
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

from conftest import paper_config, save_artifact

MACHINES = [1, 2, 4, 6, 8, 10]
TILES = 1024


def simulate(machines: int) -> float:
    config = paper_config(num_tiles=TILES, machines=machines)
    simulator = Simulator(config)
    program = get_workload("matrix_multiply").main(
        nthreads=TILES, block=6, steps=3)
    return simulator.run(program).wall_clock_seconds


@pytest.mark.benchmark(group="fig5")
def test_fig5_matmul_1024(benchmark):
    walls = []

    def run_sweep():
        walls.extend(simulate(m) for m in MACHINES)

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    speedups = [walls[0] / w for w in walls]

    table = Table("Figure 5: 1024-thread matrix-multiply",
                  ["machines", "wall-clock (s)", "speed-up"])
    for m, wall, s in zip(MACHINES, walls, speedups):
        table.add_row(m, f"{wall:.4f}", f"{s:.2f}x")
    chart = render_series("Figure 5 (speed-up vs machines)",
                          MACHINES, {"speed-up": speedups}, unit="x")
    save_artifact("fig5_matmul_1024",
                  table.render() + "\n\n" + chart,
                  data=table.to_dict())

    # Shape assertions (paper §4.2, Figure 5).
    assert speedups[-1] > 1.5, "no benefit from ten machines"
    assert speedups[-1] < 10.0, "scaling should be clearly sublinear"
    # Performance improves steadily: each point no worse than 80% of
    # its predecessor.
    for earlier, later in zip(speedups, speedups[1:]):
        assert later > earlier * 0.8
