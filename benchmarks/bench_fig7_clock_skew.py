"""Figure 7: clock skew over the course of an fmm run, per sync model.

The paper samples all tile clocks during an fmm run, computes the
deviation of each from the approximate global clock, and plots the
max/min envelope per interval for Lax, LaxP2P and LaxBarrier.

Expected shape: skew(Lax) >> skew(LaxP2P) >> skew(LaxBarrier); LaxP2P
bounded around its slack; LaxBarrier bounded around its quantum.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import render_skew_trace
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

from conftest import paper_config, save_artifact

MODELS = ["lax", "lax_p2p", "lax_barrier"]
NTHREADS = 32
SCALE = 2.0
BARRIER_INTERVAL = 1000
P2P_SLACK = 2_500
P2P_INTERVAL = 1_000


def run_trace(model: str):
    config = paper_config(num_tiles=NTHREADS)
    config.sync.model = model
    config.sync.barrier_interval = BARRIER_INTERVAL
    config.sync.p2p_slack = P2P_SLACK
    config.sync.p2p_interval = P2P_INTERVAL
    config.trace_clock_skew = True
    config.skew_sample_period = 16
    simulator = Simulator(config)
    program = get_workload("fmm").main(nthreads=NTHREADS, scale=SCALE)
    result = simulator.run(program)
    return result.skew_trace


def peak_skew(trace) -> float:
    return max(max(abs(hi), abs(lo)) for _, hi, lo in trace)


@pytest.mark.benchmark(group="fig7")
def test_fig7_clock_skew(benchmark):
    traces = {}

    def run_all():
        for model in MODELS:
            traces[model] = run_trace(model)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    for model in MODELS:
        sections.append(render_skew_trace(
            f"Figure 7 ({model}): clock skew during fmm",
            traces[model]))
    save_artifact("fig7_clock_skew", "\n\n".join(sections))

    peaks = {model: peak_skew(traces[model]) for model in MODELS}
    # Shape assertions (paper §4.3, Figure 7): skew ordering.
    assert peaks["lax"] > peaks["lax_p2p"] > peaks["lax_barrier"]
    # LaxBarrier skew is on the order of its quantum.
    assert peaks["lax_barrier"] < 10 * BARRIER_INTERVAL
    # LaxP2P bounds skew around its slack (allowing overshoot between
    # checks), far below free-running Lax.
    assert peaks["lax_p2p"] < 10 * P2P_SLACK
