"""Figure 8: cache-miss breakdown by type as line size varies.

The paper validates its memory system by reproducing the SPLASH-2
characterisation (Woo et al.): a single cache level (the L1 models are
disabled; every access goes to a 1 MB 4-way L2) while the line size
sweeps 4...256 bytes, with misses classified as cold / capacity /
true-sharing / false-sharing.

Expected shapes (paper §4.4): lu_cont and fft miss rates drop ~linearly
with line size (perfect spatial locality from contiguous allocation);
radix's false-sharing misses blow up at 256 B (the permutation-write
interleaving granularity); water_spatial and barnes trade true sharing
for false sharing as lines grow across record boundaries.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

from conftest import paper_config, save_artifact

LINE_SIZES = [4, 8, 16, 32, 64, 128, 256]
BENCHMARKS = ["lu_cont", "water_spatial", "radix", "barnes", "fft",
              "ocean_cont"]
NTHREADS = 8
SCALE = 1.0
MB = 1024 * 1024

#: Per-workload extra parameters: the sharing signatures need several
#: timesteps (a reader must have been invalidated by a writer to incur
#: a sharing miss at all).
EXTRA_PARAMS = {
    "ocean_cont": {"iterations": 4},
    "water_spatial": {"iterations": 3},
    "barnes": {"iterations": 3},
}


def run_breakdown(name: str, line_bytes: int):
    config = paper_config(num_tiles=NTHREADS)
    # Woo et al. memory architecture: one cache level, 1 MB, 4-way.
    config.memory.l1i.enabled = False
    config.memory.l1d.enabled = False
    config.memory.l2.size_bytes = 1 * MB
    config.memory.l2.associativity = 4
    config.memory.l2.line_bytes = line_bytes
    config.memory.classify_misses = True
    simulator = Simulator(config)
    program = get_workload(name).main(nthreads=NTHREADS, scale=SCALE,
                                      **EXTRA_PARAMS.get(name, {}))
    result = simulator.run(program)
    accesses = result.counter(".lookups") or 1
    return {kind: count / accesses
            for kind, count in result.miss_breakdown.items()}, \
        sum(result.miss_breakdown.values()) / accesses


@pytest.mark.benchmark(group="fig8")
def test_fig8_miss_breakdown(benchmark):
    data = {}

    def run_all():
        for name in BENCHMARKS:
            for line in LINE_SIZES:
                data[(name, line)] = run_breakdown(name, line)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    for name in BENCHMARKS:
        table = Table(f"Figure 8 ({name}): miss rate by type vs "
                      "line size",
                      ["line B", "total %", "cold %", "capacity %",
                       "true-sharing %", "false-sharing %"])
        for line in LINE_SIZES:
            rates, total = data[(name, line)]
            table.add_row(line, f"{total * 100:.3f}",
                          f"{rates.get('cold', 0) * 100:.3f}",
                          f"{rates.get('capacity', 0) * 100:.3f}",
                          f"{rates.get('true_sharing', 0) * 100:.3f}",
                          f"{rates.get('false_sharing', 0) * 100:.3f}")
        sections.append(table.render())
    save_artifact("fig8_miss_linesize", "\n\n".join(sections))

    # --- Shape assertions (paper §4.4) ------------------------------------
    def total(name, line):
        return data[(name, line)][1]

    def rate(name, line, kind):
        return data[(name, line)][0].get(kind, 0.0)

    # lu_cont / fft: contiguous allocation -> miss rate falls steadily
    # with line size.
    for name in ("lu_cont", "fft"):
        assert total(name, 4) > total(name, 64) > total(name, 256), name

    # radix: false sharing spikes at 256 B once the line exceeds the
    # permutation interleaving granularity.
    assert rate("radix", 256, "false_sharing") > \
        3 * rate("radix", 64, "false_sharing")

    # water_spatial / barnes: true sharing falls and false sharing
    # rises as lines span multiple records.
    for name in ("water_spatial", "barnes"):
        assert rate(name, 8, "true_sharing") > \
            rate(name, 256, "true_sharing"), name
        assert rate(name, 256, "false_sharing") > \
            rate(name, 8, "false_sharing"), name

    # ocean_cont: boundary-row true sharing present at every line size.
    assert rate("ocean_cont", 64, "true_sharing") > 0
