"""Figure 9: cache-coherence schemes on blackscholes vs target tiles.

The paper compares Dir4NB, Dir16NB, full-map and LimitLESS(4)
directories on PARSEC blackscholes (simsmall), scaling the target tile
count and plotting speed-up relative to simulated single-tile
execution.

Expected shapes (paper §4.4): full-map and LimitLESS track each other
closely (the heavily shared data is read-only, so LimitLESS stops
trapping once everyone has cached it) and scale near-perfectly to 32
tiles before parallelization overhead flattens the curve; Dir4NB stops
scaling around 4 tiles and Dir16NB around 16, as the limited pointers
constantly evict sharers of the hot read-only lines and serialize
those reads.

A fine scheduler quantum is used so that target threads interleave at
close to instruction granularity — with coarse quanta the sharer
pointers are not contended within a quantum and the thrashing the
paper measures disappears.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import render_series
from repro.analysis.tables import Table
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

from conftest import paper_config, save_artifact

TILE_COUNTS = [1, 2, 4, 8, 16, 32, 64, 128, 256]
SCHEMES = [
    ("Dir4NB", "limited", 4),
    ("Dir16NB", "limited", 16),
    ("full-map", "full_map", 4),
    ("LimitLESS(4)", "limitless", 4),
]
OPTIONS = 2048  # fixed problem size: strong scaling, like simsmall
QUANTUM = 100


def run_roi(scheme: str, sharers: int, tiles: int) -> int:
    config = paper_config(num_tiles=tiles)
    config.memory.directory_type = scheme
    config.memory.directory_max_sharers = sharers
    config.host.quantum_instructions = QUANTUM
    simulator = Simulator(config)
    program = get_workload("blackscholes").main(nthreads=tiles,
                                                options=OPTIONS)
    return simulator.run(program).parallel_cycles


@pytest.mark.benchmark(group="fig9")
def test_fig9_coherence_schemes(benchmark):
    speedups = {}

    def run_all():
        for name, scheme, sharers in SCHEMES:
            baseline = None
            series = []
            for tiles in TILE_COUNTS:
                roi = run_roi(scheme, sharers, tiles)
                if baseline is None:
                    baseline = roi
                series.append(baseline / roi)
            speedups[name] = series

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("Figure 9: blackscholes speed-up vs simulated "
                  "single-tile execution",
                  ["tiles"] + [name for name, _, _ in SCHEMES])
    for i, tiles in enumerate(TILE_COUNTS):
        table.add_row(tiles, *[f"{speedups[name][i]:.2f}"
                               for name, _, _ in SCHEMES])
    chart = render_series(
        "Figure 9 (speed-up at 32 tiles)",
        [name for name, _, _ in SCHEMES],
        {"speedup@32": [speedups[name][TILE_COUNTS.index(32)]
                        for name, _, _ in SCHEMES]}, unit="x")
    save_artifact("fig9_coherence", table.render() + "\n\n" + chart,
                  data=table.to_dict())

    at = {name: dict(zip(TILE_COUNTS, speedups[name]))
          for name, _, _ in SCHEMES}
    # Shape assertions (paper §4.4, Figure 9).
    # Full-map scales well to 32 tiles.
    assert at["full-map"][32] > 10
    # LimitLESS tracks full-map closely (read-only sharing).
    assert abs(at["LimitLESS(4)"][32] - at["full-map"][32]) \
        < 0.35 * at["full-map"][32]
    # The limited directories fall clearly behind full-map at 32 tiles.
    assert at["Dir4NB"][32] < 0.75 * at["full-map"][32]
    # Dir16NB sits between Dir4NB and full-map at high tile counts.
    assert at["Dir16NB"][32] >= at["Dir4NB"][32]
    # At 4 tiles all schemes are equivalent (pointers suffice).
    assert abs(at["Dir4NB"][4] - at["full-map"][4]) \
        < 0.25 * at["full-map"][4]
