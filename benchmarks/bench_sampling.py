"""Checkpoint-accelerated sampling: speedup and error bound.

Sampling (docs/sampling.md) trades detailed cycles for functional
fast-forward plus periodic measured windows.  This benchmark runs two
SPLASH-2 kernels three ways — full detail (the truth), a cold sampled
run that primes the snapshot library, and a warm sampled run that
forks from the stored switch-point checkpoint — and reports the
wall-clock speedups alongside the extrapolation error.

Expected shape: the warm (library-forked) sampled run is >= 3x faster
than full detail on at least one kernel, the extrapolated cycle
count's Student-t confidence interval covers the full-detail truth on
both, and the cold and warm runs produce byte-identical
region-of-interest metrics.  Cold speedups are smaller (~2x): the
first run still pays the fast-forward's host cost, which functional
mode only halves — the memory system stays architecturally live.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import Table
from repro.profile.bench import SAMPLING_BENCHMARKS, run_sampling_benchmark

from conftest import save_artifact

TILES = 8
SEED = 42


@pytest.mark.benchmark(group="sampling")
def test_sampling_speedup_and_error(benchmark):
    records = {}

    def run_all():
        for workload, scale, geometry in SAMPLING_BENCHMARKS:
            records[workload] = run_sampling_benchmark(
                workload, scale, geometry, tiles=TILES, seed=SEED)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("Sampling: wall-clock speedup and extrapolation "
                  "error vs full detail (times in host seconds)",
                  ["app", "full cycles", "full", "cold", "warm",
                   "warm speedup", "windows", "est cycles", "error",
                   "CI covers"])
    for workload, _, _ in SAMPLING_BENCHMARKS:
        r = records[workload]
        table.add_row(workload, f"{r['full_cycles']:,}",
                      f"{r['full_host_seconds']:.2f}",
                      f"{r['cold_host_seconds']:.2f}",
                      f"{r['warm_host_seconds']:.2f}",
                      f"{r['warm_speedup']:.1f}x",
                      str(r["windows"]),
                      f"{r['estimated_cycles']:,.0f}",
                      f"{r['error_percent']:+.1f}%",
                      str(r["ci_covers_truth"]))
    save_artifact("sampling_speedup", table.render(), data=records)

    # Shape assertions (the ISSUE acceptance bar).
    warm = [records[w]["warm_speedup"] for w, _, _ in SAMPLING_BENCHMARKS]
    # The library-forked sampled run clears 3x on at least one kernel
    # and is never slower than full detail anywhere.
    assert max(warm) >= 3.0
    assert all(s > 1.0 for s in warm)
    for workload, _, _ in SAMPLING_BENCHMARKS:
        r = records[workload]
        # Extrapolation is honest: the CI covers the full-detail truth.
        assert r["ci_covers_truth"]
        # Priming and forking agree byte-for-byte on the region of
        # interest (the library contract).
        assert r["roi_identical"]
        assert r["windows"] >= 1
