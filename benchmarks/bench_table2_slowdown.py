"""Table 2: simulation wall-clock and slowdown vs native, 1 & 8 machines.

The paper reports, per SPLASH-2 benchmark at 32 target tiles / 32
threads: native execution time on one 8-core machine, simulation
wall-clock on one and eight host machines, and the slowdown ratios
(paper means 1751x / 1213x; medians 1307x / 600x; best case fmm at 41x
on 8 machines, worst fft at ~3930x).

Expected shape here: slowdowns of O(10-1000)x (our workloads are scaled
down ~10^3, which compresses fixed overheads); fmm the cheapest
benchmark to simulate; communication-heavy kernels gain least from
8 machines.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import mean, median
from repro.analysis.tables import Table
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

from conftest import paper_config, save_artifact, timed_run

WORKLOADS = ["cholesky", "fft", "fmm", "lu_cont", "lu_non_cont",
             "ocean_cont", "ocean_non_cont", "radix",
             "water_nsquared", "water_spatial"]
NTHREADS = 32
SCALE = 1.0


def simulate(name: str, machines: int):
    """Run one benchmark; returns (result, measured host seconds)."""
    config = paper_config(num_tiles=NTHREADS, machines=machines)
    simulator = Simulator(config)
    program = get_workload(name).main(nthreads=NTHREADS, scale=SCALE)
    return timed_run(lambda: simulator.run(program))


@pytest.mark.benchmark(group="table2")
def test_table2_slowdown(benchmark):
    rows = {}
    host_seconds = {}

    def run_all():
        for name in WORKLOADS:
            one, host1 = simulate(name, machines=1)
            eight, host8 = simulate(name, machines=8)
            rows[name] = (one.native_seconds, one.wall_clock_seconds,
                          one.slowdown, eight.wall_clock_seconds,
                          eight.slowdown)
            host_seconds[name] = (host1, host8)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table("Table 2: wall-clock and slowdown vs native "
                  "(times in seconds; host = measured on this machine)",
                  ["app", "native", "sim 1mc", "slowdown 1mc",
                   "sim 8mc", "slowdown 8mc", "host 1mc", "host 8mc"])
    for name in WORKLOADS:
        native, w1, s1, w8, s8 = rows[name]
        host1, host8 = host_seconds[name]
        table.add_row(name, f"{native:.6f}", f"{w1:.4f}",
                      f"{s1:,.0f}x", f"{w8:.4f}", f"{s8:,.0f}x",
                      f"{host1:.2f}", f"{host8:.2f}")
    slow1 = [rows[n][2] for n in WORKLOADS]
    slow8 = [rows[n][4] for n in WORKLOADS]
    table.add_row("Mean", "-", "-", f"{mean(slow1):,.0f}x", "-",
                  f"{mean(slow8):,.0f}x", "-", "-")
    table.add_row("Median", "-", "-", f"{median(slow1):,.0f}x", "-",
                  f"{median(slow8):,.0f}x", "-", "-")
    sidecar = {
        name: {
            "native_seconds": rows[name][0],
            "wall_clock_seconds_1mc": rows[name][1],
            "slowdown_1mc": rows[name][2],
            "wall_clock_seconds_8mc": rows[name][3],
            "slowdown_8mc": rows[name][4],
            "host_seconds_1mc": host_seconds[name][0],
            "host_seconds_8mc": host_seconds[name][1],
        }
        for name in WORKLOADS
    }
    save_artifact("table2_slowdown", table.render(), data=sidecar)

    # Shape assertions (paper §4.2, Table 2).
    # fmm has the highest computation-to-communication ratio and is the
    # cheapest benchmark to simulate.
    assert rows["fmm"][2] == min(slow1)
    # Simulation is much slower than native everywhere.
    assert all(s > 10 for s in slow1)
    # The compute-heavy kernels benefit from 8 machines.
    assert rows["fmm"][4] < rows["fmm"][2] * 1.6
    assert rows["ocean_cont"][4] < rows["ocean_cont"][2] * 1.6
