"""Table 3 / Figure 6: synchronization models — performance & accuracy.

The paper runs lu_cont, ocean_cont and radix ten times each under Lax,
LaxP2P and LaxBarrier on one and four host machines and reports:
run-time normalized to Lax on one machine (performance), scaling from
one to four machines, percentage deviation of mean simulated run-time
from the LaxBarrier baseline (error), and the coefficient of variation
across runs (CoV).  Paper values (Table 3): run-times 1.0/0.55 (Lax),
1.10/0.59 (LaxP2P), 1.82/1.09 (LaxBarrier); errors 7.56 / 1.28 / -;
CoV 0.58 / 0.31 / 0.09.

Parameters follow the paper, scaled to our run lengths: barrier quantum
1,000 cycles; the LaxP2P slack maps the paper's 100k cycles on
minute-long runs to 10k on ours.

Expected shape: Lax fastest, worst error and CoV; LaxBarrier slowest,
error reference, best CoV; LaxP2P close to Lax in speed and close to
LaxBarrier in accuracy.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import render_series
from repro.analysis.tables import Table
from repro.sim.experiment import repeat_runs
from repro.workloads import get_workload

from conftest import paper_config, save_artifact

BENCHMARKS = ["lu_cont", "ocean_cont", "radix"]
MODELS = ["lax", "lax_p2p", "lax_barrier"]
MACHINE_COUNTS = [1, 4]
RUNS = 10
NTHREADS = 32
SCALE = 0.3

BARRIER_INTERVAL = 1000
P2P_SLACK = 10_000
P2P_INTERVAL = 2_500


def run_stats(name: str, model: str, machines: int):
    config = paper_config(num_tiles=NTHREADS, machines=machines)
    config.sync.model = model
    config.sync.barrier_interval = BARRIER_INTERVAL
    config.sync.p2p_slack = P2P_SLACK
    config.sync.p2p_interval = P2P_INTERVAL
    program = get_workload(name).main(nthreads=NTHREADS, scale=SCALE)
    return repeat_runs(config, program, runs=RUNS)


def avg(values):
    return sum(values) / len(values)


@pytest.mark.benchmark(group="table3")
def test_table3_sync_models(benchmark):
    stats = {}

    def run_all():
        for name in BENCHMARKS:
            for model in MODELS:
                for machines in MACHINE_COUNTS:
                    stats[(name, model, machines)] = run_stats(
                        name, model, machines)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # --- Figure 6: per-benchmark breakdown --------------------------------
    fig6 = Table("Figure 6: per-benchmark sync-model comparison "
                 f"({RUNS} runs each)",
                 ["app", "mc", "model", "run-time (norm)", "error %",
                  "CoV %"])
    agg = {(model, mc): {"runtime": [], "error": [], "cov": []}
           for model in MODELS for mc in MACHINE_COUNTS}
    for name in BENCHMARKS:
        lax_wall = stats[(name, "lax", 1)].mean_wall_clock
        for machines in MACHINE_COUNTS:
            baseline = stats[(name, "lax_barrier", machines)].mean_cycles
            for model in MODELS:
                s = stats[(name, model, machines)]
                runtime = s.mean_wall_clock / lax_wall
                error = s.error_percent(baseline)
                fig6.add_row(name, machines, model, f"{runtime:.2f}",
                             f"{error:.2f}", f"{s.cov_percent:.2f}")
                agg[(model, machines)]["runtime"].append(runtime)
                agg[(model, machines)]["error"].append(error)
                agg[(model, machines)]["cov"].append(s.cov_percent)

    # --- Table 3: means over the benchmarks --------------------------------
    table3 = Table("Table 3: mean performance and accuracy "
                   "(run-time normalized to Lax on 1 machine)",
                   ["metric"] + MODELS)
    for metric, fmt in (("runtime 1mc", "{:.2f}"),
                        ("runtime 4mc", "{:.2f}")):
        mc = 1 if "1mc" in metric else 4
        table3.add_row(metric, *[fmt.format(avg(agg[(m, mc)]["runtime"]))
                                 for m in MODELS])
    table3.add_row("scaling 1->4mc",
                   *[f"{avg(agg[(m, 1)]['runtime']) / avg(agg[(m, 4)]['runtime']):.2f}"
                     for m in MODELS])
    table3.add_row("error % (vs LaxBarrier)",
                   *[f"{avg(agg[(m, 1)]['error'] + agg[(m, 4)]['error']):.2f}"
                     for m in MODELS])
    table3.add_row("CoV %",
                   *[f"{avg(agg[(m, 1)]['cov'] + agg[(m, 4)]['cov']):.2f}"
                     for m in MODELS])

    chart = render_series(
        "Figure 6b (mean error %, lower is better)", MODELS,
        {"error": [avg(agg[(m, 1)]["error"] + agg[(m, 4)]["error"])
                   for m in MODELS]},
        unit="%")
    save_artifact("table3_fig6_sync_models",
                  table3.render() + "\n\n" + fig6.render()
                  + "\n\n" + chart,
                  data={"table3": table3.to_dict(),
                        "fig6": fig6.to_dict()})

    # Shape assertions (paper §4.3).  Run-time ordering is asserted on
    # one machine; at four machines our scaled-down workloads are
    # communication-bound and the paper's multi-machine run-time gains
    # do not reproduce (see EXPERIMENTS.md).
    lax1 = agg[("lax", 1)]
    p2p1 = agg[("lax_p2p", 1)]
    barrier1 = agg[("lax_barrier", 1)]
    # Lax outperforms both; LaxBarrier is the slowest.
    assert avg(lax1["runtime"]) <= avg(p2p1["runtime"])
    assert avg(barrier1["runtime"]) > avg(lax1["runtime"])
    # LaxP2P stays within ~30% of Lax (paper: ~10%).
    assert avg(p2p1["runtime"]) < 1.4 * avg(lax1["runtime"])
    for mc in MACHINE_COUNTS:
        # LaxP2P's error is well below Lax's at every machine count.
        assert avg(agg[("lax_p2p", mc)]["error"]) < \
            avg(agg[("lax", mc)]["error"])
    # Lax shows the worst run-to-run variability of the three.
    lax_cov = avg(agg[("lax", 1)]["cov"] + agg[("lax", 4)]["cov"])
    barrier_cov = avg(agg[("lax_barrier", 1)]["cov"]
                      + agg[("lax_barrier", 4)]["cov"])
    assert barrier_cov < lax_cov
