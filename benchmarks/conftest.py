"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (§4) and writes its artefact — the same rows/series the
paper reports — to ``benchmarks/results/<name>.txt`` while also
printing it (visible with ``pytest -s``).  Absolute numbers reflect the
host cost model, not the authors' 2009 cluster; the *shapes* are what
EXPERIMENTS.md validates.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Callable, Optional, Tuple

import pytest

from repro.common.config import SimulationConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_artifact(name: str, text: Any,
                  data: Optional[Any] = None) -> None:
    """Persist one table/figure artefact and echo it.

    Every artefact gets a machine-readable JSON sidecar
    (``<name>.json``) next to the ``.txt`` rendering, so downstream
    tooling can diff artefact numbers without re-parsing tables.  The
    sidecar holds ``data`` when given; otherwise it is derived from
    ``text`` (a :class:`~repro.analysis.tables.Table` contributes its
    structured rows, a plain string its lines).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    if data is None:
        data = text.to_dict() if hasattr(text, "to_dict") else {
            "lines": str(text).splitlines()}
    text = str(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                             encoding="utf-8")
    payload = json.dumps(data, indent=2, sort_keys=True,
                         default=repr) + "\n"
    (RESULTS_DIR / f"{name}.json").write_text(payload,
                                              encoding="utf-8")
    print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")


def timed_run(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` and measure its host wall time in seconds.

    Benchmarks use this to record *measured* host time next to the
    cost model's ``wall_clock_seconds`` — the two answer different
    questions (how long the simulated cluster would take vs how long
    this host actually took).
    """
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def paper_config(num_tiles: int = 32, machines: int = 1,
                 cores: int = 8, seed: int = 42) -> SimulationConfig:
    """The Table 1 target on a given host cluster shape."""
    config = SimulationConfig(num_tiles=num_tiles, seed=seed)
    config.host.num_machines = machines
    config.host.cores_per_machine = cores
    config.validate()
    return config


@pytest.fixture
def artifact():
    return save_artifact
