"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (§4) and writes its artefact — the same rows/series the
paper reports — to ``benchmarks/results/<name>.txt`` while also
printing it (visible with ``pytest -s``).  Absolute numbers reflect the
host cost model, not the authors' 2009 cluster; the *shapes* are what
EXPERIMENTS.md validates.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.common.config import SimulationConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_artifact(name: str, text: str) -> None:
    """Persist one table/figure artefact and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                             encoding="utf-8")
    print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")


def paper_config(num_tiles: int = 32, machines: int = 1,
                 cores: int = 8, seed: int = 42) -> SimulationConfig:
    """The Table 1 target on a given host cluster shape."""
    config = SimulationConfig(num_tiles=num_tiles, seed=seed)
    config.host.num_machines = machines
    config.host.cores_per_machine = cores
    config.validate()
    return config


@pytest.fixture
def artifact():
    return save_artifact
