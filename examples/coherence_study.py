#!/usr/bin/env python3
"""Cache-coherence design study (a miniature of the paper's Figure 9).

Compares directory organisations — limited Dir_iNB, full-map, and
LimitLESS — on blackscholes while scaling the target tile count, and
prints the speedup each scheme achieves relative to one tile.  The
limited directory stops scaling once the heavily-shared read-only
globals exceed its sharer pointers; LimitLESS tracks full-map because
read-only data, once cached everywhere, never traps again.
"""

from repro import SimulationConfig, Simulator, get_workload
from repro.analysis.figures import render_series
from repro.analysis.tables import Table

TILE_COUNTS = [1, 2, 4, 8, 16, 32]
SCHEMES = {
    "Dir4NB": ("limited", 4),
    "full-map": ("full_map", 0),
    "LimitLESS(4)": ("limitless", 4),
}


def simulated_cycles(scheme: str, sharers: int, tiles: int) -> int:
    config = SimulationConfig(num_tiles=max(tiles, 1))
    config.memory.directory_type = scheme
    if sharers:
        config.memory.directory_max_sharers = sharers
    # Fine dispatch quantum: the pointer thrashing the study measures
    # needs near-instruction-granular thread interleaving.
    config.host.quantum_instructions = 100
    simulator = Simulator(config)
    # Fixed total problem size: strong scaling across tile counts.
    program = get_workload("blackscholes").main(
        nthreads=tiles, options=1024)
    # Region-of-interest (the parallel section), as PARSEC measures.
    return simulator.run(program).parallel_cycles


def main() -> None:
    table = Table("Coherence schemes: blackscholes speedup vs one tile",
                  ["tiles"] + list(SCHEMES))
    series = {name: [] for name in SCHEMES}
    baselines = {}
    for name, (scheme, sharers) in SCHEMES.items():
        baselines[name] = simulated_cycles(scheme, sharers, 1)
    for tiles in TILE_COUNTS:
        row = [tiles]
        for name, (scheme, sharers) in SCHEMES.items():
            cycles = simulated_cycles(scheme, sharers, tiles)
            speedup = baselines[name] / cycles
            series[name].append(speedup)
            row.append(speedup)
        table.add_row(*row)
    print(table.render())
    print()
    print(render_series("Speedup by directory scheme", TILE_COUNTS,
                        series, unit="x"))


if __name__ == "__main__":
    main()
