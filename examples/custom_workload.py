#!/usr/bin/env python3
"""Writing your own target program.

Target programs are generator functions taking a
:class:`repro.ThreadContext` plus your own arguments, and they use the
same application surface a pthreads program on Graphite sees: malloc,
loads/stores, locks, barriers, spawn/join, the core-to-core messaging
API and system calls.

This example builds a small work-stealing pipeline: a producer thread
writes jobs into a shared ring buffer guarded by a lock; consumers pull
jobs, process them, and message their totals back to the producer.
"""

from repro import SimulationConfig, Simulator
from repro.system.syscalls import O_CREAT

RING_SLOTS = 8
JOBS = 32
CONSUMERS = 3


def consumer(ctx, index, ring, lock, head, tail, done_flag):
    """Pull jobs until the producer raises the done flag."""
    total = 0
    while True:
        yield from ctx.lock(lock)
        h = yield from ctx.load_u64(head)
        t = yield from ctx.load_u64(tail)
        if h < t:
            job = yield from ctx.load_u64(ring + (h % RING_SLOTS) * 8)
            yield from ctx.store_u64(head, h + 1)
            yield from ctx.unlock(lock)
            yield from ctx.compute(200)        # "process" the job
            total += job
        else:
            done = yield from ctx.load_u64(done_flag)
            yield from ctx.unlock(lock)
            if done:
                break
            yield from ctx.compute(50)         # brief backoff
    yield from ctx.send_u64(0, total, tag=1)   # report to the producer


def producer(ctx):
    ring = yield from ctx.calloc(RING_SLOTS * 8, align=64)
    lock = yield from ctx.calloc(8, align=64)
    head = yield from ctx.calloc(8, align=64)
    tail = yield from ctx.calloc(8, align=64)
    done_flag = yield from ctx.calloc(8, align=64)

    workers = yield from ctx.spawn_workers(
        consumer, CONSUMERS, ring, lock, head, tail, done_flag)

    produced = 0
    for job in range(1, JOBS + 1):
        while True:
            yield from ctx.lock(lock)
            h = yield from ctx.load_u64(head)
            t = yield from ctx.load_u64(tail)
            if t - h < RING_SLOTS:
                yield from ctx.store_u64(ring + (t % RING_SLOTS) * 8,
                                         job)
                yield from ctx.store_u64(tail, t + 1)
                yield from ctx.unlock(lock)
                produced += job
                break
            yield from ctx.unlock(lock)
            yield from ctx.compute(50)
    yield from ctx.lock(lock)
    yield from ctx.store_u64(done_flag, 1)
    yield from ctx.unlock(lock)

    consumed = 0
    for _ in range(CONSUMERS):
        _, value = yield from ctx.recv_u64(tag=1)
        consumed += value
    yield from ctx.join_all(workers)

    # Log the outcome through the (MCP-shared) filesystem.
    fd = yield from ctx.open("/pipeline.log", O_CREAT)
    yield from ctx.write(fd, f"produced={produced} "
                             f"consumed={consumed}\n".encode())
    yield from ctx.close(fd)
    return produced == consumed


def main() -> None:
    simulator = Simulator(SimulationConfig(num_tiles=8))
    result = simulator.run(producer)
    print("custom pipeline workload")
    print("========================")
    print(f"all jobs accounted for: {result.main_result}")
    print(f"simulated cycles:       {result.simulated_cycles:,}")
    print("lock futex waits:       "
          f"{result.counter('mcp.futex.futex_waits')}")
    print("user messages:          "
          f"{result.counter('network.user_net.packets')}")


if __name__ == "__main__":
    main()
