#!/usr/bin/env python3
"""Swapping network models (paper §3.3).

Network models are swappable per traffic class.  This example runs the
communication-heavy fft transpose under three memory-network models —
zero-delay magic, contention-free mesh, and mesh with the analytical
contention model — and shows how modelled latency and simulated
run-time respond.  It also scales the mesh link width to show the
contention model reacting to a narrower network.
"""

from repro import SimulationConfig, Simulator, get_workload
from repro.analysis.tables import Table


def run(memory_model: str, link_bytes: int = 8):
    config = SimulationConfig(num_tiles=16)
    config.network.memory_model = memory_model
    config.network.link_bytes_per_cycle = link_bytes
    simulator = Simulator(config)
    program = get_workload("fft").main(nthreads=16, scale=0.2)
    result = simulator.run(program)
    packets = result.counter("network.memory_net.packets")
    latency = result.counter("network.memory_net.total_latency_cycles")
    return result, (latency / packets if packets else 0.0)


def main() -> None:
    table = Table("fft under different memory-network models",
                  ["model", "link B/cyc", "mean pkt latency",
                   "simulated cycles"])
    for model in ("magic", "mesh", "mesh_contention"):
        result, mean_latency = run(model)
        table.add_row(model, 8, mean_latency, result.simulated_cycles)
    # Narrow the links: contention should bite much harder.
    result, mean_latency = run("mesh_contention", link_bytes=2)
    table.add_row("mesh_contention", 2, mean_latency,
                  result.simulated_cycles)
    print(table.render())
    print()
    print("Expected: magic < mesh < mesh_contention in latency and")
    print("simulated run-time; narrowing links amplifies contention.")


if __name__ == "__main__":
    main()
