#!/usr/bin/env python3
"""Quickstart: simulate a SPLASH-2 kernel on a 32-tile target.

Runs the fft workload on the paper's default target architecture
(Table 1) hosted on one simulated 8-core machine, then prints the
headline numbers a Graphite run reports: simulated cycles, modelled
wall-clock, and slowdown versus native execution.
"""

from repro import SimulationConfig, Simulator, get_workload
from repro.common.units import pretty_seconds


def main() -> None:
    config = SimulationConfig(num_tiles=32)

    simulator = Simulator(config)
    program = get_workload("fft").main(nthreads=32, scale=0.25)
    result = simulator.run(program)

    print("Graphite reproduction - quickstart")
    print("==================================")
    print(f"target:      {config.num_tiles} tiles, "
          f"{config.network.memory_model} interconnect, "
          f"{config.memory.directory_type} directory MSI")
    print(f"host:        {config.host.num_machines} machine(s) x "
          f"{config.host.cores_per_machine} cores")
    print("workload:    fft, 32 threads")
    print()
    print(f"simulated run-time:   {result.simulated_cycles:,} cycles "
          f"({result.simulated_cycles / config.core.clock_hz * 1e3:.2f} ms "
          "of target time)")
    print(f"instructions:         {result.total_instructions:,}")
    print("modelled wall-clock:  "
          f"{pretty_seconds(result.wall_clock_seconds)}")
    print(f"modelled native:      {pretty_seconds(result.native_seconds)}")
    print(f"slowdown vs native:   {result.slowdown:,.0f}x")
    print(f"L2 miss rate:         {result.cache_miss_rate('l2'):.2%}")
    print("network messages:     "
          f"{result.counter('transport.messages_sent'):,}")


if __name__ == "__main__":
    main()
