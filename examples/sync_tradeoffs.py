#!/usr/bin/env python3
"""Synchronization-model trade-offs (paper §3.6, Table 3 in miniature).

Runs one benchmark under Lax, LaxP2P and LaxBarrier and reports the
three quantities the paper trades off: simulator wall-clock
(performance), deviation of simulated run-time from the LaxBarrier
baseline (error), and run-to-run coefficient of variation.
"""

from repro import SimulationConfig, get_workload, repeat_runs
from repro.analysis.tables import Table

MODELS = ["lax", "lax_p2p", "lax_barrier"]
RUNS = 5


def main() -> None:
    stats = {}
    for model in MODELS:
        config = SimulationConfig(num_tiles=8)
        config.sync.model = model
        config.sync.barrier_interval = 1000
        config.sync.p2p_slack = 100_000
        program_factory = get_workload("ocean_cont")
        stats[model] = repeat_runs(
            config, program_factory.main(nthreads=8, scale=0.3),
            runs=RUNS)

    baseline = stats["lax_barrier"].mean_cycles
    base_wall = stats["lax"].mean_wall_clock
    table = Table(f"Sync models on ocean_cont ({RUNS} runs each)",
                  ["model", "run-time (norm.)", "error %", "CoV %"])
    for model in MODELS:
        s = stats[model]
        table.add_row(model, s.mean_wall_clock / base_wall,
                      s.error_percent(baseline), s.cov_percent)
    print(table.render())
    print()
    print("Expected shape (paper Table 3): lax fastest / least accurate;")
    print("lax_barrier slowest / reference; lax_p2p close to lax in speed")
    print("and close to lax_barrier in accuracy.")


if __name__ == "__main__":
    main()
