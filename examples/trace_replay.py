#!/usr/bin/env python3
"""Trace-driven simulation: capture once, re-time anywhere.

Records the complete per-thread op stream of an fft run, serialises it
to JSON, and then replays the trace under three different target
architectures — without re-executing the program logic.  The classic
use: sweep cache or core parameters against a fixed workload capture.
"""

from repro import SimulationConfig, Simulator, get_workload
from repro.analysis.tables import Table
from repro.frontend.trace import Trace, TraceRecorder, replay_program


def main() -> None:
    # 1. Capture.
    recorder = TraceRecorder()
    capture_config = SimulationConfig(num_tiles=8)
    simulator = Simulator(capture_config)
    program = get_workload("fft").main(nthreads=8, scale=0.3)
    original = simulator.run(recorder.wrap(program))
    blob = recorder.trace.to_json()
    print(f"captured {recorder.trace.total_ops:,} ops "
          f"({len(blob) / 1024:.0f} KiB as JSON) from "
          f"{len(recorder.trace.threads)} threads")

    # 2. Replay under different targets.
    trace = Trace.from_json(blob)
    targets = {
        "as captured": lambda c: None,
        "64 KB L2": lambda c: (
            setattr(c.memory.l2, "size_bytes", 64 * 1024),
            setattr(c.memory.l2, "associativity", 4)),
        "out-of-order core": lambda c: setattr(c.core, "model",
                                               "out_of_order"),
        "torus network": lambda c: setattr(c.network, "memory_model",
                                           "torus"),
    }
    table = Table("Replaying one fft capture under different targets",
                  ["target", "simulated cycles", "vs capture"])
    for name, mutate in targets.items():
        config = SimulationConfig(num_tiles=8)
        mutate(config)
        config.validate()
        replay = Simulator(config).run(replay_program(trace))
        ratio = replay.simulated_cycles / original.simulated_cycles
        table.add_row(name, f"{replay.simulated_cycles:,}",
                      f"{ratio:.2f}x")
    print()
    print(table.render())


if __name__ == "__main__":
    main()
