"""Legacy entry point so `setup.py develop` works without the wheel package."""
from setuptools import setup

setup()
