"""Graphite reproduction: a parallel distributed multicore simulator.

A from-scratch Python implementation of the system described in
*Graphite: A Distributed Parallel Simulator for Multicores* (Miller et
al., HPCA 2010): an application-level simulator for tiled multicore
targets with swappable core / network / memory models, directory-based
MSI cache coherence (full-map, Dir_iNB, LimitLESS), a distributed
single-process illusion (MCP/LCP, syscall forwarding, futex emulation,
transparent thread spawn), and lax / barrier / point-to-point
synchronization models.

Quickstart::

    from repro import SimulationConfig, Simulator, get_workload

    config = SimulationConfig(num_tiles=32)
    simulator = Simulator(config)
    program = get_workload("fft").main(nthreads=32)
    result = simulator.run(program)
    print(result.simulated_cycles, result.slowdown)
"""

from repro.common.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    HostConfig,
    MemoryConfig,
    NetworkConfig,
    SimulationConfig,
    SyncConfig,
)
from repro.common.errors import (
    ConfigError,
    DeadlockError,
    ProtocolError,
    SimulationError,
    TargetFault,
)
from repro.frontend.api import ThreadContext
from repro.sim.experiment import RunStatistics, repeat_runs, sweep
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator
from repro.workloads import WORKLOADS, get_workload

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "ConfigError",
    "CoreConfig",
    "DeadlockError",
    "DramConfig",
    "HostConfig",
    "MemoryConfig",
    "NetworkConfig",
    "ProtocolError",
    "RunStatistics",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "Simulator",
    "SyncConfig",
    "TargetFault",
    "ThreadContext",
    "WORKLOADS",
    "get_workload",
    "repeat_runs",
    "sweep",
    "__version__",
]
