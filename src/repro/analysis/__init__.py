"""Analysis: turning raw simulation results into the paper's artefacts.

:mod:`repro.analysis.metrics` computes the derived quantities the paper
reports (speedups, slowdowns, error, CoV); :mod:`repro.analysis.tables`
renders aligned text tables matching the paper's table layouts; and
:mod:`repro.analysis.figures` renders series as text charts so every
figure has a directly comparable textual form in the benchmark output.
"""

from repro.analysis.metrics import (
    normalize,
    speedup_series,
)
from repro.analysis.tables import Table
from repro.analysis.figures import render_series
from repro.analysis.report import render_report

__all__ = ["Table", "normalize", "render_report", "render_series",
           "speedup_series"]
