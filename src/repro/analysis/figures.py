"""Text rendering of figure series.

Every paper figure the benchmarks regenerate is also printed as a text
chart so the *shape* (who wins, where curves cross) is visible straight
from the benchmark log, with the raw numbers alongside.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_BAR = "#"
_WIDTH = 48


def render_series(title: str, x_labels: Sequence[object],
                  series: Dict[str, Sequence[float]],
                  unit: str = "") -> str:
    """Render one or more aligned horizontal-bar series.

    ``series`` maps a legend name to one value per x label.  All series
    share a common scale so relative magnitudes are comparable.
    """
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_labels)} labels")
    peak = max((abs(v) for vs in series.values() for v in vs),
               default=1.0) or 1.0
    label_width = max((len(str(x)) for x in x_labels), default=1)
    name_width = max((len(n) for n in series), default=1)
    lines: List[str] = [title, "=" * len(title)]
    for i, x in enumerate(x_labels):
        for j, (name, values) in enumerate(series.items()):
            value = values[i]
            bar = _BAR * max(int(abs(value) / peak * _WIDTH), 0)
            x_text = str(x).rjust(label_width) if j == 0 \
                else " " * label_width
            lines.append(f"{x_text}  {name.ljust(name_width)} "
                         f"{value:10.3f}{unit} |{bar}")
        if len(series) > 1:
            lines.append("")
    return "\n".join(lines).rstrip()


def render_skew_trace(title: str,
                      trace: Sequence[tuple],
                      buckets: int = 24) -> str:
    """Render a clock-skew trace (Figure 7 style): max/min envelope.

    ``trace`` holds (global_clock, max_dev, min_dev) samples.
    """
    if not trace:
        return f"{title}\n(no samples)"
    lines = [title, "=" * len(title),
             f"{'global clock':>14}  {'min dev':>12}  {'max dev':>12}"]
    step = max(len(trace) // buckets, 1)
    for i in range(0, len(trace), step):
        window = trace[i:i + step]
        clock = window[-1][0]
        hi = max(w[1] for w in window)
        lo = min(w[2] for w in window)
        lines.append(f"{clock:14.0f}  {lo:12.0f}  {hi:12.0f}")
    peak = max(max(abs(w[1]), abs(w[2])) for w in trace)
    lines.append(f"peak |skew|: {peak:.0f} cycles")
    return "\n".join(lines)
