"""Derived metrics used across the benchmark harness."""

from __future__ import annotations

from typing import Dict, List, Sequence


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Divide every value by ``reference`` (e.g. single-core run-time)."""
    if reference == 0:
        raise ValueError("cannot normalize by zero")
    return [v / reference for v in values]


def speedup_series(wall_clocks: Sequence[float]) -> List[float]:
    """Speedups relative to the first configuration.

    The paper's Figures 4/5/9 plot speed-up normalized to the smallest
    configuration (one host core / one machine / one tile).
    """
    if not wall_clocks:
        return []
    base = wall_clocks[0]
    if base <= 0:
        raise ValueError("baseline wall-clock must be positive")
    return [base / w if w > 0 else float("inf") for w in wall_clocks]


def slowdown(simulation_seconds: float, native_seconds: float) -> float:
    """Simulation time over native time (Table 2's metric)."""
    if native_seconds <= 0:
        return float("inf")
    return simulation_seconds / native_seconds


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= v
    return product ** (1.0 / len(values))


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def median(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def miss_rate_breakdown(miss_counts: Dict[str, int],
                        total_accesses: int) -> Dict[str, float]:
    """Per-type miss *rates* (misses of each type per access).

    Figure 8 plots the stacked contribution of each miss type to the
    overall miss rate as line size varies.
    """
    if total_accesses <= 0:
        return {k: 0.0 for k in miss_counts}
    return {k: v / total_accesses for k, v in miss_counts.items()}
