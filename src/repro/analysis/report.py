"""Full simulation report — the equivalent of Graphite's ``sim.out``.

Renders one text document with everything a run measured: the target
and host configuration, per-thread core statistics, the memory
hierarchy (per-level hit rates, coherence activity, DRAM), per-class
network traffic, synchronization-model activity, and host-side
utilization.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import Table
from repro.common.config import SimulationConfig
from repro.common.units import pretty_bytes, pretty_seconds
from repro.sim.results import SimulationResult


def _section(title: str) -> str:
    return f"\n{title}\n{'-' * len(title)}"


def _sum(result: SimulationResult, suffix: str) -> int:
    return result.counter(suffix)


def render_report(config: SimulationConfig,
                  result: SimulationResult) -> str:
    """Render the complete post-simulation report."""
    lines: List[str] = ["Graphite reproduction - simulation report",
                        "=" * 42]

    # --- configuration ------------------------------------------------------
    lines.append(_section("Target configuration"))
    lines.append(f"tiles:           {config.num_tiles}")
    lines.append(f"core model:      {config.core.model} @ "
                 f"{config.core.clock_hz / 1e9:g} GHz")
    memory = config.memory
    lines.append(
        "L1I/L1D:         "
        + (f"{pretty_bytes(memory.l1i.size_bytes)} "
           f"{memory.l1i.associativity}-way"
           if memory.l1i.enabled else "disabled"))
    lines.append(f"L2:              {pretty_bytes(memory.l2.size_bytes)} "
                 f"{memory.l2.associativity}-way, "
                 f"{memory.l2.line_bytes} B lines")
    lines.append(f"coherence:       {memory.directory_type} directory "
                 f"MSI ({memory.directory_max_sharers} pointers)")
    lines.append(f"network:         {config.network.memory_model} "
                 f"(memory), {config.network.user_model} (user)")
    lines.append(f"sync model:      {config.sync.model}")
    lines.append(f"host:            {config.host.num_machines} machine(s)"
                 f" x {config.host.cores_per_machine} cores, "
                 f"{config.host.resolved_processes()} process(es)")

    # --- headline -----------------------------------------------------------------
    lines.append(_section("Run summary"))
    lines.append(f"simulated run-time:   {result.simulated_cycles:,} "
                 "cycles")
    lines.append(f"parallel region:      {result.parallel_cycles:,} "
                 "cycles")
    lines.append(f"instructions:         {result.total_instructions:,}")
    lines.append("host wall-clock:      "
                 f"{pretty_seconds(result.wall_clock_seconds)}")
    lines.append("native estimate:      "
                 f"{pretty_seconds(result.native_seconds)}")
    lines.append(f"slowdown:             {result.slowdown:,.1f}x")

    # --- per-thread ------------------------------------------------------------------
    lines.append(_section("Threads"))
    threads = Table("", ["tile", "start cycle", "final cycle",
                         "instructions", "CPI"])
    for tile in sorted(result.thread_cycles):
        cycles = result.thread_cycles[tile]
        start = result.thread_start_cycles.get(tile, 0)
        instructions = result.thread_instructions.get(tile, 0)
        cpi = (cycles - start) / instructions if instructions else 0.0
        threads.add_row(tile, start, cycles, instructions,
                        f"{cpi:.1f}")
    lines.append("\n".join(threads.render().splitlines()[2:]))

    # --- memory -----------------------------------------------------------------------
    lines.append(_section("Memory system"))
    for level in ("l1i", "l1d", "l2"):
        lookups = hits = 0
        needle = f".{level}."
        for key, value in result.counters.items():
            if needle in key and key.endswith(".lookups"):
                lookups += value
            elif needle in key and key.endswith(".hits"):
                hits += value
        if lookups:
            lines.append(f"{level.upper():4s} accesses: {lookups:>10,}  "
                         f"hit rate {hits / lookups:7.2%}")
    lines.append(f"read misses:      {_sum(result, '.read_misses'):,}")
    lines.append(f"write misses:     {_sum(result, '.write_misses'):,}")
    lines.append(f"upgrades:         {_sum(result, '.upgrades'):,}")
    dram_reads = sum(v for k, v in result.counters.items()
                     if "dram" in k and k.endswith(".reads"))
    dram_writes = sum(v for k, v in result.counters.items()
                      if "dram" in k and k.endswith(".writes"))
    lines.append(f"DRAM reads/writes: {dram_reads:,} / {dram_writes:,}")
    if result.miss_breakdown:
        parts = ", ".join(f"{kind}={count:,}"
                          for kind, count in
                          sorted(result.miss_breakdown.items()))
        lines.append(f"miss breakdown:   {parts}")

    # --- network -------------------------------------------------------------------------
    lines.append(_section("Network"))
    for net in ("user_net", "memory_net", "system_net"):
        packets = result.counters.get(
            f"sim.network.{net}.packets", 0)
        data = result.counters.get(f"sim.network.{net}.bytes", 0)
        latency = result.counters.get(
            f"sim.network.{net}.total_latency_cycles", 0)
        mean = latency / packets if packets else 0.0
        lines.append(f"{net:10s}: {packets:>10,} packets, "
                     f"{pretty_bytes(data) if data else '0 B':>9}, "
                     f"mean latency {mean:6.1f} cycles")
    lines.append("transport:  "
                 f"{_sum(result, 'transport.messages_sent'):,} messages "
                 f"({_sum(result, 'messages_cross_machine'):,} "
                 "cross-machine)")

    # --- synchronization ------------------------------------------------------------------
    lines.append(_section("Synchronization"))
    lines.append(f"futex waits/wakes: {_sum(result, '.futex_waits'):,} / "
                 f"{_sum(result, '.futex_wakes'):,}")
    lines.append("app barriers released: "
                 f"{_sum(result, 'mcp.barrier_releases'):,}")
    lines.append("sync wait cycles: "
                 f"{_sum(result, '.sync_wait_cycles'):,}")
    p2p = _sum(result, ".p2p_sleeps")
    barriers = _sum(result, ".barriers_released")
    if p2p:
        lines.append(f"LaxP2P sleeps:    {p2p:,}")
    if barriers:
        lines.append(f"LaxBarrier epochs: {barriers:,}")

    # --- sampling -----------------------------------------------------------------------------
    if result.sample:
        from repro.analysis.tables import sampling_table
        sample = result.sample
        lines.append(_section("Sampling"))
        ff = sample.get("ff")
        if ff:
            switched = (f"switched at {ff['cycle']:,}"
                        if ff.get("cycle") is not None
                        else "target not reached")
            lines.append(f"fast-forward:     target {ff['until']:,} "
                         f"cycles, {switched}")
        lines.append("mode switches:    "
                     f"{len(sample.get('mode_switches', []))}")
        library = sample.get("library")
        if library:
            origin = "primed" if library.get("primed") else "forked"
            lines.append(f"snapshot library: {origin} entry "
                         f"{library.get('key')}")
        extrapolation = sample.get("extrapolation")
        if extrapolation:
            lines.append(
                f"measured:         {extrapolation['windows']} "
                f"window(s), "
                f"{extrapolation['measured_instructions']:,} "
                f"instructions over "
                f"{extrapolation['measured_cycles']:,} cycles")
            confidence = int(round(extrapolation["confidence"] * 100))
            lines.append(
                f"extrapolated:     {extrapolation['cycles']:,} cycles, "
                f"{confidence}% CI "
                f"[{extrapolation['cycles_low']:,}, "
                f"{extrapolation['cycles_high']:,}]")
            if sample.get("windows"):
                lines.append("")
                lines.append(sampling_table(sample).render())

    # --- host ---------------------------------------------------------------------------------
    lines.append(_section("Host"))
    busy = sum(result.core_busy_seconds.values())
    cores = max(len(result.core_busy_seconds), 1)
    wall = result.wall_clock_seconds or 1.0
    lines.append(f"core busy time:   {pretty_seconds(busy)} over "
                 f"{cores} cores")
    lines.append(f"utilization:      {busy / (wall * cores):7.2%}")
    return "\n".join(lines)
