"""Aligned text tables for benchmark output."""

from __future__ import annotations

from typing import Any, List, Sequence


class Table:
    """A simple column-aligned table with a title.

    Numeric cells may be pre-formatted strings or raw numbers; raw
    floats render with 3 significant digits, which matches the
    precision the paper reports.
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    @staticmethod
    def _format(cell: Any) -> str:
        if isinstance(cell, str):
            return cell
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, int):
            return str(cell)
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            magnitude = abs(cell)
            if magnitude >= 1000:
                return f"{cell:,.0f}"
            if magnitude >= 1:
                return f"{cell:.2f}"
            return f"{cell:.4f}"
        return repr(cell)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append([self._format(c) for c in cells])

    def to_dict(self) -> dict:
        """Machine-readable form: the formatted rows, keyed by column.

        Benchmark artefact sidecars are built from this, so the JSON
        carries exactly the values the rendered table shows.
        """
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(zip(self.columns, row)) for row in self.rows],
        }

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def sampling_table(sample: dict) -> Table:
    """Per-window breakdown of an interval-sampled run.

    ``sample`` is a result's sampling payload (``result.sample``); the
    rows are the measured detail windows the extrapolation was built
    from, so a reader can see which stretches of target time the CPI
    estimate rests on.
    """
    table = Table("Measured windows",
                  ["window", "start", "end", "cycles",
                   "instructions", "CPI"])
    for index, window in enumerate(sample.get("windows", [])):
        instructions = window.get("instructions", 0)
        cpi = (window.get("cycles", 0) / instructions
               if instructions else 0.0)
        table.add_row(index, window.get("start", 0),
                      window.get("end", 0), window.get("cycles", 0),
                      instructions, f"{cpi:.2f}")
    return table
