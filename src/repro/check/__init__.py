"""Static and dynamic correctness checking for the simulator.

Five layers, all reachable through ``python -m repro check``:

``repro.check.lint``
    Repo-specific determinism lints that a generic linter cannot
    express: wall-clock reads in model code, stray randomness outside
    the seeded streams, hash-order-dependent set iteration, float
    arithmetic on cycle counts, and wire-format field safety.

``repro.check.wireproto``
    Wire-protocol conformance (rules P001–P003) against the
    declarative per-role spec in ``check/wire_proto.json``: frames a
    role may send, frames it must handle, requests that must have a
    reply site.

``repro.check.protocol``
    An exhaustive bounded-depth explorer that drives the *real*
    directory-MSI coherence engine through every interleaving of
    read/write requests for small configurations and asserts the
    protocol invariants at every reached state.

``repro.check.membership``
    The same treatment for the distributed membership machinery:
    abstract coordinator/worker automata (the worker side is the
    literal spec phase machine) driven through every ordering of
    quantum, checkpoint, join, drain, migrate and crash events, with
    worker death injected at every protocol state.

``repro.check.sanitize``
    Opt-in runtime sanitizers (``--sanitize``) that ride the telemetry
    bus and verify per-tile clock monotonicity, message-timestamp
    causality and barrier membership while a simulation runs.  They
    observe and never perturb: results are identical with them on or
    off.
"""

from repro.check.lint import LintFinding, lint_paths, lint_tree
from repro.check.membership import (
    MembershipExplorer,
    MembershipReport,
    MembershipViolation,
)
from repro.check.protocol import ExplorationReport, ProtocolExplorer
from repro.check.sanitize import Sanitizers
from repro.check.wireproto import RoleSites, extract_role, load_spec

__all__ = [
    "ExplorationReport",
    "LintFinding",
    "MembershipExplorer",
    "MembershipReport",
    "MembershipViolation",
    "ProtocolExplorer",
    "RoleSites",
    "Sanitizers",
    "extract_role",
    "lint_paths",
    "lint_tree",
    "load_spec",
]
