"""Static and dynamic correctness checking for the simulator.

Three layers, all reachable through ``python -m repro check``:

``repro.check.lint``
    Repo-specific determinism lints that a generic linter cannot
    express: wall-clock reads in model code, stray randomness outside
    the seeded streams, hash-order-dependent set iteration, float
    arithmetic on cycle counts, and wire-format field safety.

``repro.check.protocol``
    An exhaustive bounded-depth explorer that drives the *real*
    directory-MSI coherence engine through every interleaving of
    read/write requests for small configurations and asserts the
    protocol invariants at every reached state.

``repro.check.sanitize``
    Opt-in runtime sanitizers (``--sanitize``) that ride the telemetry
    bus and verify per-tile clock monotonicity, message-timestamp
    causality and barrier membership while a simulation runs.  They
    observe and never perturb: results are identical with them on or
    off.
"""

from repro.check.lint import LintFinding, lint_paths, lint_tree
from repro.check.protocol import ExplorationReport, ProtocolExplorer
from repro.check.sanitize import Sanitizers

__all__ = [
    "ExplorationReport",
    "LintFinding",
    "ProtocolExplorer",
    "Sanitizers",
    "lint_paths",
    "lint_tree",
]
