"""The ``python -m repro check`` entry point.

Runs the static determinism lints (including the P-rule wire-protocol
conformance checks) over the simulator source tree, the bounded-depth
coherence-protocol exploration against the real engine, and the
membership/migration model checker, exiting nonzero if any of them
finds anything.  With explicit paths the command lints just those
paths (the explorers are then opt-in via ``--protocol`` /
``--membership``) so a single fixture can be checked fast::

    python -m repro check                      # full tree + explorers
    python -m repro check path/to/file.py      # lint one file
    python -m repro check --depth 5 --tiles 2  # deeper, smaller config
    python -m repro check --membership-depth 6 # quicker membership run
    python -m repro check --format github      # CI annotations
    python -m repro check --accept-wire-schema # record wire schema
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional

from repro.check.lint import (
    LintFinding,
    accept_wire_schema,
    lint_paths,
    lint_tree,
)
from repro.check.membership import MembershipExplorer
from repro.check.protocol import ProtocolExplorer


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: "
                             "the repro package source tree)")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the determinism lints")
    parser.add_argument("--no-protocol", action="store_true",
                        help="skip the protocol state-space explorer")
    parser.add_argument("--protocol", action="store_true",
                        help="run the explorer even when explicit lint "
                             "paths are given")
    parser.add_argument("--tiles", type=int, default=3,
                        help="explorer: target tiles (default 3)")
    parser.add_argument("--lines", type=int, default=1,
                        help="explorer: distinct cache lines (default 1)")
    parser.add_argument("--depth", type=int, default=4,
                        help="explorer: interleaving depth (default 4)")
    parser.add_argument("--coherence", choices=("msi", "mesi"),
                        default="msi",
                        help="explorer: protocol (default msi)")
    parser.add_argument("--directory", default="full_map",
                        choices=("full_map", "limited", "limitless"),
                        help="explorer: directory type (default full_map)")
    parser.add_argument("--no-membership", action="store_true",
                        help="skip the membership/migration model "
                             "checker")
    parser.add_argument("--membership", action="store_true",
                        help="run the membership checker even when "
                             "explicit lint paths are given")
    parser.add_argument("--membership-depth", type=int, default=9,
                        help="membership: interleaving depth "
                             "(default 9)")
    parser.add_argument("--membership-workers", type=int, default=2,
                        help="membership: initial workers (default 2)")
    parser.add_argument("--membership-max-workers", type=int,
                        default=3,
                        help="membership: join capacity (default 3)")
    parser.add_argument("--membership-shards", type=int, default=2,
                        help="membership: shards (default 2)")
    parser.add_argument("--membership-jobs", type=int, default=1,
                        help="membership: serve jobs (default 1)")
    parser.add_argument("--format", choices=("text", "github"),
                        default="text", dest="output_format",
                        help="finding format: human text or GitHub "
                             "Actions ::error annotations")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    parser.add_argument("--accept-wire-schema", action="store_true",
                        help="record the current wire dataclass "
                             "schemas (distrib/wire.py, "
                             "serve/protocol.py and net/handshake.py) "
                             "as the reference (after a WIRE_VERSION "
                             "bump)")


def _github_escape(text: str) -> str:
    """Escape a message for a GitHub workflow command."""
    return text.replace("%", "%25").replace("\r", "%0D") \
        .replace("\n", "%0A")


def _relative_to_cwd(path: str) -> str:
    try:
        return str(Path(path).resolve().relative_to(Path.cwd()))
    except ValueError:
        return path


def _annotate_finding(finding: LintFinding) -> str:
    return (f"::error file={_relative_to_cwd(finding.path)},"
            f"line={finding.line},col={finding.col},"
            f"title={finding.rule}::"
            f"{_github_escape(finding.message)}")


def _annotate_violation(title: str, rendered: str) -> str:
    return f"::error title={title}::{_github_escape(rendered)}"


def _describe_record(old: Optional[dict], new: dict) -> str:
    if old == new:
        return "unchanged"
    fingerprint = new.get("fingerprint")
    version = new.get("wire_version")
    if old is None:
        return f"NEW (v{version}, fingerprint {fingerprint})"
    return (f"CHANGED (v{old.get('wire_version')} "
            f"{old.get('fingerprint')} -> v{version} {fingerprint})")


def _run_accept(args: argparse.Namespace) -> int:
    from repro.check.lint import _SCHEMA_PATH
    previous: dict = {}
    if _SCHEMA_PATH.exists():
        previous = json.loads(_SCHEMA_PATH.read_text())
    record = accept_wire_schema()
    rows = [
        ("wire (distrib/wire.py)",
         {k: previous.get(k) for k in ("wire_version", "fingerprint")}
         if previous else None,
         {k: record[k] for k in ("wire_version", "fingerprint")}),
        ("serve (serve/protocol.py)", previous.get("serve"),
         record["serve"]),
        ("net (net/handshake.py)", previous.get("net"), record["net"]),
    ]
    if args.json:
        print(json.dumps({
            "schema": record,
            "changed": [name for name, old, new in rows
                        if old != new]}, indent=2))
        return 0
    print(f"recorded wire schema manifest at {_SCHEMA_PATH}:")
    for name, old, new in rows:
        print(f"  {name}: {_describe_record(old, new)}")
    return 0


def run_check(args: argparse.Namespace) -> int:
    if args.accept_wire_schema:
        return _run_accept(args)

    github = args.output_format == "github"
    failed = False
    payload: dict = {}

    if not args.no_lint:
        if args.paths:
            findings = lint_paths([Path(p) for p in args.paths])
        else:
            findings = lint_tree()
        payload["lint"] = [f.__dict__ for f in findings]
        if findings:
            failed = True
        if not args.json:
            for finding in findings:
                print(_annotate_finding(finding) if github
                      else finding.render())
            scope = ", ".join(args.paths) if args.paths \
                else "repro source tree"
            print(f"lint: {len(findings)} finding(s) in {scope}")

    run_explorer = not args.no_protocol and \
        (not args.paths or args.protocol)
    if run_explorer:
        explorer = ProtocolExplorer(
            tiles=args.tiles, lines=args.lines, depth=args.depth,
            protocol=args.coherence, directory_type=args.directory)
        report = explorer.explore()
        payload["protocol"] = {
            "tiles": report.tiles,
            "lines": report.lines,
            "depth": report.depth,
            "protocol": report.protocol,
            "directory_type": report.directory_type,
            "explored_states": report.explored_states,
            "unique_states": report.unique_states,
            "transitions": report.transitions,
            "violations": [v.render() for v in report.violations],
            "unreachable": report.unreachable,
        }
        if not report.ok:
            failed = True
        if not args.json:
            print(report.render())
            if github:
                for violation in report.violations:
                    print(_annotate_violation("protocol-explorer",
                                              violation.render()))

    run_membership = not args.no_membership and \
        (not args.paths or args.membership)
    if run_membership:
        membership = MembershipExplorer(
            workers=args.membership_workers,
            max_workers=args.membership_max_workers,
            shards=args.membership_shards,
            jobs=args.membership_jobs,
            depth=args.membership_depth)
        report = membership.explore()
        payload["membership"] = {
            "workers": report.workers,
            "max_workers": report.max_workers,
            "shards": report.shards,
            "jobs": report.jobs,
            "depth": report.depth,
            "explored_states": report.explored_states,
            "unique_states": report.unique_states,
            "transitions": report.transitions,
            "crash_injections": report.crash_injections,
            "crash_phases": report.crash_phases,
            "violations": [v.render() for v in report.violations],
        }
        if not report.ok:
            failed = True
        if not args.json:
            print(report.render())
            if github:
                for violation in report.violations:
                    print(_annotate_violation("membership-explorer",
                                              violation.render()))

    if args.json:
        payload["ok"] = not failed
        print(json.dumps(payload, indent=2))
    return 1 if failed else 0


def main(argv: List[str] = None) -> int:  # pragma: no cover - thin shim
    parser = argparse.ArgumentParser(prog="repro check")
    add_check_arguments(parser)
    return run_check(parser.parse_args(argv))
