"""The ``python -m repro check`` entry point.

Runs the static determinism lints over the simulator source tree and
the bounded-depth protocol exploration against the real coherence
engine, exiting nonzero if either finds anything.  With explicit paths
the command lints just those paths (protocol exploration is then
opt-in via ``--protocol``) so a single fixture can be checked fast::

    python -m repro check                      # full tree + explorer
    python -m repro check path/to/file.py      # lint one file
    python -m repro check --depth 5 --tiles 2  # deeper, smaller config
    python -m repro check --accept-wire-schema # record wire schema
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List

from repro.check.lint import (
    accept_wire_schema,
    lint_paths,
    lint_tree,
    package_root,
)
from repro.check.protocol import ProtocolExplorer


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: "
                             "the repro package source tree)")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the determinism lints")
    parser.add_argument("--no-protocol", action="store_true",
                        help="skip the protocol state-space explorer")
    parser.add_argument("--protocol", action="store_true",
                        help="run the explorer even when explicit lint "
                             "paths are given")
    parser.add_argument("--tiles", type=int, default=3,
                        help="explorer: target tiles (default 3)")
    parser.add_argument("--lines", type=int, default=1,
                        help="explorer: distinct cache lines (default 1)")
    parser.add_argument("--depth", type=int, default=4,
                        help="explorer: interleaving depth (default 4)")
    parser.add_argument("--coherence", choices=("msi", "mesi"),
                        default="msi",
                        help="explorer: protocol (default msi)")
    parser.add_argument("--directory", default="full_map",
                        choices=("full_map", "limited", "limitless"),
                        help="explorer: directory type (default full_map)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    parser.add_argument("--accept-wire-schema", action="store_true",
                        help="record the current wire dataclass "
                             "schemas (distrib/wire.py and "
                             "serve/protocol.py) as the reference "
                             "(after a WIRE_VERSION bump)")


def run_check(args: argparse.Namespace) -> int:
    if args.accept_wire_schema:
        record = accept_wire_schema()
        print(f"recorded wire schema: version "
              f"{record['wire_version']}, "
              f"fingerprint {record['fingerprint']}; "
              f"serve protocol version "
              f"{record['serve']['wire_version']}, "
              f"fingerprint {record['serve']['fingerprint']}")
        return 0

    failed = False
    payload: dict = {}

    if not args.no_lint:
        if args.paths:
            findings = lint_paths([Path(p) for p in args.paths])
        else:
            findings = lint_tree()
        payload["lint"] = [f.__dict__ for f in findings]
        if findings:
            failed = True
        if not args.json:
            for finding in findings:
                print(finding.render())
            scope = ", ".join(args.paths) if args.paths \
                else "repro source tree"
            print(f"lint: {len(findings)} finding(s) in {scope}")

    run_explorer = not args.no_protocol and \
        (not args.paths or args.protocol)
    if run_explorer:
        explorer = ProtocolExplorer(
            tiles=args.tiles, lines=args.lines, depth=args.depth,
            protocol=args.coherence, directory_type=args.directory)
        report = explorer.explore()
        payload["protocol"] = {
            "tiles": report.tiles,
            "lines": report.lines,
            "depth": report.depth,
            "protocol": report.protocol,
            "directory_type": report.directory_type,
            "explored_states": report.explored_states,
            "unique_states": report.unique_states,
            "transitions": report.transitions,
            "violations": [v.render() for v in report.violations],
            "unreachable": report.unreachable,
        }
        if not report.ok:
            failed = True
        if not args.json:
            print(report.render())

    if args.json:
        payload["ok"] = not failed
        print(json.dumps(payload, indent=2))
    return 1 if failed else 0


def main(argv: List[str] = None) -> int:  # pragma: no cover - thin shim
    parser = argparse.ArgumentParser(prog="repro check")
    add_check_arguments(parser)
    return run_check(parser.parse_args(argv))
