"""Determinism lints the generic linters cannot express (rules D/W).

The simulator's credibility rests on determinism: identical seeds must
give identical metrics on every backend, host and ``PYTHONHASHSEED``.
These rules encode the repo-specific ways that property gets broken:

``D001``
    No wall-clock reads (``time.time``/``perf_counter``/``monotonic``/
    ``datetime.now`` ...) in *model* code — ``core/``, ``memory/``,
    ``network/``, ``sync/``, ``sim/``.  Host-side code (``host/``,
    ``telemetry/``, ``distrib/``) legitimately reads real time for
    timeouts and trace wall-stamps and is outside the rule's scope.
    The host profiler (``profile/``) is the *sanctioned* wall-clock
    reader: the whole sub-package is exempted by scope
    (:data:`D001_EXEMPT_DIRS`) rather than per-line allow markers, so
    its timers never accumulate suppression comments — while model
    code stays rejected.

``D002``
    No direct ``random.Random(...)`` construction and no module-level
    ``random.*`` calls anywhere except ``common/rng.py``: all
    randomness must come from the named, seeded streams of
    :class:`repro.common.rng.RngStreams`, or one consumer's draws
    perturb another's sequence and sweep repeats silently share state.

``D003``
    No iteration over ``set`` values in model or distrib code.  Set
    order depends on ``PYTHONHASHSEED`` and insertion history; iterating
    one can leak hash order into timestamps, RNG draw order or wire
    frames.  Use a ``dict`` keyed by the members (an ordered set) or
    ``sorted(...)``.

``D004``
    No float arithmetic or float equality on cycle counts.  Cycles are
    integers; mixing in float literals or true division silently turns
    timestamps into floats whose rounding differs across platforms.

``W001``
    Wire safety for ``distrib/wire.py``: every dataclass carries only
    allowlisted picklable field types, and any change to the field
    schema requires a ``WIRE_VERSION`` bump (tracked via a fingerprint
    manifest, refreshed with ``repro check --accept-wire-schema``).

``P001``–``P003``
    Wire-*protocol* conformance (who may send what, what must be
    handled, which requests must have a reply site), checked against
    the declarative spec in ``check/wire_proto.json``.  The rules
    live in :mod:`repro.check.wireproto` and run automatically for
    the modules the spec names.

A finding can be suppressed with an inline comment on the offending
line::

    t0 = time.perf_counter()  # check: allow D001 -- host-side profiling

The justification after ``--`` is mandatory; a bare allow marker is
itself reported (rule ``W002``).
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Sub-packages whose code models the target and must be wall-clock and
#: float-cycle clean (D001/D004) and set-iteration clean (D003).
#: ``sample`` is in scope because mode switches and window boundaries
#: are decided in target cycles — a wall clock or a float there would
#: break byte-identical forking.
MODEL_DIRS = ("core", "memory", "network", "sync", "sim", "sample")

#: Sub-packages sanctioned to read wall clocks (D001): host profiling
#: *is* wall-clock measurement, so ``src/repro/profile/`` is exempt as
#: a scope — no per-line suppression markers needed there.  The
#: observability layer (``src/repro/obs/`` — ``repro top`` refresh
#: loops, flight-recorder dump timestamps) is host-side by definition
#: and exempt for the same reason; model code stays rejected.
D001_EXEMPT_DIRS = ("profile", "obs")

#: D003 additionally covers the wire/distribution layers: hash order
#: leaking into frames breaks cross-process byte-identity, and the
#: serve daemon's scheduling decisions must not depend on it either.
#: ``net/`` carries both wires (TCP channels, handshake, listener
#: accept order), so it is in scope too.
SET_ITER_DIRS = MODEL_DIRS + ("distrib", "serve", "net")

#: Modules under the W001 manifest, mapped to their record key inside
#: ``check/wire_schema.json`` (``None`` = the top-level record — the
#: original pickle wire keeps its historical layout).
WIRE_MODULES: Dict[str, Optional[str]] = {
    "distrib/wire.py": None,
    "serve/protocol.py": "serve",
    "net/handshake.py": "net",
}

#: The one module allowed to construct random.Random.
RNG_MODULE = "common/rng.py"

#: Wall-clock reading callables, by dotted name (D001).
WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "date.today",
}

#: Type names a wire dataclass field may be built from (W001).
WIRE_SAFE_TYPES = {
    "str", "int", "float", "bool", "bytes", "None",
    "Any", "Optional", "Dict", "dict", "List", "list",
    "Tuple", "tuple", "Mapping", "Sequence",
}

#: ``... # check: allow D001 -- why`` suppression marker.
_ALLOW_RE = re.compile(
    r"#\s*check:\s*allow\s+(?P<rules>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)"
    r"(?P<just>\s*--\s*\S.*)?")

#: Identifier fragments marking a value as a cycle count (D004).
_CYCLEISH_RE = re.compile(r"cycle|clock|timestamp|epoch", re.IGNORECASE)
#: ...unless the name says it lives in another unit domain
#: (``*_per_cycle`` is a rate, not a cycle count).
_NOT_CYCLEISH_RE = re.compile(
    r"seconds|_hz|hz$|rate|freq|skew|per_cycle", re.IGNORECASE)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class RuleScope:
    """Which rules apply to one file."""

    wall_clock: bool      # D001
    randomness: bool      # D002
    set_iteration: bool   # D003
    float_cycles: bool    # D004
    wire_safety: bool     # W001
    #: The real wire module additionally checks the version manifest.
    wire_manifest: bool = False


def scope_for(path: Path, package_root: Optional[Path]) -> RuleScope:
    """Resolve the rule set for ``path``.

    Inside the package tree, scope follows the sub-package; outside it
    (lint fixtures, ad-hoc files) every rule applies so a fixture can
    exercise its rule without replicating the tree layout.  Wire safety
    outside the tree applies only to modules that declare a
    ``WIRE_VERSION`` (checked later against the parsed module).
    """
    if package_root is not None:
        try:
            rel = path.resolve().relative_to(package_root.resolve())
        except ValueError:
            rel = None
        if rel is not None:
            top = rel.parts[0] if len(rel.parts) > 1 else ""
            as_posix = rel.as_posix()
            return RuleScope(
                wall_clock=(top in MODEL_DIRS
                            and top not in D001_EXEMPT_DIRS),
                randomness=as_posix != RNG_MODULE,
                set_iteration=top in SET_ITER_DIRS,
                float_cycles=top in MODEL_DIRS,
                wire_safety=as_posix in WIRE_MODULES,
                wire_manifest=as_posix in WIRE_MODULES,
            )
    return RuleScope(wall_clock=True, randomness=True, set_iteration=True,
                     float_cycles=True, wire_safety=True)


# -- suppression -------------------------------------------------------------


class _Suppressions:
    """Per-line ``check: allow`` markers, with mandatory justification."""

    def __init__(self, source: str, path: str) -> None:
        self.allowed: Dict[int, Set[str]] = {}
        self.findings: List[LintFinding] = []
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _ALLOW_RE.search(text)
            if match is None:
                continue
            rules = {r.strip() for r in match.group("rules").split(",")}
            if not match.group("just"):
                self.findings.append(LintFinding(
                    "W002", path, lineno, match.start() + 1,
                    "allowlist entry without a justification "
                    "(write `# check: allow RULE -- why`)"))
                continue
            self.allowed.setdefault(lineno, set()).update(rules)

    def active(self, rule: str, first_line: int, last_line: int) -> bool:
        return any(rule in self.allowed.get(line, ())
                   for line in range(first_line, last_line + 1))


# -- the per-module visitor --------------------------------------------------


class _ModuleLinter(ast.NodeVisitor):
    def __init__(self, path: str, scope: RuleScope,
                 suppressions: _Suppressions) -> None:
        self.path = path
        self.scope = scope
        self.suppressions = suppressions
        self.findings: List[LintFinding] = []
        #: local alias -> canonical module ("t" -> "time").
        self._module_aliases: Dict[str, str] = {}
        #: local name -> canonical dotted callable ("pc" ->
        #: "time.perf_counter", "Random" -> "random.Random").
        self._from_imports: Dict[str, str] = {}
        #: Names/attrs known to hold a set value ("waiters",
        #: "self._waiting").
        self._set_symbols: Set[str] = set()
        self.defines_wire_version = False

    # -- helpers -------------------------------------------------------------

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        last = getattr(node, "end_lineno", None) or line
        if self.suppressions.active(rule, line, last):
            return
        self.findings.append(LintFinding(
            rule, self.path, line, getattr(node, "col_offset", 0) + 1,
            message))

    def _dotted(self, node: ast.AST) -> Optional[str]:
        """Resolve a call target into a canonical dotted name."""
        if isinstance(node, ast.Name):
            if node.id in self._from_imports:
                return self._from_imports[node.id]
            return node.id
        if isinstance(node, ast.Attribute):
            base = self._dotted(node.value)
            if base is None:
                return None
            base = self._module_aliases.get(base, base)
            return f"{base}.{node.attr}"
        return None

    def _symbol(self, node: ast.AST) -> Optional[str]:
        """A trackable symbol: bare name or ``self.attr``."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self":
            return f"self.{node.attr}"
        return None

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._module_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self._from_imports[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- D001 / D002: calls --------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            if self.scope.wall_clock and dotted in WALL_CLOCK_CALLS:
                self._report(
                    "D001", node,
                    f"wall-clock read `{dotted}()` in model code; model "
                    "time must come from simulated clocks only")
            if self.scope.randomness and (
                    dotted.startswith("random.")):
                self._report(
                    "D002", node,
                    f"direct `{dotted}()` call; draw from a named "
                    "stream of repro.common.rng.RngStreams instead")
        if self.scope.set_iteration and \
                isinstance(node.func, ast.Name) and \
                node.func.id in ("list", "tuple", "iter", "enumerate") \
                and node.args and self._is_set_expr(node.args[0]):
            self._report(
                "D003", node,
                f"`{node.func.id}()` over a set bakes hash order into "
                "a sequence; use sorted(...) or an ordered dict-set")
        self.generic_visit(node)

    # -- D003: set tracking and iteration ------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            callee = self._dotted(node.func)
            if callee in ("set", "frozenset"):
                return True
            # set-returning combinators on known sets: s.union(...) etc.
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in ("union", "intersection",
                                       "difference",
                                       "symmetric_difference") and \
                    self._is_set_expr(node.func.value):
                return True
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                     ast.BitXor)) and \
                (self._is_set_expr(node.left)
                 or self._is_set_expr(node.right)):
            return True
        symbol = self._symbol(node)
        return symbol is not None and symbol in self._set_symbols

    def _note_binding(self, target: ast.AST, value: ast.AST) -> None:
        symbol = self._symbol(target)
        if symbol is None:
            return
        if self._is_set_expr(value):
            self._set_symbols.add(symbol)
        else:
            self._set_symbols.discard(symbol)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Tuple) and \
                    isinstance(node.value, ast.Tuple) and \
                    len(target.elts) == len(node.value.elts):
                # a, b = x, set() — propagate element-wise (the swap
                # idiom used to drain a set each epoch).
                for t, v in zip(target.elts, node.value.elts):
                    self._note_binding(t, v)
            else:
                self._note_binding(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        symbol = self._symbol(node.target)
        if symbol is not None:
            annotation = ast.dump(node.annotation)
            if re.search(r"'(Set|FrozenSet|set|frozenset)'", annotation):
                self._set_symbols.add(symbol)
            elif node.value is not None:
                self._note_binding(node.target, node.value)
        self.generic_visit(node)

    def _check_iteration(self, iterable: ast.AST, node: ast.AST) -> None:
        if self.scope.set_iteration and self._is_set_expr(iterable):
            self._report(
                "D003", node,
                "iteration over a set; order depends on PYTHONHASHSEED "
                "and can leak into timestamps, RNG draws and wire "
                "frames — use a dict-as-ordered-set or sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- D004: float arithmetic on cycles ------------------------------------

    def _is_cycleish(self, node: ast.AST) -> bool:
        if isinstance(node, ast.BinOp):
            return self._is_cycleish(node.left) or \
                self._is_cycleish(node.right)
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            return False
        return bool(_CYCLEISH_RE.search(name)) and \
            not _NOT_CYCLEISH_RE.search(name)

    @staticmethod
    def _is_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        return isinstance(node, ast.UnaryOp) and \
            isinstance(node.operand, ast.Constant) and \
            isinstance(node.operand.value, float)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self.scope.float_cycles:
            cycleish = self._is_cycleish(node.left) or \
                self._is_cycleish(node.right)
            if cycleish and isinstance(node.op, ast.Div):
                self._report(
                    "D004", node,
                    "true division on a cycle count produces a float; "
                    "use // (or convert to an explicit seconds domain)")
            elif cycleish and (self._is_float_literal(node.left)
                               or self._is_float_literal(node.right)):
                self._report(
                    "D004", node,
                    "float literal in cycle arithmetic; cycle counts "
                    "must stay integral")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.scope.float_cycles:
            operands = [node.left] + list(node.comparators)
            has_cycle = any(self._is_cycleish(o) for o in operands)
            has_float = any(self._is_float_literal(o) for o in operands)
            if has_cycle and has_float and any(
                    isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                self._report(
                    "D004", node,
                    "float equality against a cycle count; compare "
                    "integers")
        self.generic_visit(node)

    # -- W001: wire dataclass fields -----------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and \
                        target.id == "WIRE_VERSION":
                    self.defines_wire_version = True
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.scope.wire_safety and _is_dataclass(node):
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                bad = _unsafe_annotation_names(stmt.annotation)
                if bad:
                    self._report(
                        "W001", stmt,
                        f"wire dataclass `{node.name}` field uses "
                        f"non-allowlisted type(s) {sorted(bad)}; wire "
                        "frames may carry only plain picklable data "
                        f"(allowed: {sorted(WIRE_SAFE_TYPES - {'None'})})")
        self.generic_visit(node)


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and \
                target.attr == "dataclass":
            return True
    return False


def _unsafe_annotation_names(annotation: ast.AST) -> Set[str]:
    """Identifiers in an annotation that are not wire-safe."""
    bad: Set[str] = set()
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name) and sub.id not in WIRE_SAFE_TYPES:
            bad.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            if sub.attr not in WIRE_SAFE_TYPES:
                bad.add(sub.attr)
        elif isinstance(sub, ast.Constant) and \
                isinstance(sub.value, str) and \
                sub.value not in WIRE_SAFE_TYPES:
            # Forward references ("Waiters") hide custom classes.
            bad.add(sub.value)
    return bad


# -- the wire schema manifest ------------------------------------------------

_SCHEMA_PATH = Path(__file__).with_name("wire_schema.json")


def wire_fingerprint(tree: ast.Module) -> Tuple[str, Optional[int]]:
    """Schema fingerprint of a wire module: dataclass fields + types.

    Returns ``(fingerprint, wire_version)``; the fingerprint hashes the
    ordered ``(class, field, annotation)`` triples so *any* field
    change — add, remove, rename, retype — changes it.
    """
    rows: List[Tuple[str, str, str]] = []
    version: Optional[int] = None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "WIRE_VERSION" and \
                        isinstance(node.value, ast.Constant):
                    version = int(node.value.value)
        if isinstance(node, ast.ClassDef) and _is_dataclass(node):
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and \
                        isinstance(stmt.target, ast.Name):
                    rows.append((node.name, stmt.target.id,
                                 ast.dump(stmt.annotation)))
    digest = hashlib.sha256(repr(rows).encode("utf-8")).hexdigest()[:16]
    return digest, version


def check_wire_manifest(tree: ast.Module, path: str,
                        schema_path: Path = _SCHEMA_PATH,
                        record_key: Optional[str] = None
                        ) -> List[LintFinding]:
    """W001 manifest check: field changes require a version bump.

    ``record_key`` selects the module's record inside the manifest:
    ``None`` reads the top-level entry (the pickle wire), a string
    reads a nested one (e.g. ``"serve"`` for the serve protocol).
    """
    fingerprint, version = wire_fingerprint(tree)
    if not schema_path.exists():
        return [LintFinding(
            "W001", path, 1, 1,
            "no wire schema manifest recorded; run "
            "`python -m repro check --accept-wire-schema`")]
    recorded = json.loads(schema_path.read_text())
    if record_key is not None:
        recorded = recorded.get(record_key)
        if not isinstance(recorded, dict):
            return [LintFinding(
                "W001", path, 1, 1,
                f"no {record_key!r} record in the wire schema "
                "manifest; run `python -m repro check "
                "--accept-wire-schema`")]
    findings: List[LintFinding] = []
    if recorded.get("fingerprint") != fingerprint:
        findings.append(LintFinding(
            "W001", path, 1, 1,
            "wire dataclass fields changed since the recorded schema; "
            "bump WIRE_VERSION and run `python -m repro check "
            "--accept-wire-schema`"))
    elif recorded.get("wire_version") != version:
        findings.append(LintFinding(
            "W001", path, 1, 1,
            f"WIRE_VERSION is {version} but the recorded schema says "
            f"{recorded.get('wire_version')}; fields and version must "
            "change together"))
    return findings


def accept_wire_schema(root: Optional[Path] = None,
                       schema_path: Path = _SCHEMA_PATH) -> dict:
    """Record every wire module's schema fingerprint (after a bump).

    One manifest covers all of :data:`WIRE_MODULES`: the pickle wire's
    record at the top level, each additional protocol (the serve JSON
    frames) nested under its record key.
    """
    root = package_root() if root is None else root
    record: dict = {}
    for rel, key in WIRE_MODULES.items():
        module = root / Path(rel)
        tree = ast.parse(module.read_text(), filename=str(module))
        fingerprint, version = wire_fingerprint(tree)
        entry = {"wire_version": version, "fingerprint": fingerprint}
        if key is None:
            record.update(entry)
        else:
            record[key] = entry
    # Atomic replace: a crash mid-write must never leave a truncated
    # manifest that would flag every wire module at once.
    tmp = schema_path.with_name(schema_path.name + ".tmp")
    tmp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    tmp.replace(schema_path)
    return record


# -- entry points ------------------------------------------------------------


def package_root() -> Path:
    """Root of the installed ``repro`` package (the linted tree)."""
    return Path(__file__).resolve().parent.parent


def lint_file(path: Path,
              root: Optional[Path] = None) -> List[LintFinding]:
    """Lint one file; ``root`` defaults to the repro package root."""
    root = package_root() if root is None else root
    scope = scope_for(path, root)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [LintFinding("E999", str(path), exc.lineno or 1,
                            (exc.offset or 0) + 1,
                            f"syntax error: {exc.msg}")]
    suppressions = _Suppressions(source, str(path))
    # Outside the package tree, wire safety applies only to modules
    # that actually declare a wire format.
    probe = _ModuleLinter(str(path), scope, suppressions)
    probe.visit(tree)
    findings = list(probe.findings)
    if not scope.wire_manifest and scope.wire_safety and \
            not probe.defines_wire_version:
        findings = [f for f in findings if f.rule != "W001"]
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = None
    if scope.wire_manifest and rel is not None:
        findings.extend(check_wire_manifest(
            tree, str(path), record_key=WIRE_MODULES[rel]))
    if rel is not None:
        # Protocol conformance (P001-P003) for the modules the wire
        # spec names.  Imported lazily: wireproto imports back from
        # this module.
        from repro.check import wireproto
        spec = wireproto.load_spec()
        if rel in wireproto.spec_modules(spec):
            findings.extend(wireproto.lint_wireproto(
                tree, str(path), rel, suppressions, spec))
    findings.extend(suppressions.findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(paths: Sequence[Path],
               root: Optional[Path] = None) -> List[LintFinding]:
    """Lint files and directory trees; directories recurse over ``*.py``."""
    findings: List[LintFinding] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                findings.extend(lint_file(child, root))
        else:
            findings.extend(lint_file(path, root))
    return findings


def lint_tree(root: Optional[Path] = None) -> List[LintFinding]:
    """Lint the whole repro package source tree."""
    root = package_root() if root is None else root
    return lint_paths([root], root)


def render_findings(findings: Iterable[LintFinding]) -> str:
    return "\n".join(f.render() for f in findings)
