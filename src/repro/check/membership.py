"""Exhaustive model checking of membership, migration and recovery.

The elastic-membership machinery (PR 7) promises that *any* history of
joins, drains, live migrations, checkpoints and worker crashes leaves
the cluster consistent: every shard owned by exactly one live worker,
stats never double-counted after a RELEASE, requeued jobs never lost,
and the checkpoint barrier never deadlocked.  Those promises hold or
break in the *interleavings* — exactly the thing example-based tests
cannot enumerate.

This checker explores them all, bounded by depth.  It drives abstract
coordinator/worker automata — the worker side is the literal phase
machine from ``check/wire_proto.json``, so the model and the lint
rules share one source of truth — through every ordering of:

- quantum rounds (RUN_QUANTUM fan-out, QUANTUM_DONE collection),
- stats collection (COLLECT_STATS/STATS),
- checkpoint barriers (CHECKPOINT fan-out, CKPT_ACK collection),
- worker joins (HELLO at a quantum boundary) and drains (GOODBYE),
- live migration handshakes (CHECKPOINT -> ADOPT -> RELEASE, with or
  without a departing source),
- serve-style job assignment/completion riding the same membership,
- worker crashes, injected at **every** reachable protocol state
  (mid-barrier, mid-quantum, mid-migration, mid-restore, ...), and
- crash recovery (requeue + RESTORE fan-out from the last barrier).

Safety invariants are asserted in every reached state:

1. no shard is owned by two live workers at once;
2. no shard is orphaned (quiescent states must cover every shard);
3. no shard is resident in two live kernels (stats double-count);
4. no requeued job is lost, and no job runs on a dead worker;
5. the cluster never deadlocks: every non-failed state has a
   successor, and a barrier blocked on a crashed worker is reported
   at the blocking step.

Like the coherence explorer, a violation carries the exact event
sequence that produced it — a minimal reproduction, because the BFS
reaches every state first via a shortest path.  The ``bugs=`` seeds
(used by the test suite) demonstrate each invariant class actually
fires: every flag injects one classic distributed-membership bug into
the abstract coordinator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.check.wireproto import load_spec

_LIVE, _DEPARTED, _CRASHED = "live", "departed", "crashed"

#: Seedable coordinator bugs, one per invariant class (tests only).
KNOWN_BUGS = frozenset({
    "double_owner",        # commit keeps src+dst in the owner map
    "skip_release",        # migration skips the RELEASE leg
    "orphan_on_recovery",  # recovery forgets one crashed shard
    "lose_requeued_job",   # a crashed worker's job is dropped
    "no_crash_detection",  # barrier sends block on dead peers
    "barrier_in_quantum",  # checkpoint started mid-quantum
})

#: Micro-steps of the migration handshake, in wire order.
_MIGRATE_STEPS = ("ckpt", "ckpt_ack", "adopt", "adopt_ack",
                  "release", "release_ack", "goodbye")

#: Fan-out/collect ops: (recv frame at fan-out, send frame at collect).
_BARRIER_FRAMES = {
    "quantum": (("recv", "RUN_QUANTUM"), ("send", "QUANTUM_DONE")),
    "collect": (("recv", "COLLECT_STATS"), ("send", "STATS")),
    "ckpt": (("recv", "CHECKPOINT"), ("send", "CKPT_ACK")),
    "restore": (("recv", "RESTORE"), ("send", "CKPT_ACK")),
}


@dataclass(frozen=True)
class ClusterState:
    """One abstract cluster configuration (fully hashable)."""

    status: Tuple[str, ...]                  # per worker slot
    phase: Tuple[str, ...]                   # worker automaton phase
    kernel: Tuple[FrozenSet[int], ...]       # shards resident per slot
    owner: Tuple[FrozenSet[int], ...]        # owning slots per shard
    ckpt: Optional[FrozenSet[int]]           # shards the last barrier covers
    jobs: Tuple[Tuple[str, int], ...]        # (state, worker) per job
    op: Optional[Tuple]                      # in-flight coordinator op
    failed: bool = False                     # clean, accounted failure


@dataclass(frozen=True)
class MembershipViolation:
    """An invariant failure plus the event sequence reproducing it."""

    trace: Tuple[str, ...]
    message: str

    def render(self) -> str:
        trace = " -> ".join(self.trace) if self.trace else "<initial>"
        return f"[{trace}] {self.message}"


@dataclass
class MembershipReport:
    """What the bounded-depth BFS covered and what it found."""

    workers: int
    max_workers: int
    shards: int
    jobs: int
    depth: int
    explored_states: int = 0
    unique_states: int = 0
    transitions: int = 0
    crash_injections: int = 0
    #: Worker-automaton phases a crash was injected in; "crash at
    #: every protocol state" means this covers every phase the model
    #: can occupy.
    crash_phases: List[str] = field(default_factory=list)
    violations: List[MembershipViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        head = (f"workers={self.workers}..{self.max_workers} "
                f"shards={self.shards} jobs={self.jobs} "
                f"depth={self.depth}")
        body = (f"explored {self.explored_states} states "
                f"({self.unique_states} unique, "
                f"{self.transitions} transitions, "
                f"{self.crash_injections} crash injections over "
                f"phases {self.crash_phases})")
        out = [f"membership explorer: {head}", f"  {body}"]
        for violation in self.violations:
            out.append(f"  VIOLATION {violation.render()}")
        if self.ok:
            out.append("  all membership invariants hold in every "
                       "reached state")
        return "\n".join(out)


def _set_at(items: Tuple, index: int, value) -> Tuple:
    return items[:index] + (value,) + items[index + 1:]


class MembershipExplorer:
    """Bounded-depth BFS over membership/fault event interleavings."""

    def __init__(self, workers: int = 2, max_workers: int = 3,
                 shards: int = 2, jobs: int = 1, depth: int = 9,
                 bugs: FrozenSet[str] = frozenset(),
                 max_violations: int = 10,
                 spec: Optional[dict] = None) -> None:
        if workers < 1 or shards < 1:
            raise ValueError("need at least one worker and one shard")
        unknown = set(bugs) - KNOWN_BUGS
        if unknown:
            raise ValueError(f"unknown bug seed(s) {sorted(unknown)}")
        self.workers = workers
        self.max_workers = max(max_workers, workers)
        self.shards = shards
        self.jobs = jobs
        self.depth = depth
        self.bugs = frozenset(bugs)
        self.max_violations = max_violations
        spec = load_spec() if spec is None else spec
        machine = spec["phases"]["worker"]
        self._transitions: Dict[str, Dict[str, str]] = \
            machine["transitions"]
        #: Phase a worker lands in once greeted (HELLO completes).
        self._joined = self._transitions[machine["initial"]]["recv HELLO"]

    # -- spec-driven worker automaton ----------------------------------------

    def _phase_after(self, phase: str, direction: str,
                     frame: str) -> Optional[str]:
        return self._transitions.get(phase, {}).get(
            f"{direction} {frame}")

    # -- initial state --------------------------------------------------------

    def initial_state(self) -> ClusterState:
        owner = tuple(frozenset({s % self.workers})
                      for s in range(self.shards))
        kernel = tuple(
            frozenset(s for s in range(self.shards)
                      if w in owner[s])
            for w in range(self.workers))
        return ClusterState(
            status=(_LIVE,) * self.workers,
            phase=(self._joined,) * self.workers,
            kernel=kernel,
            owner=owner,
            ckpt=None,
            jobs=(("queued", -1),) * self.jobs,
            op=None,
            failed=False)

    # -- invariants -----------------------------------------------------------

    def _live(self, state: ClusterState) -> List[int]:
        return [w for w in range(len(state.status))
                if state.status[w] == _LIVE]

    def _dirty(self, state: ClusterState, w: int) -> bool:
        """A crashed worker the coordinator has not yet recovered."""
        if state.status[w] != _CRASHED:
            return False
        return bool(state.kernel[w]) or \
            any(w in owners for owners in state.owner) or \
            any(js == "run" and jw == w for js, jw in state.jobs)

    def _quiescent(self, state: ClusterState) -> bool:
        return state.op is None and not state.failed and not any(
            self._dirty(state, w) for w in range(len(state.status)))

    def invariant_errors(self, state: ClusterState) -> List[str]:
        errors: List[str] = []
        live = set(self._live(state))
        for s, owners in enumerate(state.owner):
            live_owners = sorted(owners & live)
            if len(live_owners) > 1:
                errors.append(
                    f"shard {s} owned by {len(live_owners)} live "
                    f"workers {live_owners} at once "
                    "(single-owner invariant)")
        for j, (js, jw) in enumerate(state.jobs):
            if js == "lost":
                errors.append(
                    f"job {j} was lost instead of requeued after its "
                    "worker crashed (job-conservation invariant)")
        if self._quiescent(state):
            for s, owners in enumerate(state.owner):
                if not owners & live:
                    errors.append(
                        f"shard {s} orphaned: no live owner after "
                        "the membership change (coverage invariant)")
            for s in range(self.shards):
                holders = sorted(w for w in live
                                 if s in state.kernel[w])
                if len(holders) > 1:
                    errors.append(
                        f"shard {s} resident in {len(holders)} live "
                        f"kernels {holders}: its stats would "
                        "double-count (post-RELEASE invariant)")
            for j, (js, jw) in enumerate(state.jobs):
                if js == "run" and jw not in live:
                    errors.append(
                        f"job {j} recorded as running on non-live "
                        f"worker {jw} (job-conservation invariant)")
        return errors

    # -- successor generation -------------------------------------------------

    def _successors(self, state: ClusterState
                    ) -> Tuple[List[Tuple[str, ClusterState]],
                               List[Tuple[str, str]]]:
        """Enabled transitions plus violations raised *at* this state.

        The second list holds (event label, message) pairs for steps
        the protocol cannot take — an illegal frame for the target's
        phase, or a barrier blocked forever on a dead peer.
        """
        if state.failed:
            return [], []
        transitions: List[Tuple[str, ClusterState]] = []
        immediate: List[Tuple[str, str]] = []
        for w in self._live(state):
            transitions.append((
                f"crash w={w}",
                replace(state, status=_set_at(state.status, w,
                                              _CRASHED))))
        if state.op is not None:
            self._op_steps(state, transitions, immediate)
            return transitions, immediate
        dirty = [w for w in range(len(state.status))
                 if self._dirty(state, w)]
        if dirty:
            self._recover(state, transitions)
            return transitions, immediate
        self._start_events(state, transitions)
        return transitions, immediate

    def _start_events(self, state: ClusterState,
                      transitions: List[Tuple[str, ClusterState]]
                      ) -> None:
        live = self._live(state)
        parts = tuple(live)
        if parts:
            transitions.append((
                "quantum:begin",
                replace(state, op=("quantum", parts, 0, 0))))
            transitions.append((
                "collect:begin",
                replace(state, op=("collect", parts, 0, 0))))
            transitions.append((
                "ckpt:begin",
                replace(state, op=("ckpt", parts, 0, 0))))
        if len(state.status) < self.max_workers:
            transitions.append((
                f"join w={len(state.status)}",
                replace(
                    state,
                    status=state.status + (_LIVE,),
                    phase=state.phase + (self._joined,),
                    kernel=state.kernel + (frozenset(),))))
        for src in live:
            busy = any(js == "run" and jw == src
                       for js, jw in state.jobs)
            moving = tuple(sorted(
                s for s in range(self.shards)
                if src in state.owner[s]))
            if not moving and not busy:
                # Draining a shardless worker is just a GOODBYE.
                phase = self._phase_after(state.phase[src], "recv",
                                          "GOODBYE")
                if phase is not None:
                    transitions.append((
                        f"drain:empty w={src}",
                        replace(
                            state,
                            status=_set_at(state.status, src,
                                           _DEPARTED),
                            phase=_set_at(state.phase, src, phase))))
            if not moving:
                continue
            for dst in live:
                if dst == src:
                    continue
                for depart in (False, True):
                    if depart and busy:
                        continue
                    label = ("migrate" if not depart else "drain")
                    transitions.append((
                        f"{label}:begin src={src} dst={dst}",
                        replace(state, op=("migrate", src, dst,
                                           depart, moving, 0))))
        for j, (js, jw) in enumerate(state.jobs):
            if js == "queued":
                for w in live:
                    new_jobs = _set_at(state.jobs, j, ("run", w))
                    transitions.append((
                        f"job:assign j={j} w={w}",
                        replace(state, jobs=new_jobs)))
            elif js == "run" and jw in live:
                new_jobs = _set_at(state.jobs, j, ("done", -1))
                transitions.append((
                    f"job:finish j={j}",
                    replace(state, jobs=new_jobs)))

    # -- in-flight op micro-steps ---------------------------------------------

    def _op_steps(self, state: ClusterState,
                  transitions: List[Tuple[str, ClusterState]],
                  immediate: List[Tuple[str, str]]) -> None:
        op = state.op
        if op[0] == "migrate":
            self._migrate_step(state, transitions, immediate)
            return
        kind, parts, idx, stage = op
        if kind == "quantum" and "barrier_in_quantum" in self.bugs:
            runner = next((w for w in parts
                           if state.phase[w] == "running"), None)
            if runner is not None:
                immediate.append((
                    f"ckpt:begin (mid-quantum, w={runner} running)",
                    f"protocol violation: CHECKPOINT sent to worker "
                    f"{runner} in phase 'running'; barriers must wait "
                    "for the quantum boundary"))
        w = parts[idx]
        label = (f"{kind}:{'send' if stage == 0 else 'ack'} w={w}")
        if state.status[w] != _LIVE:
            self._blocked_peer(state, kind, w, label, transitions,
                               immediate)
            return
        direction, frame = _BARRIER_FRAMES[kind][stage]
        phase = self._phase_after(state.phase[w], direction, frame)
        if phase is None:
            immediate.append((
                label,
                f"protocol violation: {frame} ({direction}) is "
                f"illegal for worker {w} in phase "
                f"{state.phase[w]!r}"))
            return
        new = replace(state, phase=_set_at(state.phase, w, phase))
        idx += 1
        if idx == len(parts):
            idx, stage = 0, stage + 1
        if stage == 2:
            new = self._finish_barrier(new, kind, parts)
        else:
            new = replace(new, op=(kind, parts, idx, stage))
        transitions.append((label, new))

    def _blocked_peer(self, state: ClusterState, kind: str, w: int,
                      label: str,
                      transitions: List[Tuple[str, ClusterState]],
                      immediate: List[Tuple[str, str]]) -> None:
        if "no_crash_detection" in self.bugs:
            immediate.append((
                label,
                f"{kind} barrier cannot complete: worker {w} crashed "
                "in-flight and crash detection is disabled — the "
                "coordinator blocks forever (deadlock invariant)"))
        else:
            # Detection aborts the whole op and the surviving workers
            # are re-formed (fresh processes, HELLO, idle) before
            # anything else happens — mirrors run_with_recovery's
            # tear-down-and-rebuild.
            transitions.append((
                f"{kind}:abort (w={w} crashed)",
                replace(state, op=None,
                        phase=self._reformed_phases(state))))

    def _reformed_phases(self, state: ClusterState) -> Tuple[str, ...]:
        """Live workers back at the joined phase (cluster rebuild)."""
        return tuple(
            self._joined if status == _LIVE else phase
            for status, phase in zip(state.status, state.phase))

    def _finish_barrier(self, state: ClusterState, kind: str,
                        parts: Tuple[int, ...]) -> ClusterState:
        state = replace(state, op=None)
        if kind == "ckpt":
            return replace(state,
                           ckpt=frozenset(range(self.shards)))
        if kind == "restore":
            # Restore rebuilds every shard from the snapshot: after
            # it, residency is exactly ownership (stale copies from an
            # interrupted migration are gone with the old kernels).
            kernel = tuple(
                frozenset(s for s in range(self.shards)
                          if w in state.owner[s])
                if state.status[w] == _LIVE else frozenset()
                for w in range(len(state.status)))
            return replace(state, kernel=kernel)
        return state

    def _migrate_step(self, state: ClusterState,
                      transitions: List[Tuple[str, ClusterState]],
                      immediate: List[Tuple[str, str]]) -> None:
        _, src, dst, depart, moving, pc = state.op
        step = _MIGRATE_STEPS[pc]
        target = dst if step.startswith("adopt") else src
        label = f"migrate:{step} src={src} dst={dst}"
        if state.status[target] != _LIVE:
            self._blocked_peer(state, "migrate", target, label,
                               transitions, immediate)
            return
        direction, frame = {
            "ckpt": ("recv", "CHECKPOINT"),
            "ckpt_ack": ("send", "CKPT_ACK"),
            "adopt": ("recv", "ADOPT"),
            "adopt_ack": ("send", "CKPT_ACK"),
            "release": ("recv", "RELEASE"),
            "release_ack": ("send", "CKPT_ACK"),
            "goodbye": ("recv", "GOODBYE"),
        }[step]
        phase = self._phase_after(state.phase[target], direction,
                                  frame)
        if phase is None:
            immediate.append((
                label,
                f"protocol violation: {frame} ({direction}) is "
                f"illegal for worker {target} in phase "
                f"{state.phase[target]!r}"))
            return
        new = replace(state,
                      phase=_set_at(state.phase, target, phase))
        if step == "adopt_ack":
            new = replace(new, kernel=_set_at(
                new.kernel, dst, new.kernel[dst] | set(moving)))
            if "skip_release" in self.bugs:
                # The buggy coordinator commits straight after the
                # adopt, never telling the source to shed its copy.
                new = self._commit_migration(new, src, dst, moving)
                pc = _MIGRATE_STEPS.index("goodbye") - 1
        elif step == "release_ack":
            new = replace(new, kernel=_set_at(
                new.kernel, src, new.kernel[src] - set(moving)))
            new = self._commit_migration(new, src, dst, moving)
        pc += 1
        if pc == len(_MIGRATE_STEPS) - 1 and not depart:
            new = replace(new, op=None)
        elif step == "goodbye":
            new = replace(new,
                          status=_set_at(new.status, src, _DEPARTED),
                          op=None)
        else:
            new = replace(new, op=("migrate", src, dst, depart,
                                   moving, pc))
        transitions.append((label, new))

    def _commit_migration(self, state: ClusterState, src: int,
                          dst: int, moving: Sequence[int]
                          ) -> ClusterState:
        owner = list(state.owner)
        for s in moving:
            if "double_owner" in self.bugs:
                owner[s] = owner[s] | {dst}
            else:
                owner[s] = frozenset({dst})
        return replace(state, owner=tuple(owner))

    # -- crash recovery -------------------------------------------------------

    def _recover(self, state: ClusterState,
                 transitions: List[Tuple[str, ClusterState]]) -> None:
        live = set(self._live(state))
        jobs = list(state.jobs)
        for j, (js, jw) in enumerate(jobs):
            if js == "run" and state.status[jw] == _CRASHED:
                jobs[j] = ("lost", -1) \
                    if "lose_requeued_job" in self.bugs \
                    else ("queued", -1)
        lost_shards = sorted(
            s for s in range(self.shards)
            if not (state.owner[s] & live))
        if lost_shards and (not live or state.ckpt is None):
            # No snapshot (or no capacity) to restore from: the run
            # fails loudly but accounted — jobs are still conserved.
            transitions.append((
                "recover:fail",
                replace(state, jobs=tuple(jobs), failed=True)))
            return
        owner = list(state.owner)
        orphan = lost_shards[-1] \
            if "orphan_on_recovery" in self.bugs and lost_shards \
            else None
        for s in range(self.shards):
            live_owners = owner[s] & live
            if live_owners:
                owner[s] = frozenset({min(live_owners)})
            elif s == orphan:
                owner[s] = frozenset()
            else:
                owner[s] = frozenset({min(live)})
        kernel = tuple(
            state.kernel[w] if state.status[w] == _LIVE
            else frozenset()
            for w in range(len(state.status)))
        new = replace(state, jobs=tuple(jobs), owner=tuple(owner),
                      kernel=kernel,
                      phase=self._reformed_phases(state))
        if lost_shards:
            new = replace(new, op=("restore", tuple(sorted(live)),
                                   0, 0))
        transitions.append(("recover", new))

    # -- the search -----------------------------------------------------------

    def explore(self) -> MembershipReport:
        report = MembershipReport(
            workers=self.workers, max_workers=self.max_workers,
            shards=self.shards, jobs=self.jobs, depth=self.depth)
        init = self.initial_state()
        parent: Dict[ClusterState,
                     Optional[Tuple[ClusterState, str]]] = {init: None}
        depth_of: Dict[ClusterState, int] = {init: 0}
        queue: deque = deque([init])
        crash_phases: set = set()

        def trace(state: ClusterState) -> Tuple[str, ...]:
            labels: List[str] = []
            cursor = state
            while parent[cursor] is not None:
                cursor, label = parent[cursor]
                labels.append(label)
            return tuple(reversed(labels))

        def record(base: Tuple[str, ...], message: str) -> None:
            if len(report.violations) < self.max_violations:
                report.violations.append(
                    MembershipViolation(base, message))

        for message in self.invariant_errors(init):
            record((), message)
        while queue:
            state = queue.popleft()
            if depth_of[state] >= self.depth:
                continue
            transitions, immediate = self._successors(state)
            base = trace(state)
            for label, message in immediate:
                record(base + (label,), message)
            if not transitions and not immediate and not state.failed:
                record(base, "deadlock: no transition is enabled and "
                             "the cluster has not failed cleanly")
            for label, nxt in transitions:
                report.transitions += 1
                report.explored_states += 1
                if label.startswith("crash w="):
                    report.crash_injections += 1
                    crash_phases.add(
                        state.phase[int(label.split("w=")[1])])
                errors = self.invariant_errors(nxt)
                if errors:
                    for message in errors:
                        record(base + (label,), message)
                    continue  # do not expand broken states
                if nxt not in parent:
                    parent[nxt] = (state, label)
                    depth_of[nxt] = depth_of[state] + 1
                    queue.append(nxt)
        report.unique_states = len(parent)
        report.crash_phases = sorted(crash_phases)
        return report
