"""Exhaustive state-space exploration of the real coherence engine.

Model checkers for cache coherence normally verify an *abstract* model
of the protocol, leaving a gap between what was proved and what runs.
This explorer has no such gap: it drives the actual
:class:`repro.memory.coherence.CoherenceEngine` (with real directories,
hierarchies, DRAM and network models) through **every interleaving** of
read/write requests up to a bounded depth for small configurations
(2–3 tiles, 1–2 lines) and checks the protocol invariants in every
reached state:

- single-writer / multi-reader exclusion: at most one tile holds a
  line in M (or E), and never together with S copies elsewhere;
- directory-state / cache-state agreement (via the engine's own
  ``check_coherence_invariants``, plus an independent cache-side scan);
- functional data integrity: every read observes the value of the
  last write in its interleaving, across recalls and writebacks;
- no stuck states: no interleaving raises out of the engine;
- no unreachable protocol states: every abstract directory state
  (U, S×sharer-count, M×owner) is actually visited.

Each interleaving is replayed from a freshly built engine, so a
violation report carries the exact request sequence that produced it —
a runnable reproduction, not a trace fragment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.config import SimulationConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.host.cluster import ClusterLayout
from repro.memory.address import AddressSpace
from repro.memory.backing import BackingStore
from repro.memory.cache import LineState
from repro.memory.coherence import CoherenceEngine
from repro.network.interface import NetworkFabric
from repro.transport.transport import Transport

#: One request in an interleaving: ("R" | "W", tile, line_index).
Op = Tuple[str, int, int]


@dataclass(frozen=True)
class Violation:
    """An invariant failure plus the interleaving that reproduces it."""

    sequence: Tuple[Op, ...]
    message: str

    def render(self) -> str:
        trace = " -> ".join(f"{op}{tile}@line{line}"
                            for op, tile, line in self.sequence)
        return f"[{trace}] {self.message}"


@dataclass
class ExplorationReport:
    """What the bounded-depth BFS covered and what it found."""

    tiles: int
    lines: int
    depth: int
    protocol: str
    directory_type: str
    explored_states: int = 0
    unique_states: int = 0
    transitions: int = 0
    violations: List[Violation] = field(default_factory=list)
    #: Abstract directory states (per line) never reached, e.g.
    #: ``("S", 3)`` — shared by three tiles.
    unreachable: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.unreachable

    def render(self) -> str:
        head = (f"protocol={self.protocol} dir={self.directory_type} "
                f"tiles={self.tiles} lines={self.lines} "
                f"depth={self.depth}")
        body = (f"explored {self.explored_states} states "
                f"({self.unique_states} unique, "
                f"{self.transitions} transitions)")
        out = [f"protocol explorer: {head}", f"  {body}"]
        for violation in self.violations:
            out.append(f"  VIOLATION {violation.render()}")
        for state in self.unreachable:
            out.append(f"  UNREACHABLE abstract state {state}")
        if self.ok:
            out.append("  all invariants hold in every reached state")
        return "\n".join(out)


def build_engine(tiles: int = 3, protocol: str = "msi",
                 directory_type: str = "full_map",
                 max_sharers: int = 2) -> CoherenceEngine:
    """A fresh, fully wired coherence engine (no scheduler on top)."""
    config = SimulationConfig(num_tiles=tiles)
    config.memory.protocol = protocol
    config.memory.directory_type = directory_type
    config.memory.directory_max_sharers = max_sharers
    config.validate()
    stats = StatGroup("explore")
    layout = ClusterLayout(tiles, config.host)
    transport = Transport(layout, stats.child("transport"))
    fabric = NetworkFabric(tiles, config.network, transport,
                           stats.child("network"))
    line_bytes = config.memory.l2.line_bytes
    space = AddressSpace(tiles, line_bytes)
    backing = BackingStore(line_bytes)
    return CoherenceEngine(tiles, config.memory, space, backing, fabric,
                           config.core.clock_hz, stats.child("mem"))


class ProtocolExplorer:
    """Bounded-depth BFS over all request interleavings.

    ``engine_factory`` must return a *fresh* engine per call; the
    default builds the real MSI stack.  Tests inject protocol bugs by
    wrapping the factory and mutating the returned engine's directories.
    """

    def __init__(self, tiles: int = 3, lines: int = 1, depth: int = 4,
                 protocol: str = "msi",
                 directory_type: str = "full_map",
                 max_sharers: int = 2,
                 engine_factory: Optional[
                     Callable[[], CoherenceEngine]] = None,
                 max_violations: int = 10) -> None:
        if tiles < 2:
            raise ValueError("need at least 2 tiles to exercise sharing")
        self.tiles = tiles
        self.lines = lines
        self.depth = depth
        self.protocol = protocol
        self.directory_type = directory_type
        self.max_violations = max_violations
        self.engine_factory = engine_factory or (
            lambda: build_engine(tiles, protocol, directory_type,
                                 max_sharers))
        probe = self.engine_factory()
        line_bytes = probe.config.l2.line_bytes
        #: Line addresses spread across distinct homes.
        self.addresses = [i * line_bytes for i in range(lines)]
        #: The request alphabet: every (op, tile, line) combination.
        self.alphabet: List[Op] = [
            (op, tile, line)
            for tile in range(tiles)
            for op in ("R", "W")
            for line in range(lines)]

    # -- replay ---------------------------------------------------------------

    def _replay(self, sequence: Sequence[Op]) -> Tuple[CoherenceEngine,
                                                       Optional[str]]:
        """Run one interleaving on a fresh engine.

        Returns the engine and an error message if the interleaving got
        stuck (raised) or broke functional data integrity.
        """
        engine = self.engine_factory()
        #: Shadow memory: last value written per line, per the sequence.
        shadow: Dict[int, int] = {}
        try:
            for step, (op, tile, line_index) in enumerate(sequence):
                address = self.addresses[line_index]
                if op == "R":
                    line, _ = engine.read_access(TileId(tile), address,
                                                 8, 0)
                    got = int.from_bytes(bytes(line.data[:8]), "little")
                    want = shadow.get(line_index, 0)
                    if got != want:
                        return engine, (
                            f"step {step}: tile {tile} read {got} from "
                            f"line {line_index}, expected {want} "
                            "(lost or stale write)")
                else:
                    line, _ = engine.write_access(TileId(tile), address,
                                                  8, 0)
                    value = step + 1
                    line.data[:8] = value.to_bytes(8, "little")
                    shadow[line_index] = value
        except Exception as exc:  # noqa: BLE001 - stuck-state detection
            return engine, f"stuck state: {type(exc).__name__}: {exc}"
        return engine, None

    # -- invariants -----------------------------------------------------------

    def _check(self, engine: CoherenceEngine) -> Optional[str]:
        """Invariants beyond the replay itself; None when all hold."""
        try:
            engine.check_coherence_invariants()
        except Exception as exc:  # noqa: BLE001
            return f"directory/cache disagreement: {exc}"
        # Independent cache-side scan (does not trust the directory):
        # single-writer/multi-reader exclusion and no M+S coexistence.
        for address in self.addresses:
            owners = []
            sharers = []
            for tile in range(self.tiles):
                line = engine.hierarchies[tile].l2.peek(address)
                if line is None:
                    continue
                if line.state in (LineState.MODIFIED,
                                  LineState.EXCLUSIVE):
                    owners.append(tile)
                elif line.state is LineState.SHARED:
                    sharers.append(tile)
            if len(owners) > 1:
                return (f"line {address:#x} has multiple exclusive "
                        f"holders: tiles {owners}")
            if owners and sharers:
                return (f"line {address:#x} is M/E at tile "
                        f"{owners[0]} while S at tiles {sharers}")
        return None

    def _snapshot(self, engine: CoherenceEngine) -> Tuple:
        """Canonical protocol state: directory + cache states per line."""
        per_line = []
        for address in self.addresses:
            home = engine.space.home_tile(address)
            entry = engine.directories[int(home)].entries.get(address)
            dir_state = (entry.state.name,
                         tuple(sorted(int(t) for t in entry.sharers))) \
                if entry is not None else ("NONE", ())
            cache_states = tuple(
                line.state.name
                if (line := engine.hierarchies[t].l2.peek(address))
                is not None else None
                for t in range(self.tiles))
            per_line.append((dir_state, cache_states))
        return tuple(per_line)

    @staticmethod
    def _abstract(snapshot: Tuple) -> Set[str]:
        """Abstract directory states present in a snapshot."""
        states = set()
        for (state_name, sharers), _caches in snapshot:
            if state_name == "MODIFIED":
                states.add(f"M(owner={sharers[0]})" if sharers
                           else "M(?)")
            elif state_name == "SHARED":
                states.add(f"S({len(sharers)})")
            else:
                states.add("U")
        return states

    # -- the search -----------------------------------------------------------

    def explore(self) -> ExplorationReport:
        report = ExplorationReport(
            tiles=self.tiles, lines=self.lines, depth=self.depth,
            protocol=self.protocol, directory_type=self.directory_type)
        seen: Dict[Tuple, int] = {}
        reached_abstract: Set[str] = {"U"}
        queue: deque = deque([()])
        while queue:
            prefix = queue.popleft()
            for op in self.alphabet:
                sequence = prefix + (op,)
                engine, error = self._replay(sequence)
                report.explored_states += 1
                report.transitions += 1
                if error is None:
                    error = self._check(engine)
                if error is not None:
                    if len(report.violations) < self.max_violations:
                        report.violations.append(
                            Violation(sequence, error))
                    continue
                snapshot = self._snapshot(engine)
                if snapshot not in seen:
                    seen[snapshot] = len(seen)
                reached_abstract |= self._abstract(snapshot)
                if len(sequence) < self.depth:
                    queue.append(sequence)
        report.unique_states = len(seen)
        report.unreachable = sorted(
            self._expected_abstract() - reached_abstract)
        return report

    def _expected_abstract(self) -> Set[str]:
        """Every abstract directory state small-config MSI can be in."""
        expected = {"U"}
        max_sharers = self.tiles
        if self.directory_type in ("limited", "limitless"):
            # Limited directories may still reach full sharing via
            # LimitLESS software extension; Dir_iNB evicts instead.
            if self.directory_type == "limited":
                probe = self.engine_factory()
                max_sharers = min(
                    self.tiles, probe.config.directory_max_sharers)
        # Under MESI a lone reader is granted E (directory-owned), so a
        # one-sharer S entry only arises transiently during a recall —
        # S(1) is not a reachable terminal state.
        min_sharers = 2 if self.protocol == "mesi" else 1
        for count in range(min_sharers, max_sharers + 1):
            expected.add(f"S({count})")
        for owner in range(self.tiles):
            expected.add(f"M(owner={owner})")
        return expected
