"""Runtime sanitizers: invariant checks that ride the telemetry bus.

Lax synchronization deliberately lets per-tile clocks drift, which
makes the properties that *must* still hold easy to break silently:
a tile's clock must never run backwards, an interaction must never
complete below its partner's timestamp, and a barrier release must
account for every arrival.  The sanitizers verify these while a
simulation runs, using the bus's *observer* mechanism
(:meth:`repro.telemetry.bus.TelemetryBus.observe`):

- observers see events without recording them, so attaching the
  sanitizers changes neither the trace nor any counter — a
  ``--sanitize`` run is byte-identical to a plain run;
- when sanitizers are off no observer exists and every hook site is a
  single ``is not None`` test — the zero-overhead-when-disabled
  contract telemetry already follows.

Checks
======

Per-tile clock monotonicity
    Scheduler QUANTUM events: each quantum of a tile must start at or
    after the previous quantum's end, and consume a non-negative
    number of cycles.

Interaction causality
    Direct hooks from the interpreter and transport: a wake or message
    receive forwards the consumer's clock to the event's timestamp —
    afterwards the clock must be at or above it (the *committed
    interaction bound*), and no message may arrive before it was sent.
    At each quantum boundary the tile's clock must have caught up to
    every bound it committed during the quantum.

Barrier membership
    SYNC events from :class:`repro.sync.barrier.LaxBarrierModel`:
    every arrival must belong to the epoch being gathered, a release
    must not claim more waiters than arrived, and epochs must strictly
    advance.

A violated invariant raises :class:`SanitizerViolation` at the point
of observation, so the failing simulation dies loudly with the tile,
timestamp and event in hand.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.common.errors import SanitizerViolation
from repro.telemetry.events import Event, EventCategory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import TelemetryBus
    from repro.transport.message import Message


class Sanitizers:
    """All runtime sanitizers behind one observer and two hooks."""

    #: Categories the observer subscribes to.
    MASK = int(EventCategory.QUANTUM | EventCategory.SYNC)

    def __init__(self, num_tiles: int, bus: "TelemetryBus") -> None:
        self.num_tiles = num_tiles
        #: Per-tile clock at the end of its last observed quantum.
        self._quantum_end: Dict[int, int] = {}
        #: Per-tile committed interaction bound: the largest timestamp
        #: this tile consumed (wake or receive); its clock must never
        #: settle below it.
        self._committed: Dict[int, int] = {}
        #: Barrier arrivals of the epoch currently gathering.
        self._arrivals: Dict[int, int] = {}
        self._current_epoch: Optional[int] = None
        self._last_released_epoch = -1
        #: How much work the sanitizers actually did (reported by the
        #: CLI so "sanitizers passed" is distinguishable from
        #: "sanitizers saw nothing").
        self.events_checked = 0
        self.interactions_checked = 0
        self.messages_checked = 0
        bus.observe(self._on_event, self.MASK)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _fail(message: str) -> None:
        raise SanitizerViolation(message)

    # -- the bus observer ----------------------------------------------------

    def _on_event(self, event: Event) -> None:
        self.events_checked += 1
        if event.name == "quantum":
            self._check_quantum(event)
        elif event.name == "barrier_arrive":
            self._check_barrier_arrive(event)
        elif event.name == "barrier_release":
            self._check_barrier_release(event)

    def _check_quantum(self, event: Event) -> None:
        # ``t`` is the tile clock before the quantum; ``args["cycles"]``
        # is the absolute clock after it.
        tile = event.tile
        start = int(event.t)
        end = int(event.args.get("cycles", start)) if event.args \
            else start
        if end < start:
            self._fail(
                f"tile {tile}: quantum ran the clock backwards, from "
                f"{start} to {end}")
        last = self._quantum_end.get(tile)
        if last is not None and start < last:
            self._fail(
                f"tile {tile}: clock ran backwards — quantum starts at "
                f"{start} but the previous quantum ended at {last}")
        committed = self._committed.get(tile)
        if committed is not None and end < committed:
            self._fail(
                f"tile {tile}: quantum ended at {end}, below the "
                f"committed interaction bound {committed} (a wake or "
                "receive was consumed without forwarding the clock)")
        self._quantum_end[tile] = end

    def _check_barrier_arrive(self, event: Event) -> None:
        args = event.args or {}
        epoch_end = int(args.get("epoch_end", -1))
        if int(event.t) < epoch_end:
            self._fail(
                f"tile {event.tile}: arrived at the {epoch_end}-cycle "
                f"barrier with clock {event.t} — before reaching the "
                "epoch boundary")
        if self._current_epoch is None:
            self._current_epoch = epoch_end
        elif epoch_end != self._current_epoch:
            self._fail(
                f"tile {event.tile}: arrived for epoch {epoch_end} "
                f"while epoch {self._current_epoch} is still gathering")
        if epoch_end <= self._last_released_epoch:
            self._fail(
                f"tile {event.tile}: arrived for already-released "
                f"epoch {epoch_end}")
        # Re-arrivals are legitimate (a parked thread can be woken and
        # re-park), so membership counts distinct tiles.
        self._arrivals[event.tile] = self._arrivals.get(event.tile,
                                                        0) + 1

    def _check_barrier_release(self, event: Event) -> None:
        args = event.args or {}
        waiters = int(args.get("waiters", 0))
        epoch_end = int(event.t)
        if epoch_end <= self._last_released_epoch:
            self._fail(
                f"barrier released epoch {epoch_end} after epoch "
                f"{self._last_released_epoch} — epochs must strictly "
                "advance")
        if waiters > len(self._arrivals):
            self._fail(
                f"barrier released {waiters} waiters at epoch "
                f"{epoch_end} but only {len(self._arrivals)} tiles "
                "arrived — phantom barrier membership")
        self._last_released_epoch = epoch_end
        self._current_epoch = None
        self._arrivals.clear()

    # -- direct hooks (interpreter / transport) ------------------------------

    def on_interaction(self, tile: int, timestamp: int,
                       clock_after: int) -> None:
        """A tile consumed a wake/receive carrying ``timestamp``."""
        self.interactions_checked += 1
        if clock_after < timestamp:
            self._fail(
                f"tile {tile}: consumed an interaction at timestamp "
                f"{timestamp} but its clock is {clock_after} — the "
                "forward-to-sync-point rule was not applied")
        if timestamp > self._committed.get(tile, -1):
            self._committed[tile] = timestamp

    def on_message(self, message: "Message") -> None:
        """A message was delivered by the transport."""
        self.messages_checked += 1
        if message.arrival_time < message.timestamp:
            self._fail(
                f"message {int(message.src)}->{int(message.dst)} "
                f"arrived at {message.arrival_time}, before it was "
                f"sent at {message.timestamp}")

    # -- reporting -----------------------------------------------------------

    def summary(self) -> str:
        return (f"sanitizers: {self.events_checked} events, "
                f"{self.interactions_checked} interactions, "
                f"{self.messages_checked} messages checked")
