"""Wire-protocol conformance lints (rules P001–P003).

``check/wire_proto.json`` is the declarative companion to the W001
field-schema manifest: where W001 pins *what* a frame carries, the
protocol spec pins *who may say what, when*.  It names every protocol
role (coordinator/worker over the pickle wire, the serve daemon and
its remote fleet slots over the verb tuples, both ends of the net
handshake), which frames each role may send, how requests pair with
replies, and the per-role phase machine legal orderings must follow.

This module statically extracts every send and every receive-handling
site from the role modules and checks them against the spec:

``P001``
    A role sends a frame the spec does not allow it to send.  Either
    the code grew a new frame (update ``wire_proto.json`` — that is
    the reviewable act) or the frame is being sent from the wrong
    side of the wire.

``P002``
    A frame the role's peer may send, but the role never handles: a
    silent drop (or a crash) waiting for the first time the peer says
    it.

``P003``
    The role handles a request frame but has no send site for any of
    its legal replies: the requester would block forever.

Extraction is deliberately syntactic (no imports are executed): frame
references are ``FrameKind.X`` attributes for the pickle wire,
lowercase verb tuples ``("job", ...)`` for the serve slot protocol,
and frame-dataclass constructors for the net handshake.  Sites are
scoped to the classes/functions the spec names for each role, so the
two roles sharing ``serve/remote.py`` are checked independently.

Findings ride the same reporting and ``# check: allow P001 -- why``
suppression machinery as every other lint rule.

The per-role phase machines are not needed for the P rules themselves
— they document the protocol and drive the membership model checker
(:mod:`repro.check.membership`), which replays them against every
fault interleaving.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.check.lint import (
    LintFinding,
    _is_dataclass,
    _Suppressions,
    package_root,
)

#: The committed protocol spec, next to the W001 schema manifest.
SPEC_PATH = Path(__file__).with_name("wire_proto.json")

#: Callable names that put a frame on a wire.  Matching is by the
#: final attribute/name, so ``self.send``, ``cluster.send`` and plain
#: ``_send`` all count.
SEND_FUNCS = {
    "send", "_send", "send_bytes", "encode_frame",
    "_send_handshake", "send_frame", "encode_handshake",
}


class WireProtoError(ValueError):
    """The spec file is malformed or contradicts the code's enums."""


@dataclass(frozen=True)
class Site:
    """One send or handle site: a frame name at a source location."""

    frame: str
    line: int
    col: int


@dataclass
class RoleSites:
    """Everything one role statically says and listens for."""

    role: str
    path: str
    sends: List[Site]
    handles: List[Site]

    def sent_frames(self) -> Set[str]:
        return {site.frame for site in self.sends}

    def handled_frames(self) -> Set[str]:
        return {site.frame for site in self.handles}


# -- spec loading ------------------------------------------------------------

_SPEC_CACHE: Dict[Path, Tuple[int, dict]] = {}


def receivable(spec: dict, role: str) -> Set[str]:
    """Frames a role can legally be sent (its peer's send set)."""
    peer = spec["roles"][role]["peer"]
    return set(spec["roles"][peer]["sends"])


def load_spec(path: Path = SPEC_PATH) -> dict:
    """Load and validate the protocol spec (cached by mtime)."""
    path = Path(path)
    mtime = path.stat().st_mtime_ns
    cached = _SPEC_CACHE.get(path)
    if cached is not None and cached[0] == mtime:
        return cached[1]
    try:
        spec = json.loads(path.read_text())
    except ValueError as exc:
        raise WireProtoError(f"{path}: not valid JSON: {exc}") from exc
    validate_spec(spec)
    _SPEC_CACHE[path] = (mtime, spec)
    return spec


def validate_spec(spec: dict) -> None:
    """Reject specs that drifted from the code's frame vocabulary.

    A typo in ``wire_proto.json`` must be an error, never a silently
    never-matching rule.
    """
    if spec.get("format") != "repro.wire_proto/1":
        raise WireProtoError(
            f"unknown spec format {spec.get('format')!r}")
    roles = spec.get("roles")
    if not isinstance(roles, dict) or not roles:
        raise WireProtoError("spec has no roles")
    from repro.distrib.wire import FrameKind
    enum_frames = set(FrameKind.__members__)
    for name, role in roles.items():
        for key in ("module", "peer", "sends"):
            if key not in role:
                raise WireProtoError(f"role {name!r} missing {key!r}")
        peer = role["peer"]
        if peer not in roles:
            raise WireProtoError(
                f"role {name!r} names unknown peer {peer!r}")
        if roles[peer]["peer"] != name:
            raise WireProtoError(
                f"roles {name!r} and {peer!r} disagree about peering")
        if role.get("frames", "enum") == "enum":
            unknown = set(role["sends"]) - enum_frames
            if unknown:
                raise WireProtoError(
                    f"role {name!r} sends unknown FrameKind member(s) "
                    f"{sorted(unknown)}")
    for pair in spec.get("pairs", ()):
        requester = pair.get("requester")
        if requester not in roles:
            raise WireProtoError(
                f"pair {pair!r} names unknown requester")
        if pair.get("request") not in roles[requester]["sends"]:
            raise WireProtoError(
                f"pair request {pair.get('request')!r} is not in "
                f"{requester!r}'s send set")
        responder_sends = set(
            roles[roles[requester]["peer"]]["sends"])
        bad = set(pair.get("replies", ())) - responder_sends
        if bad:
            raise WireProtoError(
                f"pair {pair.get('request')!r} replies {sorted(bad)} "
                f"are not in the responder's send set")
    for name, machine in spec.get("phases", {}).items():
        if name not in roles:
            raise WireProtoError(
                f"phase machine for unknown role {name!r}")
        transitions = machine.get("transitions", {})
        states = set(transitions) | set(machine.get("terminal", ()))
        if machine.get("initial") not in states:
            raise WireProtoError(
                f"role {name!r}: initial state "
                f"{machine.get('initial')!r} is not defined")
        sendable = set(roles[name]["sends"])
        recvable = receivable(spec, name)
        for state, edges in transitions.items():
            for event, target in edges.items():
                direction, _, frame = event.partition(" ")
                if direction == "send" and frame not in sendable:
                    raise WireProtoError(
                        f"role {name!r} phase {state!r}: sends "
                        f"{frame!r} outside its send set")
                if direction == "recv" and frame not in recvable:
                    raise WireProtoError(
                        f"role {name!r} phase {state!r}: receives "
                        f"{frame!r} its peer cannot send")
                if direction not in ("send", "recv"):
                    raise WireProtoError(
                        f"role {name!r} phase {state!r}: bad event "
                        f"{event!r} (want 'send F' or 'recv F')")
                if target not in states:
                    raise WireProtoError(
                        f"role {name!r} phase {state!r}: transition "
                        f"to undefined state {target!r}")


# -- site extraction ---------------------------------------------------------


def _callee_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _SiteCollector(ast.NodeVisitor):
    """Collect send/handle sites for one role's frame style.

    ``mode`` is how the role spells a frame on the wire:

    - ``"enum"``: ``FrameKind.X`` attributes inside a send call;
      handled via ``kind is/== FrameKind.X`` comparisons.
    - ``"verbs"``: tuple literals whose first element is a string
      constant (the serve slot protocol builds these outside the send
      call, so every such literal in scope counts); handled via string
      comparisons.
    - ``"classes"``: constructors of the module's frame dataclasses
      inside a send call; handled via ``isinstance`` checks.
    """

    def __init__(self, mode: str, frame_classes: Set[str]) -> None:
        self.mode = mode
        self.frame_classes = frame_classes
        self.sends: List[Site] = []
        self.handles: List[Site] = []
        self._seen_sends: Set[Tuple[int, str]] = set()
        self._seen_handles: Set[Tuple[int, str]] = set()

    def _add(self, bucket: str, frame: str, node: ast.AST) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        seen = self._seen_sends if bucket == "sends" \
            else self._seen_handles
        if (line, frame) in seen:
            return
        seen.add((line, frame))
        getattr(self, bucket).append(Site(frame, line, col))

    # -- sends ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        callee = _callee_name(node.func)
        if callee in SEND_FUNCS:
            for arg in node.args + [kw.value for kw in node.keywords]:
                self._collect_sent_frames(arg)
        if callee == "isinstance" and self.mode == "classes" and \
                len(node.args) == 2:
            classinfo = node.args[1]
            names = classinfo.elts if isinstance(classinfo, ast.Tuple) \
                else [classinfo]
            for name in names:
                ident = _callee_name(name) or (
                    name.id if isinstance(name, ast.Name) else None)
                if ident in self.frame_classes:
                    self._add("handles", ident, node)
        self.generic_visit(node)

    def _collect_sent_frames(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if self.mode == "enum" and isinstance(sub, ast.Attribute) \
                    and isinstance(sub.value, ast.Name) \
                    and sub.value.id == "FrameKind":
                self._add("sends", sub.attr, sub)
            elif self.mode == "classes" and isinstance(sub, ast.Call):
                ident = _callee_name(sub.func)
                if ident in self.frame_classes:
                    self._add("sends", ident, sub)

    def visit_Tuple(self, node: ast.Tuple) -> None:
        if self.mode == "verbs" and node.elts and \
                isinstance(node.elts[0], ast.Constant) and \
                isinstance(node.elts[0].value, str) and \
                not isinstance(node.ctx, ast.Store):
            self._add("sends", node.elts[0].value, node)
        self.generic_visit(node)

    # -- handles -------------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq, ast.Is, ast.IsNot))
               for op in node.ops):
            for operand in [node.left] + list(node.comparators):
                if self.mode == "enum" and \
                        isinstance(operand, ast.Attribute) and \
                        isinstance(operand.value, ast.Name) and \
                        operand.value.id == "FrameKind":
                    self._add("handles", operand.attr, node)
                elif self.mode == "verbs" and \
                        isinstance(operand, ast.Constant) and \
                        isinstance(operand.value, str):
                    self._add("handles", operand.value, node)
        self.generic_visit(node)


def _scope_nodes(tree: ast.Module,
                 scopes: Optional[List[str]]) -> List[ast.AST]:
    """The subtrees a role's extraction is restricted to."""
    if not scopes:
        return [tree]
    wanted = set(scopes)
    return [node for node in tree.body
            if isinstance(node, (ast.ClassDef, ast.FunctionDef,
                                 ast.AsyncFunctionDef))
            and node.name in wanted]


def _module_dataclasses(tree: ast.Module) -> Set[str]:
    return {node.name for node in tree.body
            if isinstance(node, ast.ClassDef) and _is_dataclass(node)}


def extract_sites(tree: ast.Module, spec: dict, role: str,
                  path: str = "<module>") -> RoleSites:
    """All send/handle sites of ``role`` in its parsed module."""
    entry = spec["roles"][role]
    mode = entry.get("frames", "enum")
    collector = _SiteCollector(mode, _module_dataclasses(tree))
    for node in _scope_nodes(tree, entry.get("scopes")):
        collector.visit(node)
    collector.sends.sort(key=lambda s: (s.line, s.col, s.frame))
    collector.handles.sort(key=lambda s: (s.line, s.col, s.frame))
    return RoleSites(role, path, collector.sends, collector.handles)


# -- the P rules -------------------------------------------------------------


def spec_modules(spec: dict) -> Set[str]:
    """Repo-relative modules (under ``src/repro/``) the spec covers."""
    return {role["module"] for role in spec["roles"].values()}


def lint_wireproto(tree: ast.Module, path: str, rel: str,
                   suppressions: _Suppressions,
                   spec: Optional[dict] = None) -> List[LintFinding]:
    """Run P001–P003 for every spec role living in ``rel``."""
    spec = load_spec() if spec is None else spec
    findings: List[LintFinding] = []

    def report(rule: str, line: int, col: int, message: str) -> None:
        if not suppressions.active(rule, line, line):
            findings.append(LintFinding(rule, path, line, col, message))

    for name in sorted(spec["roles"]):
        role = spec["roles"][name]
        if role["module"] != rel:
            continue
        sites = extract_sites(tree, spec, name, path)
        allowed = set(role["sends"])
        for site in sites.sends:
            if site.frame not in allowed:
                report(
                    "P001", site.line, site.col,
                    f"role `{name}` sends frame `{site.frame}` the "
                    "protocol spec does not allow; update "
                    "check/wire_proto.json if the protocol grew, or "
                    "move the send to the right role")
        handled = sites.handled_frames()
        for frame in sorted(receivable(spec, name) - handled):
            report(
                "P002", 1, 1,
                f"role `{name}` can receive frame `{frame}` from its "
                f"peer `{role['peer']}` but never handles it; an "
                "unhandled frame is a silent drop or a crash")
        for pair in spec.get("pairs", ()):
            responder = spec["roles"][pair["requester"]]["peer"]
            if responder != name:
                continue
            request = pair["request"]
            handle_sites = [s for s in sites.handles
                            if s.frame == request]
            if not handle_sites:
                continue  # already a P002 finding above
            if not set(pair["replies"]) & sites.sent_frames():
                anchor = handle_sites[0]
                report(
                    "P003", anchor.line, anchor.col,
                    f"role `{name}` handles request `{request}` but "
                    f"has no send site for any legal reply "
                    f"{pair['replies']}; the requester would block "
                    "forever")
    return findings


def extract_role(role: str, root: Optional[Path] = None,
                 spec: Optional[dict] = None) -> RoleSites:
    """Convenience: parse a role's real module and extract its sites."""
    spec = load_spec() if spec is None else spec
    root = package_root() if root is None else root
    module = root / spec["roles"][role]["module"]
    tree = ast.parse(module.read_text(), filename=str(module))
    return extract_sites(tree, spec, role, str(module))
