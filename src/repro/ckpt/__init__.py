"""repro.ckpt: deterministic checkpoint/restore and fault tolerance.

Long simulations (the whole reason Graphite distributes them) need to
survive process crashes and host reboots.  This package provides:

- :mod:`repro.ckpt.snapshot` — the surgical pickler that turns a live
  simulator (or one worker's shard) into a self-contained blob, with
  host-side observers excised and thread generators replaced by their
  replay logs.
- :mod:`repro.ckpt.store` — the on-disk format ``repro.ckpt/1``: one
  directory per checkpoint with a JSON manifest, sha256 integrity
  checksums and an atomically updated ``LATEST`` pointer.
- :mod:`repro.ckpt.recovery` — loading a checkpoint back into a
  runnable simulator, plus the crash-recovery driver that restarts
  dead mp workers with exponential backoff.

The acid test, asserted in CI: for a fixed seed and config, a run
that checkpoints, dies and resumes produces a byte-identical
:class:`~repro.sim.results.SimulationResult` to an uninterrupted run,
on both the inproc and mp backends.
"""

from repro.ckpt.recovery import (  # noqa: F401
    load_checkpoint,
    resume_with_recovery,
    run_with_recovery,
)
from repro.ckpt.snapshot import snapshot_bytes  # noqa: F401
from repro.ckpt.store import CheckpointStore  # noqa: F401
