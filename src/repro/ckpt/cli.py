"""``repro resume``: continue a checkpointed simulation.

Loads the newest complete checkpoint from a ``--ckpt-dir`` (or one
named snapshot), drives the restored simulator to completion with the
same crash-recovery loop the original run used, and reports the same
metric keys ``repro run --json`` emits — so resumed and uninterrupted
runs can be diffed mechanically (the CI resume-equivalence smoke job
does exactly that).
"""

from __future__ import annotations

import argparse
import json

from repro.common.units import pretty_seconds


def add_resume_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dir",
                        help="checkpoint directory (the --ckpt-dir of "
                             "the original run)")
    parser.add_argument("--name", default=None, metavar="CKPT",
                        help="resume a specific ckpt-NNNNNNNN snapshot "
                             "(default: the latest complete one)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of "
                             "text")
    from repro.cli import add_telemetry_arguments
    add_telemetry_arguments(parser)


def run_resume(args: argparse.Namespace) -> int:
    from repro.cli import telemetry_from_args
    from repro.ckpt.recovery import resume_with_recovery
    result, simulator = resume_with_recovery(
        args.dir, args.name, telemetry=telemetry_from_args(args))
    simulator.engine.check_coherence_invariants()

    if args.json:
        payload = {
            "backend": simulator.config.distrib.backend,
            "tiles": simulator.config.num_tiles,
            "simulated_cycles": result.simulated_cycles,
            "parallel_cycles": result.parallel_cycles,
            "instructions": result.total_instructions,
            "wall_clock_seconds": result.wall_clock_seconds,
            "native_seconds": result.native_seconds,
            "slowdown": result.slowdown,
            "l2_miss_rate": result.cache_miss_rate("l2"),
            "messages": result.counter("transport.messages_sent"),
            "miss_breakdown": result.miss_breakdown,
            "recoveries": result.recoveries,
        }
        print(json.dumps(payload, indent=2))
        return 0

    print(f"resumed from:        {args.dir}"
          + (f" ({args.name})" if args.name else ""))
    print(f"backend:             {simulator.config.distrib.backend}")
    print(f"simulated run-time:  {result.simulated_cycles:,} cycles "
          f"(parallel region {result.parallel_cycles:,})")
    print(f"instructions:        {result.total_instructions:,}")
    print("wall-clock (model):  "
          f"{pretty_seconds(result.wall_clock_seconds)}")
    print(f"slowdown:            {result.slowdown:,.0f}x")
    print(f"L2 miss rate:        {result.cache_miss_rate('l2'):.2%}")
    if result.recoveries:
        print(f"recoveries:          {len(result.recoveries)} "
              f"worker restart(s)")
    return 0
