"""Loading checkpoints and the crash-recovery driver.

:func:`load_checkpoint` turns an on-disk snapshot back into a runnable
simulator: the coordinator blob is unpickled, the post-restore fixups
run (syscall-tracer unwrap, generator replay), and — for an mp
snapshot — the shard blobs are stashed on the simulator for
``resume_run`` to ship to freshly started workers.

:func:`run_with_recovery` is the fault-tolerance loop the CLI and
:func:`repro.sim.runner.run_simulation` use: it runs the simulation
and, when a worker dies (:class:`~repro.distrib.errors.
WorkerCrashError` / ``WorkerTimeoutError``), sleeps an exponential
backoff, reloads the last consistent checkpoint into a *fresh*
simulator and resumes — up to ``config.ckpt.max_restarts`` attempts.
Each restart is logged in ``result.recoveries`` and, when tracing is
enabled, emitted as a WORKER-category ``recovery`` telemetry event.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import CheckpointError
from repro.ckpt.snapshot import load_bytes
from repro.ckpt.store import CheckpointStore


def load_checkpoint(path: str, name: Optional[str] = None
                    ) -> Tuple[Any, Dict[str, Any]]:
    """Restore a simulator from a checkpoint directory.

    ``path`` is either a checkpoint *root* (the ``--ckpt-dir``; the
    newest complete checkpoint is used, or ``name`` if given) or one
    specific ``ckpt-NNNNNNNN`` directory.  Returns ``(simulator,
    manifest)``; drive the simulator with ``resume_run()``.
    """
    if name is None and os.path.isfile(os.path.join(path,
                                                    "manifest.json")):
        path, name = os.path.dirname(path) or ".", os.path.basename(path)
    store = CheckpointStore(path)
    manifest, blobs = store.read(name)
    simulator = load_bytes(blobs["coordinator"])
    shards = {int(key[len("shard"):]): blob
              for key, blob in blobs.items() if key.startswith("shard")}
    if shards:
        simulator._restore_shards = shards
    simulator._after_restore()
    return simulator, manifest


def _recovery_bus(simulator: Any) -> None:
    """Re-create a coordinator-level telemetry bus on a restored sim.

    Component-level channels were excised by the snapshot (the resumed
    run's subsystems run unobserved), but recovery events and the
    final worker merges still surface when the user asked for tracing.
    The flight recorder and the run-level span emitter
    (:mod:`repro.obs`) were excised too; both re-arm here so a resumed
    run keeps its forensics ring and its place in the job's span tree.
    """
    from repro.telemetry.bus import create_bus
    config = simulator.config.telemetry
    simulator.telemetry = create_bus(config)
    simulator.flight = None
    if config.flight_dir:
        from repro.obs.flight import FlightRecorder
        from repro.telemetry.bus import TelemetryBus
        from repro.telemetry.events import ALL_CATEGORIES
        if simulator.telemetry is None:
            simulator.telemetry = TelemetryBus(0)
        simulator.flight = FlightRecorder(config.flight_events)
        simulator.telemetry.observe(simulator.flight.on_event,
                                    ALL_CATEGORIES)
    simulator._span_emitter = None
    simulator._run_span = ""
    if config.trace_id and simulator.telemetry is not None:
        from repro.obs.spans import SpanEmitter
        from repro.telemetry.events import EventCategory
        simulator._span_emitter = SpanEmitter(
            simulator.telemetry.channel(EventCategory.OBS),
            config.trace_id, parent=config.span_parent)
    if simulator.telemetry is not None:
        simulator._configure_trace_sinks()


def _dump_flight(simulator: Any, failure: Exception) -> None:
    """Write the flight-recorder forensics bundle for a dead run."""
    flight = getattr(simulator, "flight", None)
    directory = simulator.config.telemetry.flight_dir
    if flight is None or not directory:
        return
    detail = str(failure).splitlines()[0] if str(failure) else ""
    try:
        flight.dump(directory, type(failure).__name__, detail=detail,
                    extra={"trace": simulator.config.telemetry.trace_id},
                    host_profile=getattr(simulator, "host_profile",
                                         None))
    except OSError:  # pragma: no cover - forensics must never mask
        pass         # the original failure


def _emit_recovery(simulator: Any, event: Dict[str, Any]) -> None:
    if simulator.telemetry is None:
        return
    from repro.telemetry.events import EventCategory
    channel = simulator.telemetry.channel(EventCategory.WORKER)
    if channel is not None:
        channel.emit("recovery", None, 0, dict(event))


def run_with_recovery(simulator: Any, program: Any,
                      args: tuple = ()) -> Tuple[Any, Any]:
    """Run to completion, restarting from checkpoints after crashes.

    Returns ``(result, final_simulator)`` — the final simulator is the
    one that actually completed (a restored instance after a crash),
    which callers needing ``host_profile``/``stats`` must use instead
    of the one they passed in.  Only infrastructure failures are
    retried; target faults and simulator bugs propagate immediately.
    Without checkpointing enabled this is exactly ``simulator.run``.
    """
    from repro.distrib.errors import WorkerCrashError, WorkerTimeoutError
    config = simulator.config
    try:
        return simulator.run(program, args), simulator
    except (WorkerCrashError, WorkerTimeoutError) as exc:
        _dump_flight(simulator, exc)
        if not config.ckpt.enabled:
            raise
        failure = exc
    return _resume_loop(simulator, failure)


def resume_with_recovery(path: str, name: Optional[str] = None,
                         telemetry: Optional[Any] = None
                         ) -> Tuple[Any, Any]:
    """``repro resume``: load a checkpoint and drive it to completion,
    with the same crash-recovery loop as :func:`run_with_recovery`.

    ``telemetry`` optionally replaces the checkpointed run's telemetry
    section (a :class:`~repro.common.config.TelemetryConfig`) before
    the bus is rebuilt — how ``repro resume --trace`` re-arms tracing
    on a run checkpointed without it.  Observational only: it cannot
    change the resumed result.
    """
    from repro.distrib.errors import WorkerCrashError, WorkerTimeoutError
    simulator, manifest = load_checkpoint(path, name)
    if telemetry is not None:
        simulator.config.telemetry = telemetry
        simulator.config.validate()
    _recovery_bus(simulator)
    try:
        return simulator.resume_run(), simulator
    except (WorkerCrashError, WorkerTimeoutError) as exc:
        _dump_flight(simulator, exc)
        failure = exc
    return _resume_loop(simulator, failure)


def _resume_loop(simulator: Any, failure: Exception) -> Tuple[Any, Any]:
    """Shared restart loop: backoff, reload, resume, repeat."""
    config = simulator.config
    recoveries = list(simulator.recoveries)
    attempt = 0
    while True:
        attempt += 1
        if attempt > config.ckpt.max_restarts:
            raise failure
        delay = (config.ckpt.backoff_base
                 * config.ckpt.backoff_factor ** (attempt - 1))
        time.sleep(delay)
        try:
            restored, manifest = load_checkpoint(config.ckpt.dir)
        except CheckpointError as exc:
            raise CheckpointError(
                f"cannot recover from crash: {exc}") from failure
        event = {
            "attempt": attempt,
            "turn": manifest["turn"],
            "backoff_seconds": delay,
            "error": type(failure).__name__,
            "detail": str(failure).splitlines()[0] if str(failure) else "",
        }
        recoveries.append(event)
        restored.recoveries = list(recoveries)
        _recovery_bus(restored)
        _emit_recovery(restored, event)
        from repro.distrib.errors import (
            WorkerCrashError,
            WorkerTimeoutError,
        )
        try:
            return restored.resume_run(), restored
        except (WorkerCrashError, WorkerTimeoutError) as exc:
            _dump_flight(restored, exc)
            failure = exc
            simulator = restored
