"""The surgical pickler: a live simulation graph -> one blob.

Nearly all simulation state is plain picklable data (clocks, caches,
directories, queues, stats, ``random.Random`` streams).  Exactly two
kinds of object cannot cross a snapshot:

1. **Host-side observers** — the telemetry bus and its channels, the
   host profiler, the sanitizers, and the live cluster/worker process
   plumbing.  Every component already treats ``None`` in those slots
   as "disabled", so the pickler *excises* them: each such object is
   serialized as ``None`` and the restored run simply runs unobserved.
2. **Thread generators** — the target programs themselves.  The
   interpreter handles those (:meth:`~repro.frontend.interpreter.
   ThreadInterpreter.__getstate__` drops the generator and keeps the
   send log); the generator excision here is a backstop for any other
   generator that sneaks into the graph.

Pickling one whole graph (rather than per-subsystem exports) is what
preserves shared references — the scheduler's threads ARE the kernel's
interpreters, the stats tree's children ARE the components' stat
groups — which in turn is what makes a restored run byte-identical.
"""

from __future__ import annotations

import io
import pickle
import sys
import types
from typing import Any, Tuple

from repro.common.errors import CheckpointError

#: Classes serialized as ``None`` ("disabled"), by dotted location.
#: Looked up lazily in ``sys.modules`` so snapshotting never imports a
#: subsystem the run did not use.
_EXCISED_CLASSES = (
    ("repro.telemetry.bus", "TelemetryBus"),
    ("repro.telemetry.bus", "Channel"),
    ("repro.profile.timers", "HostProfiler"),
    ("repro.check.sanitize", "Sanitizers"),
    ("repro.distrib.coordinator", "WorkerCluster"),
    ("repro.distrib.worker", "Worker"),
    ("repro.obs.spans", "SpanEmitter"),
    ("repro.obs.flight", "FlightRecorder"),
)


def _none() -> None:
    """Reduction target of every excised object."""
    return None


def _excised_types() -> Tuple[type, ...]:
    out = []
    for module_name, class_name in _EXCISED_CLASSES:
        module = sys.modules.get(module_name)
        if module is None:
            continue
        cls = getattr(module, class_name, None)
        if cls is not None:
            out.append(cls)
    return tuple(out)


class SnapshotPickler(pickle.Pickler):
    """Pickler that excises unpicklable host-side objects to ``None``."""

    def __init__(self, file: io.BytesIO) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._excised = _excised_types()

    def reducer_override(self, obj: Any) -> Any:
        if isinstance(obj, types.GeneratorType):
            return (_none, ())
        if self._excised and isinstance(obj, self._excised):
            return (_none, ())
        return NotImplemented


def snapshot_bytes(obj: Any) -> bytes:
    """Serialize ``obj`` (a simulator or shard dict) to snapshot bytes.

    Purely observational: pickling never mutates the graph, so taking
    a snapshot cannot perturb the simulation it captures.
    """
    buffer = io.BytesIO()
    try:
        SnapshotPickler(buffer).dump(obj)
    except Exception as exc:
        raise CheckpointError(f"cannot snapshot state: {exc}") from exc
    return buffer.getvalue()


def load_bytes(blob: bytes) -> Any:
    """Deserialize a snapshot blob (inverse of :func:`snapshot_bytes`)."""
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(
            f"cannot deserialize snapshot: {exc}") from exc
