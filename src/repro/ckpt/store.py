"""On-disk checkpoint layout: the ``repro.ckpt/1`` format.

A checkpoint directory tree looks like::

    <ckpt-dir>/
        LATEST              # name of the newest complete checkpoint
        ckpt-000240/
            manifest.json   # format, turn, backend, config, checksums
            coordinator.pkl # the pickled simulator
            shard0.pkl      # one per mp worker (mp backend only)
            shard1.pkl

Write protocol: blobs and manifest land in a ``.tmp`` directory that
is renamed into place, then ``LATEST`` is replaced via rename — so a
crash mid-write can never leave a half checkpoint that ``LATEST``
points at, and a reader always sees either the old or the new state.
Every blob's sha256 travels in the manifest and is re-verified on
read; corruption surfaces as :class:`~repro.common.errors.
CheckpointError` instead of an unpickling crash deep in a resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import CheckpointError

#: Version tag written into (and required from) every manifest.
FORMAT = "repro.ckpt/1"

_MANIFEST = "manifest.json"
_LATEST = "LATEST"
_PREFIX = "ckpt-"


class CheckpointStore:
    """Reads and writes checkpoints under one root directory."""

    def __init__(self, root: str, keep: int = 2) -> None:
        self.root = root
        self.keep = max(int(keep), 1)
        os.makedirs(root, exist_ok=True)

    # -- writing --------------------------------------------------------------

    def write(self, turn: int, backend: str, config: Any,
              blobs: Dict[str, bytes]) -> str:
        """Commit one checkpoint atomically; returns its directory."""
        name = f"{_PREFIX}{turn:08d}"
        final = os.path.join(self.root, name)
        staging = final + ".tmp"
        if os.path.exists(staging):
            shutil.rmtree(staging)
        os.makedirs(staging)
        files: Dict[str, Dict[str, Any]] = {}
        for key, blob in sorted(blobs.items()):
            filename = f"{key}.pkl"
            with open(os.path.join(staging, filename), "wb") as fh:
                fh.write(blob)
            files[filename] = {
                "sha256": hashlib.sha256(blob).hexdigest(),
                "size": len(blob),
            }
        manifest = {
            "format": FORMAT,
            "turn": int(turn),
            "backend": backend,
            "config": config.to_dict(),
            "files": files,
        }
        with open(os.path.join(staging, _MANIFEST), "w",
                  encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
        if os.path.exists(final):
            shutil.rmtree(final)
        os.replace(staging, final)
        self._write_latest(name)
        self._prune()
        return final

    def _write_latest(self, name: str) -> None:
        staging = os.path.join(self.root, _LATEST + ".tmp")
        with open(staging, "w", encoding="utf-8") as fh:
            fh.write(name + "\n")
        os.replace(staging, os.path.join(self.root, _LATEST))

    def _prune(self) -> None:
        names = self.list()
        for name in names[:-self.keep]:
            shutil.rmtree(os.path.join(self.root, name),
                          ignore_errors=True)

    # -- reading --------------------------------------------------------------

    def list(self) -> List[str]:
        """Complete checkpoints, oldest first (names sort by turn)."""
        out = []
        for entry in sorted(os.listdir(self.root)):
            if not entry.startswith(_PREFIX):
                continue
            if os.path.isfile(os.path.join(self.root, entry, _MANIFEST)):
                out.append(entry)
        return out

    def latest(self) -> Optional[str]:
        """Name of the newest complete checkpoint, or ``None``."""
        pointer = os.path.join(self.root, _LATEST)
        if os.path.isfile(pointer):
            with open(pointer, encoding="utf-8") as fh:
                name = fh.read().strip()
            if name and os.path.isfile(
                    os.path.join(self.root, name, _MANIFEST)):
                return name
        names = self.list()
        return names[-1] if names else None

    def read(self, name: Optional[str] = None
             ) -> Tuple[Dict[str, Any], Dict[str, bytes]]:
        """Load and verify one checkpoint (the latest by default).

        Returns ``(manifest, blobs)`` with blobs keyed by their
        manifest name minus the ``.pkl`` suffix.  Raises
        :class:`CheckpointError` on a missing checkpoint, an unknown
        format version, or any checksum mismatch.
        """
        if name is None:
            name = self.latest()
            if name is None:
                raise CheckpointError(
                    f"no checkpoint found under {self.root!r}")
        path = os.path.join(self.root, name)
        manifest_path = os.path.join(path, _MANIFEST)
        if not os.path.isfile(manifest_path):
            raise CheckpointError(f"{path!r} is not a checkpoint "
                                  f"(no {_MANIFEST})")
        with open(manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
        if manifest.get("format") != FORMAT:
            raise CheckpointError(
                f"{name}: unsupported snapshot format "
                f"{manifest.get('format')!r} (expected {FORMAT!r})")
        blobs: Dict[str, bytes] = {}
        for filename, meta in manifest.get("files", {}).items():
            blob_path = os.path.join(path, filename)
            try:
                with open(blob_path, "rb") as fh:
                    blob = fh.read()
            except OSError as exc:
                raise CheckpointError(
                    f"{name}: missing blob {filename}: {exc}") from exc
            digest = hashlib.sha256(blob).hexdigest()
            if digest != meta.get("sha256"):
                raise CheckpointError(
                    f"{name}: {filename} is corrupt (sha256 {digest} "
                    f"!= manifest {meta.get('sha256')})")
            if len(blob) != meta.get("size"):
                raise CheckpointError(
                    f"{name}: {filename} truncated ({len(blob)} bytes, "
                    f"manifest says {meta.get('size')})")
            key = filename[:-4] if filename.endswith(".pkl") else filename
            blobs[key] = blob
        if "coordinator" not in blobs:
            raise CheckpointError(
                f"{name}: manifest lists no coordinator blob")
        return manifest, blobs
