"""Command-line interface: run simulations without writing a script.

Examples::

    python -m repro list-workloads
    python -m repro run --workload fft --tiles 32 --machines 2
    python -m repro run --workload blackscholes --tiles 64 \\
        --directory limited --sharers 4 --quantum 100
    python -m repro show-config

Mirrors how the real Graphite is driven: a target architecture and a
host configuration selected at run time around an unmodified program.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.common.config import (
    DIRECTORY_TYPES,
    EXECUTION_BACKENDS,
    NETWORK_MODELS,
    SYNC_MODELS,
    SimulationConfig,
)
from repro.common.units import pretty_seconds
from repro.sim.runner import create_simulator
from repro.workloads import WORKLOADS, get_workload


def add_telemetry_arguments(parser: argparse.ArgumentParser,
                            metrics_metavar: str = "TURNS",
                            metrics_help: str =
                            "snapshot all counters every N scheduler "
                            "turns into metric time-series (implies "
                            "--trace)") -> None:
    """The uniform observability flags (``repro.obs``).

    Every long-running verb — ``run``, ``resume``, ``worker``,
    ``serve`` — accepts the same four flags; only the meaning of the
    metrics cadence differs (scheduler turns for a simulation, seconds
    for the daemon), so callers override its metavar/help.
    """
    parser.add_argument("--trace", nargs="?", const="all", default=None,
                        metavar="CATEGORIES",
                        help="enable event tracing; optional comma-"
                             "separated categories (e.g. cache,network), "
                             "default all")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="trace file; .json gets Chrome trace-event "
                             "format (load in Perfetto), anything else "
                             "JSONL (implies --trace)")
    parser.add_argument("--metrics-interval", type=int, default=0,
                        metavar=metrics_metavar, help=metrics_help)
    parser.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="arm the crash flight recorder: keep a "
                             "bounded ring of recent events (even "
                             "without --trace) and dump a forensics "
                             "bundle into DIR when a worker dies or a "
                             "run crashes")


def telemetry_from_args(args: argparse.Namespace,
                        default_events: Optional[List[str]] = None):
    """Build the :class:`~repro.common.config.TelemetryConfig` the
    shared observability flags describe, or ``None`` when no flag was
    given.  ``--flight-dir`` alone arms the recorder without enabling
    recording (the ring observes a mask-0 bus)."""
    from repro.common.config import TelemetryConfig
    trace = getattr(args, "trace", None)
    trace_out = getattr(args, "trace_out", None)
    metrics = getattr(args, "metrics_interval", 0)
    flight = getattr(args, "flight_dir", None)
    if not (trace or trace_out or metrics or flight):
        return None
    telemetry = TelemetryConfig()
    if trace or trace_out or metrics:
        telemetry.enabled = True
        telemetry.events = (
            [c.strip() for c in trace.split(",") if c.strip()]
            if trace else list(default_events or ["all"]))
        telemetry.trace_path = trace_out
        telemetry.metrics_interval = metrics
    if flight:
        telemetry.flight_dir = flight
    telemetry.validate()
    return telemetry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graphite reproduction: a parallel distributed "
                    "multicore simulator")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload")
    run.add_argument("--workload", required=True,
                     help=f"one of: {', '.join(sorted(WORKLOADS))}")
    run.add_argument("--tiles", type=int, default=32,
                     help="target tiles (default 32)")
    run.add_argument("--threads", type=int, default=0,
                     help="application threads (default: = tiles)")
    run.add_argument("--scale", type=float, default=1.0,
                     help="problem-size multiplier (default 1.0)")
    run.add_argument("--machines", type=int, default=1,
                     help="host machines (default 1)")
    run.add_argument("--cores", type=int, default=8,
                     help="host cores per machine (default 8)")
    run.add_argument("--sync", choices=SYNC_MODELS, default="lax",
                     help="synchronization model (default lax)")
    run.add_argument("--directory", choices=DIRECTORY_TYPES,
                     default="full_map",
                     help="coherence directory (default full_map)")
    run.add_argument("--sharers", type=int, default=4,
                     help="pointers for limited/limitless directories")
    run.add_argument("--network", choices=NETWORK_MODELS,
                     default="mesh", help="memory network model")
    run.add_argument("--quantum", type=int, default=0,
                     help="scheduler quantum in instructions")
    run.add_argument("--backend", choices=EXECUTION_BACKENDS,
                     default="inproc",
                     help="execution backend: inproc runs everything "
                          "in this process, mp forks one worker per "
                          "host process (default inproc)")
    run.add_argument("--transport", choices=("pipe", "tcp"),
                     default="pipe",
                     help="mp worker channel: pipe (forked children) "
                          "or tcp (multi-host sockets; default pipe)")
    run.add_argument("--listen", default="127.0.0.1:0",
                     metavar="HOST:PORT",
                     help="tcp transport: coordinator bind address "
                          "(port 0 picks an ephemeral port)")
    run.add_argument("--expect-workers", type=int, default=0,
                     metavar="N",
                     help="tcp transport: wait for N remote `repro "
                          "worker --connect` dial-ins instead of "
                          "forking local workers (default 0 = local)")
    run.add_argument("--connect-timeout", type=float, default=60.0,
                     metavar="SECONDS",
                     help="seconds to wait for the expected dial-ins")
    run.add_argument("--rebalance", choices=("off", "slowest"),
                     default="off",
                     help="live-migration policy: drain the slowest "
                          "worker (by observed quantum.run host time) "
                          "into the least busy one (default off)")
    run.add_argument("--rebalance-every", type=int, default=8,
                     metavar="TURNS",
                     help="scheduler turns between rebalance checks")
    run.add_argument("--drain-turn", type=int, default=0,
                     metavar="TURN",
                     help="scripted drain: at scheduler turn TURN, "
                          "checkpoint-migrate one worker's shard away "
                          "and release the worker (0 = never)")
    run.add_argument("--drain-worker", type=int, default=-1,
                     metavar="INDEX",
                     help="which worker --drain-turn drains "
                          "(default -1 = highest loaded index)")
    run.add_argument("--ff-until", type=int, default=0,
                     metavar="CYCLES",
                     help="fast-forward functionally (architectural "
                          "state warm, timing bypassed) until CYCLES, "
                          "then switch to detailed execution")
    run.add_argument("--sample", default=None,
                     metavar="PERIOD:DETAIL:WARMUP",
                     help="interval sampling after the fast-forward: "
                          "per PERIOD cycles, run WARMUP + DETAIL "
                          "cycles detailed (only DETAIL measured) and "
                          "fast-forward the rest; run time is "
                          "extrapolated with a confidence interval "
                          "(requires --ff-until)")
    run.add_argument("--sample-library", default=None, metavar="DIR",
                     help="snapshot library: share the fast-forward "
                          "prefix across runs — the first run primes "
                          "a switch-point checkpoint, later runs fork "
                          "from it (requires --ff-until)")
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--classify-misses", action="store_true",
                     help="report the miss-type breakdown (Figure 8)")
    add_telemetry_arguments(run)
    run.add_argument("--json", action="store_true",
                     help="emit machine-readable JSON instead of text")
    run.add_argument("--report", action="store_true",
                     help="print the full sim.out-style report")
    run.add_argument("--sanitize", action="store_true",
                     help="enable runtime sanitizers (clock "
                          "monotonicity, message causality, barrier "
                          "membership); purely observational")
    run.add_argument("--profile", action="store_true",
                     help="collect a host-performance profile (where "
                          "host wall time goes, simulation-rate "
                          "gauges); never perturbs simulated results")
    run.add_argument("--ckpt-dir", default=None, metavar="DIR",
                     help="enable checkpointing into DIR; resume later "
                          "with `repro resume DIR`")
    run.add_argument("--ckpt-every", type=int, default=0,
                     metavar="TURNS",
                     help="write a checkpoint every N scheduler turns "
                          "(requires --ckpt-dir; 0 = only crash "
                          "recovery state, no periodic snapshots)")
    run.add_argument("--ckpt-retries", type=int, default=3,
                     metavar="N",
                     help="crash-recovery restarts before giving up "
                          "(default 3)")

    worker = sub.add_parser(
        "worker",
        help="join a remote coordinator (or serve daemon) as a "
             "worker: dial host:port, handshake versions and config, "
             "then execute whatever shard or jobs it assigns")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="listener address to dial")
    worker.add_argument("--timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="connect timeout (default 30)")
    add_telemetry_arguments(
        worker, metrics_metavar="SECONDS",
        metrics_help="(reserved) cadence for local metric samples")

    resume = sub.add_parser(
        "resume",
        help="resume a checkpointed simulation to completion "
             "(byte-identical to the uninterrupted run)")
    from repro.ckpt.cli import add_resume_arguments
    add_resume_arguments(resume)

    profile = sub.add_parser(
        "profile",
        help="profile one workload: host wall-time breakdown by "
             "subsystem, simulation rates, achieved slowdown")
    from repro.profile.cli import add_profile_arguments
    add_profile_arguments(profile)

    bench = sub.add_parser(
        "bench",
        help="run the benchmark set under profiling and write the "
             "BENCH_host_profile.json trajectory")
    from repro.profile.bench import add_bench_arguments
    add_bench_arguments(bench)

    from repro.serve.cli import (
        add_cancel_arguments,
        add_fetch_arguments,
        add_serve_arguments,
        add_status_arguments,
        add_submit_arguments,
        add_top_arguments,
    )
    serve = sub.add_parser(
        "serve",
        help="run the persistent simulation service: a scheduler "
             "daemon over a worker fleet with priority queueing, "
             "checkpoint preemption and a content-addressed result "
             "cache")
    add_serve_arguments(serve)
    submit = sub.add_parser(
        "submit", help="submit one job to a running serve daemon")
    add_submit_arguments(submit)
    status = sub.add_parser(
        "status", help="show job states and daemon counters")
    add_status_arguments(status)
    fetch = sub.add_parser(
        "fetch", help="fetch a finished job's canonical result")
    add_fetch_arguments(fetch)
    cancel = sub.add_parser(
        "cancel", help="cancel a queued or running job")
    add_cancel_arguments(cancel)
    top = sub.add_parser(
        "top",
        help="live fleet metrics from a running serve daemon: queue "
             "depth, per-priority wait, cache hit rate, per-worker "
             "utilization (refreshing console view)")
    add_top_arguments(top)

    sample = sub.add_parser(
        "sample",
        help="manage the snapshot library of fast-forward "
             "checkpoints: ls, prime, gc")
    from repro.sample.cli import add_sample_arguments
    add_sample_arguments(sample)

    sub.add_parser("list-workloads", help="list available workloads")
    sub.add_parser("show-config",
                   help="print the default configuration as JSON")

    check = sub.add_parser(
        "check",
        help="run the determinism and wire-protocol lints plus the "
             "coherence-protocol and membership/migration state-space "
             "explorers (exits nonzero on findings)")
    from repro.check.cli import add_check_arguments
    add_check_arguments(check)
    return parser


def _configure(args: argparse.Namespace) -> SimulationConfig:
    config = SimulationConfig(num_tiles=args.tiles, seed=args.seed)
    config.host.num_machines = args.machines
    config.host.cores_per_machine = args.cores
    config.sync.model = args.sync
    config.memory.directory_type = args.directory
    config.memory.directory_max_sharers = args.sharers
    config.network.memory_model = args.network
    config.memory.classify_misses = args.classify_misses
    config.distrib.backend = args.backend
    config.distrib.transport = args.transport
    config.distrib.listen = args.listen
    config.distrib.expect_workers = args.expect_workers
    config.distrib.connect_timeout = args.connect_timeout
    config.distrib.rebalance = args.rebalance
    config.distrib.rebalance_every = args.rebalance_every
    config.distrib.drain_turn = args.drain_turn
    config.distrib.drain_worker = args.drain_worker
    config.check.sanitize = args.sanitize
    config.profile.enabled = args.profile
    if args.quantum:
        config.host.quantum_instructions = args.quantum
    if args.ckpt_dir:
        config.ckpt.dir = args.ckpt_dir
        config.ckpt.every = args.ckpt_every
        config.ckpt.max_restarts = args.ckpt_retries
    elif args.ckpt_every:
        from repro.common.errors import ConfigError
        raise ConfigError("--ckpt-every requires --ckpt-dir")
    if args.ff_until:
        config.sample.ff_until = args.ff_until
    if args.sample:
        from repro.common.errors import ConfigError
        try:
            period, detail, warmup = (
                int(part) for part in args.sample.split(":"))
        except ValueError:
            raise ConfigError(
                "--sample expects PERIOD:DETAIL:WARMUP in cycles, "
                f"got {args.sample!r}") from None
        config.sample.period = period
        config.sample.detail = detail
        config.sample.warmup = warmup
    if args.sample_library:
        if not args.ff_until:
            from repro.common.errors import ConfigError
            raise ConfigError("--sample-library requires --ff-until")
        config.sample.library = args.sample_library
    if args.trace or args.trace_out or args.metrics_interval:
        config.telemetry.enabled = True
        config.telemetry.events = (
            [c.strip() for c in args.trace.split(",") if c.strip()]
            if args.trace else ["all"])
        config.telemetry.trace_path = args.trace_out
        config.telemetry.metrics_interval = args.metrics_interval
        if config.telemetry.events_include("obs"):
            # Standalone runs have no serve daemon to mint a trace
            # identity, so the run span would never arm; mint one here
            # from the semantic config, deterministically.
            from repro.obs.spans import mint_trace_id
            config.telemetry.trace_id = mint_trace_id(
                "run", args.workload, config.content_hash())
    if args.flight_dir:
        # Arms the ring even without --trace: the recorder observes a
        # mask-0 bus, so nothing is recorded or shipped unless asked.
        config.telemetry.flight_dir = args.flight_dir
    config.validate()
    return config


def _command_run(args: argparse.Namespace) -> int:
    config = _configure(args)
    threads = args.threads or args.tiles
    get_workload(args.workload)  # fail fast on unknown names
    # A WorkloadRef rather than a built program: both backends resolve
    # it at spawn time, and the mp backend can ship it to workers.
    from repro.distrib.wire import WorkloadRef
    program = WorkloadRef(args.workload, threads, args.scale)
    if config.sample.ff_until > 0 and config.sample.library:
        # Snapshot-library run: prime the shared prefix once, fork
        # from the stored checkpoint (kept apart from run_simulation
        # so the forked simulator stays visible for the report below).
        from repro.sample.library import SnapshotLibrary
        library = SnapshotLibrary(config.sample.library)
        key, primed = library.ensure(config, program)
        simulator = library.fork(key, config)
        result = simulator.resume_run()
        result.sample["library"] = {"key": key, "primed": primed,
                                    "root": library.root}
    elif config.ckpt.enabled:
        from repro.ckpt.recovery import run_with_recovery
        simulator = create_simulator(config)
        result, simulator = run_with_recovery(simulator, program)
    else:
        simulator = create_simulator(config)
        result = simulator.run(program)
    simulator.engine.check_coherence_invariants()
    if simulator.sanitizers is not None and not args.json:
        print(simulator.sanitizers.summary())
    trace_events = (len(simulator.telemetry.events)
                    if simulator.telemetry is not None else 0)

    if args.report:
        from repro.analysis.report import render_report
        print(render_report(config, result))
        return 0

    if args.json:
        payload = {
            "workload": args.workload,
            "tiles": args.tiles,
            "threads": threads,
            "machines": args.machines,
            "backend": args.backend,
            "sync": args.sync,
            "simulated_cycles": result.simulated_cycles,
            "parallel_cycles": result.parallel_cycles,
            "instructions": result.total_instructions,
            "wall_clock_seconds": result.wall_clock_seconds,
            "native_seconds": result.native_seconds,
            "slowdown": result.slowdown,
            "l2_miss_rate": result.cache_miss_rate("l2"),
            "messages": result.counter("transport.messages_sent"),
            "miss_breakdown": result.miss_breakdown,
        }
        if config.sample.enabled:
            payload["sample"] = result.sample
        if config.ckpt.enabled:
            payload["recoveries"] = result.recoveries
        if config.telemetry.enabled:
            payload["trace_events"] = trace_events
            payload["trace_out"] = config.telemetry.trace_path
        if simulator.host_profile is not None:
            payload["host_profile"] = simulator.host_profile
        print(json.dumps(payload, indent=2))
        return 0

    print(f"workload:            {args.workload} "
          f"({threads} threads, scale {args.scale})")
    print(f"target:              {args.tiles} tiles, "
          f"{args.directory} directory, {args.network} network, "
          f"{args.sync} sync")
    print(f"host:                {args.machines} machine(s) x "
          f"{args.cores} cores, {args.backend} backend")
    print(f"simulated run-time:  {result.simulated_cycles:,} cycles "
          f"(parallel region {result.parallel_cycles:,})")
    print(f"instructions:        {result.total_instructions:,}")
    print("wall-clock (model):  "
          f"{pretty_seconds(result.wall_clock_seconds)}")
    print(f"native (model):      {pretty_seconds(result.native_seconds)}")
    print(f"slowdown:            {result.slowdown:,.0f}x")
    print(f"L2 miss rate:        {result.cache_miss_rate('l2'):.2%}")
    print("messages:            "
          f"{result.counter('transport.messages_sent'):,}")
    if result.miss_breakdown:
        parts = ", ".join(f"{k}={v}" for k, v in
                          sorted(result.miss_breakdown.items()) if v)
        print(f"miss breakdown:      {parts}")
    if result.sample:
        ff = result.sample.get("ff")
        if ff and ff.get("cycle") is not None:
            print(f"fast-forward:        functional until cycle "
                  f"{ff['cycle']:,} (target {ff['until']:,})")
        library = result.sample.get("library")
        if library:
            origin = "primed" if library.get("primed") else "forked"
            print(f"snapshot library:    {origin} entry "
                  f"{library.get('key')}")
        extrapolation = result.sample.get("extrapolation")
        if extrapolation and extrapolation["windows"]:
            confidence = int(round(extrapolation["confidence"] * 100))
            print(f"extrapolated:        {extrapolation['cycles']:,} "
                  f"cycles from {extrapolation['windows']} window(s), "
                  f"{confidence}% CI "
                  f"[{extrapolation['cycles_low']:,}, "
                  f"{extrapolation['cycles_high']:,}]")
    if config.telemetry.enabled:
        where = (f" -> {config.telemetry.trace_path}"
                 if config.telemetry.trace_path else "")
        print(f"trace:               {trace_events:,} events{where}")
    if result.recoveries:
        print(f"recoveries:          {len(result.recoveries)} "
              f"worker restart(s)")
    if simulator.host_profile is not None:
        from repro.profile.report import render_profile
        print()
        print(render_profile(simulator.host_profile))
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    """Dial a listener and serve it, whatever it turns out to be.

    The welcome frame's role decides the loop: a simulation
    coordinator gets a distrib shard worker, a serve daemon gets a
    remote fleet worker running jobs.

    The shared observability flags act *locally*: ``--trace`` records
    this host's view of the work (tagged with the coordinator's trace
    id from the welcome frame, never overriding the job telemetry the
    coordinator ships), and ``--flight-dir`` arms a local flight
    recorder dumped when the connection dies on a protocol error.
    """
    from repro.distrib.wire import WIRE_VERSION
    from repro.net.handshake import HandshakeError
    from repro.net.listener import connect_worker

    bus = None
    flight = None
    telemetry = telemetry_from_args(
        args, default_events=["net", "worker", "serve", "obs"])
    if telemetry is not None:
        from repro.telemetry.bus import TelemetryBus, create_bus
        bus = create_bus(telemetry)
        if telemetry.flight_dir:
            from repro.obs.flight import FlightRecorder
            from repro.telemetry.events import ALL_CATEGORIES
            if bus is None:
                bus = TelemetryBus(0)
            flight = FlightRecorder(telemetry.flight_events)
            bus.observe(flight.on_event, ALL_CATEGORIES)
    ops = None
    if bus is not None:
        from repro.telemetry.events import EventCategory
        ops = bus.channel(EventCategory.WORKER)

    def fail(exc: Exception) -> int:
        if ops is not None:
            ops.emit("worker.error", None, 0, {"error": str(exc)})
        if flight is not None and telemetry.flight_dir:
            try:
                flight.dump(telemetry.flight_dir,
                            type(exc).__name__,
                            detail=str(exc).splitlines()[0]
                            if str(exc) else "")
            except OSError:
                pass
        if bus is not None:
            bus.close()
        print(f"worker: {exc}", file=sys.stderr)
        return 1

    try:
        channel, welcome = connect_worker(args.connect, WIRE_VERSION,
                                          timeout=args.timeout)
    except HandshakeError as exc:
        return fail(exc)
    if ops is not None:
        ops.emit("worker.connected", None, 0,
                 {"peer": args.connect, "role": welcome.role,
                  "trace": welcome.trace})
    try:
        if welcome.role == "serve":
            from repro.serve.remote import run_remote_fleet_worker
            run_remote_fleet_worker(channel, ops=ops)
        else:
            from repro.distrib.worker import run_connected_worker
            run_connected_worker(channel, welcome)
    except HandshakeError as exc:
        return fail(exc)
    if ops is not None:
        ops.emit("worker.disconnected", None, 0, {"peer": args.connect})
    if bus is not None:
        bus.close()
    return 0


def _command_list() -> int:
    width = max(len(name) for name in WORKLOADS)
    for name in sorted(WORKLOADS):
        factory = WORKLOADS[name]
        print(f"{name.ljust(width)}  {factory.description} "
              f"[communication: {factory.comm_intensity}]")
    return 0


def _command_show_config() -> int:
    print(json.dumps(SimulationConfig().to_dict(), indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "list-workloads":
        return _command_list()
    if args.command == "show-config":
        return _command_show_config()
    if args.command == "profile":
        from repro.profile.cli import run_profile
        return run_profile(args)
    if args.command == "bench":
        from repro.profile.bench import run_bench
        return run_bench(args)
    if args.command == "check":
        from repro.check.cli import run_check
        return run_check(args)
    if args.command == "resume":
        from repro.ckpt.cli import run_resume
        return run_resume(args)
    if args.command == "sample":
        from repro.sample.cli import run_sample
        return run_sample(args)
    if args.command in ("serve", "submit", "status", "fetch", "cancel",
                        "top"):
        from repro.serve import cli as serve_cli
        handler = getattr(serve_cli, f"run_{args.command}")
        return handler(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
