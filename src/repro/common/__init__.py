"""Shared infrastructure: configuration, units, RNG streams, statistics.

These utilities underpin every other subpackage.  Nothing in here knows
about simulation semantics; it is deliberately dependency-free.
"""

from repro.common.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    HostConfig,
    MemoryConfig,
    NetworkConfig,
    SimulationConfig,
    SyncConfig,
)
from repro.common.errors import (
    ConfigError,
    DeadlockError,
    SimulationError,
    TargetFault,
)
from repro.common.ids import CoreId, ProcessId, ThreadId, TileId
from repro.common.rng import RngStreams
from repro.common.stats import Counter, Histogram, StatGroup, TimeSeries

__all__ = [
    "CacheConfig",
    "ConfigError",
    "CoreConfig",
    "CoreId",
    "Counter",
    "DeadlockError",
    "DramConfig",
    "Histogram",
    "HostConfig",
    "MemoryConfig",
    "NetworkConfig",
    "ProcessId",
    "RngStreams",
    "SimulationConfig",
    "SimulationError",
    "StatGroup",
    "SyncConfig",
    "TargetFault",
    "ThreadId",
    "TileId",
    "TimeSeries",
]
