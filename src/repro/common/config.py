"""Runtime configuration for a Graphite simulation.

Graphite is configured entirely through run-time parameters (paper §2):
every model is a swappable module selected and parameterized here.  The
defaults reproduce Table 1 of the paper:

======================  =====================================================
Clock frequency         1 GHz
L1 caches               private, 32 KB per tile, 64 B lines, 8-way, LRU
L2 cache                private, 3 MB per tile, 64 B lines, 24-way, LRU
Cache coherence         full-map directory based MSI
DRAM bandwidth          5.13 GB/s (total off-chip, split across controllers)
Interconnect            mesh network
======================  =====================================================
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.units import DEFAULT_CLOCK_HZ, GB, KB, MB

#: Network model registry keys (see :mod:`repro.network.model`).
NETWORK_MODELS = ("magic", "mesh", "mesh_contention", "ring", "torus")

#: Directory organisations (see :mod:`repro.memory.directory`).
DIRECTORY_TYPES = ("full_map", "limited", "limitless")

#: Synchronization models (paper §3.6).
SYNC_MODELS = ("lax", "lax_barrier", "lax_p2p")

#: Config sections that are *purely observational*: each is guaranteed
#: (and tested) to leave the :class:`~repro.sim.results.SimulationResult`
#: byte-identical whatever its value — telemetry/profiling/sanitizers
#: observe without consuming RNG draws or simulated time, checkpointing
#: snapshots without mutating, and both execution backends produce
#: identical metrics.  :meth:`SimulationConfig.content_hash` excludes
#: them so a cached result stays addressable when only observability
#: knobs (or a per-job checkpoint directory) differ.
OBSERVATIONAL_SECTIONS = ("distrib", "telemetry", "check", "profile",
                          "ckpt")

#: Config sections that are irrelevant to the *functional prefix* of a
#: run: during functional fast-forward (:mod:`repro.sample`) the core
#: timing models are bypassed (fixed unit cost), the network is
#: zero-latency and synchronization is magic, so two configs differing
#: only here reach ``sample.ff_until`` with byte-identical architectural
#: state.  :meth:`SimulationConfig.prefix_hash` excludes them (plus
#: per-tile core overrides, which are core timing too), which is what
#: lets the snapshot library share one fast-forwarded checkpoint across
#: sweep variants.  ``sync`` stays prefix-relevant: its constructed
#: state is part of the snapshot and is not reapplied at fork time.
PREFIX_IRRELEVANT_SECTIONS = ("core", "network", "sample")

#: Execution backends (see :mod:`repro.distrib`): ``inproc`` runs every
#: tile in the calling process (the reference engine); ``mp`` executes
#: the cluster layout on real OS processes — one worker per simulated
#: host process — with traffic over pipes.
EXECUTION_BACKENDS = ("inproc", "mp")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass
class CacheConfig:
    """Geometry and policy of one cache level."""

    size_bytes: int = 32 * KB
    line_bytes: int = 64
    associativity: int = 8
    #: Access latency charged by the performance model, in target cycles.
    access_latency: int = 1
    #: Whether this level exists at all (Figure 8 disables the L1s).
    enabled: bool = True

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)

    def validate(self, name: str = "cache") -> None:
        _require(self.line_bytes > 0 and (self.line_bytes & (self.line_bytes - 1)) == 0,
                 f"{name}: line size must be a positive power of two")
        _require(self.associativity >= 1, f"{name}: associativity must be >= 1")
        _require(self.size_bytes % (self.line_bytes * self.associativity) == 0,
                 f"{name}: size must be a multiple of line * associativity")
        _require(self.num_sets >= 1, f"{name}: must have at least one set")
        _require(self.access_latency >= 0, f"{name}: latency must be >= 0")


@dataclass
class DramConfig:
    """One DRAM controller slice; the paper places one at every tile."""

    #: Total off-chip bandwidth (Table 1), statically partitioned across
    #: all tiles' controllers (paper §4.4, Cache Coherence Study).
    total_bandwidth_bytes_per_s: float = 5.13 * GB
    #: Fixed access latency in target cycles (row access + channel).
    access_latency: int = 100
    #: Queue-model window size scale factor: window = factor * num_tiles.
    progress_window_factor: int = 1

    def validate(self) -> None:
        _require(self.total_bandwidth_bytes_per_s > 0,
                 "dram: bandwidth must be positive")
        _require(self.access_latency >= 0, "dram: latency must be >= 0")


@dataclass
class MemoryConfig:
    """Memory subsystem: cache hierarchy, coherence, DRAM."""

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * KB, line_bytes=64, associativity=8, access_latency=1))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * KB, line_bytes=64, associativity=8, access_latency=1))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=3 * MB, line_bytes=64, associativity=24, access_latency=8))
    dram: DramConfig = field(default_factory=DramConfig)

    #: Coherence protocol: "msi" (the paper's baseline) or "mesi"
    #: (adds the Exclusive state: an uncontended read miss returns the
    #: line exclusively, so a subsequent store needs no upgrade round
    #: trip — the classic private read-then-write optimisation).
    protocol: str = "msi"
    #: Directory organisation: full_map | limited (Dir_iNB) | limitless.
    directory_type: str = "full_map"
    #: Hardware sharer pointers for limited/limitless directories (the
    #: ``i`` in Dir_iNB and LimitLESS(i)).
    directory_max_sharers: int = 4
    #: Software-trap latency for LimitLESS overflow handling, in cycles.
    limitless_trap_latency: int = 100
    #: Directory lookup latency in cycles.
    directory_latency: int = 10
    #: Forward clean-shared lines cache-to-cache on read misses instead
    #: of re-reading the home DRAM controller.  On: the default (modern
    #: directory protocols; required for the Figure 9 scaling knee).
    #: Off: every S-state read pays the home controller's bandwidth
    #: slice — the ablation showing why forwarding matters.
    forward_shared_reads: bool = True
    #: Track per-line miss classification (needed for Figure 8; costs
    #: memory, so off by default).
    classify_misses: bool = False

    def validate(self) -> None:
        self.l1i.validate("l1i")
        self.l1d.validate("l1d")
        self.l2.validate("l2")
        self.dram.validate()
        _require(self.protocol in ("msi", "mesi"),
                 f"memory: unknown protocol {self.protocol!r}")
        _require(self.directory_type in DIRECTORY_TYPES,
                 f"memory: unknown directory type {self.directory_type!r}")
        _require(self.directory_max_sharers >= 1,
                 "memory: directory_max_sharers must be >= 1")
        if self.l1d.enabled or self.l1i.enabled:
            _require(self.l1d.line_bytes == self.l2.line_bytes,
                     "memory: L1 and L2 line sizes must match")


@dataclass
class CoreConfig:
    """Core performance model parameters (paper §3.1).

    Two swappable timing models are provided, selected by ``model``:
    ``in_order`` (the paper's default: in-order pipeline with an
    out-of-order memory interface via store buffer / load queue) and
    ``out_of_order`` (a window-based OoO model demonstrating the
    paper's claim that the core model can differ drastically from the
    in-order, sequentially consistent functional simulator).
    """

    clock_hz: int = DEFAULT_CLOCK_HZ
    #: Timing model: "in_order" or "out_of_order".
    model: str = "in_order"
    #: OoO model: reorder-buffer window entries.
    rob_entries: int = 64
    #: OoO model: instructions dispatched per cycle.
    dispatch_width: int = 2
    #: Per-class instruction costs in cycles.  Classes not listed cost 1.
    instruction_costs: Dict[str, int] = field(default_factory=lambda: {
        "generic": 1,
        "ialu": 1,
        "imul": 3,
        "idiv": 18,
        "fpu_add": 3,
        "fpu_mul": 5,
        "fpu_div": 30,
        "branch": 1,
        "jmp": 1,
    })
    #: Branch misprediction penalty, cycles.
    branch_mispredict_penalty: int = 14
    #: Two-bit saturating-counter predictor table size (entries).
    branch_predictor_entries: int = 1024
    #: Store buffer depth; stores retire without stalling until full.
    store_buffer_entries: int = 8
    #: Outstanding loads the load unit tracks.
    load_queue_entries: int = 8

    def validate(self) -> None:
        _require(self.clock_hz > 0, "core: clock must be positive")
        _require(self.model in ("in_order", "out_of_order"),
                 f"core: unknown model {self.model!r}")
        _require(self.rob_entries >= 1, "core: rob_entries must be >= 1")
        _require(self.dispatch_width >= 1,
                 "core: dispatch_width must be >= 1")
        _require(self.branch_predictor_entries > 0,
                 "core: predictor must have entries")
        _require(self.store_buffer_entries >= 1,
                 "core: store buffer must hold >= 1 entry")
        for name, cost in self.instruction_costs.items():
            _require(cost >= 0, f"core: cost of {name} must be >= 0")


@dataclass
class NetworkConfig:
    """On-chip network models (paper §3.3).

    Graphite keeps several distinct models keyed by traffic class; system
    traffic always uses the zero-delay ``magic`` model so it cannot
    perturb results.
    """

    #: Model for application message-passing traffic.
    user_model: str = "mesh"
    #: Model for memory-system traffic (commonly a separate physical
    #: network in tiled multicores).
    memory_model: str = "mesh"
    #: Model for simulator-internal system traffic — always magic.
    system_model: str = "magic"
    #: Per-hop latency of the mesh, cycles.
    hop_latency: int = 2
    #: Link width in bytes per cycle (serialisation delay = size/width).
    link_bytes_per_cycle: int = 8
    #: Fixed packet processing overhead at source and destination.
    endpoint_latency: int = 2
    #: Contention model: window size factor for global-progress estimate.
    progress_window_factor: int = 1

    def validate(self) -> None:
        for name in (self.user_model, self.memory_model, self.system_model):
            _require(name in NETWORK_MODELS,
                     f"network: unknown model {name!r}")
        _require(self.hop_latency >= 0, "network: hop latency must be >= 0")
        _require(self.link_bytes_per_cycle > 0,
                 "network: link width must be positive")


@dataclass
class SyncConfig:
    """Synchronization model selection and tuning (paper §3.6)."""

    model: str = "lax"
    #: LaxBarrier: barrier quantum in target cycles (paper uses 1000 for
    #: the accuracy studies).
    barrier_interval: int = 1000
    #: LaxP2P: maximum tolerated clock difference ("slack"), cycles.
    p2p_slack: int = 100_000
    #: LaxP2P: how often each tile initiates a random pairwise check.
    p2p_interval: int = 10_000

    def validate(self) -> None:
        _require(self.model in SYNC_MODELS,
                 f"sync: unknown model {self.model!r}")
        _require(self.barrier_interval > 0,
                 "sync: barrier interval must be positive")
        _require(self.p2p_slack > 0, "sync: slack must be positive")
        _require(self.p2p_interval > 0, "sync: interval must be positive")


@dataclass
class HostConfig:
    """The simulated host cluster (paper §4.1 testbed substitute).

    Models the paper's cluster of dual-quad-core Xeon machines on a
    Gigabit switch.  Wall-clock outputs are produced by the cost model in
    :mod:`repro.host.costmodel` using these parameters.
    """

    num_machines: int = 1
    cores_per_machine: int = 8
    #: Host processes participating in the simulation; by default one per
    #: machine, as in the paper's experiments.
    num_processes: Optional[int] = None
    #: Host core clock, Hz (3.16 GHz Xeon X5460).
    host_clock_hz: float = 3.16e9
    #: Cost in host seconds of one natively executed target instruction.
    native_instruction_cost: float = 1.0 / 3.16e9
    #: Multiplier on instruction cost when running under instrumentation
    #: (the DBT adds basic-block dispatch overhead).
    instrumentation_overhead: float = 30.0
    #: Host cost of a trap into a back-end model (memory/core/network).
    model_trap_cost: float = 25e-9
    #: Host cost of servicing a cache-hierarchy access model.
    memory_model_cost: float = 50e-9
    #: One-way message CPU costs by locality: the host cycles spent in
    #: the sender/receiver paths (queue ops, kernel TCP stack).  These
    #: consume host-core time.
    intra_process_message_cost: float = 0.3e-6
    inter_process_message_cost: float = 0.5e-6
    inter_machine_message_cost: float = 0.6e-6
    #: One-way message *latencies* by locality: wire/stack time during
    #: which the waiting host thread is blocked but its core is free to
    #: run other tile threads.  This is what lets Graphite overlap
    #: remote stalls with other tiles' simulation work.
    intra_process_message_latency: float = 0.0
    inter_process_message_latency: float = 1.0e-6
    inter_machine_message_latency: float = 3.0e-6
    #: Per-byte latency on top of the fixed cost (GbE ~ 1 Gb/s).
    inter_machine_byte_cost: float = 1.0e-9
    #: Fixed per-process start-up cost (sequential; limits Figure 5
    #: scaling at high machine counts).
    process_startup_cost: float = 0.00015
    #: Host cost of creating one target thread (MCP + LCP + pthread).
    thread_spawn_cost: float = 2e-6
    #: Relative stddev of multiplicative jitter applied to host costs;
    #: models OS noise and is the source of run-to-run variation.
    jitter: float = 0.02
    #: Scheduler quantum: target instructions a tile runs per turn.
    quantum_instructions: int = 2000

    def resolved_processes(self) -> int:
        return self.num_processes if self.num_processes else self.num_machines

    @property
    def total_cores(self) -> int:
        return self.num_machines * self.cores_per_machine

    def validate(self) -> None:
        _require(self.num_machines >= 1, "host: need at least one machine")
        _require(self.cores_per_machine >= 1,
                 "host: need at least one core per machine")
        procs = self.resolved_processes()
        _require(procs >= 1, "host: need at least one process")
        _require(procs >= self.num_machines,
                 "host: need at least one process per machine")
        _require(0.0 <= self.jitter < 1.0, "host: jitter must be in [0, 1)")
        _require(self.quantum_instructions >= 1,
                 "host: quantum must be >= 1 instruction")


@dataclass
class DistribConfig:
    """Distributed-execution backend selection and tuning.

    The ``mp`` backend (paper §3.5: one simulation spanning multiple
    host processes) forks one OS worker process per simulated host
    process and runs each tile's thread inside its owning worker; all
    cross-process traffic travels over pipes in the versioned wire
    format of :mod:`repro.distrib.wire`.  Results are byte-identical to
    the ``inproc`` reference engine.
    """

    #: Execution backend: ``inproc`` (default) or ``mp``.
    backend: str = "inproc"
    #: Seconds the coordinator waits for a worker frame before declaring
    #: the worker hung (surfaces as WorkerTimeoutError, not a hang).
    worker_timeout: float = 120.0
    #: Seconds allowed for orderly worker shutdown before termination.
    shutdown_timeout: float = 10.0
    #: Worker channel: ``pipe`` (forked children over multiprocessing
    #: pipes) or ``tcp`` (length-prefixed sockets via :mod:`repro.net`,
    #: the multi-host transport).
    transport: str = "pipe"
    #: TCP bind address of the coordinator's listener (port 0 picks an
    #: ephemeral port; only meaningful with ``transport="tcp"``).
    listen: str = "127.0.0.1:0"
    #: Remote dial-ins (``repro worker --connect``) to wait for before
    #: the run starts.  0 means self-contained: the coordinator forks
    #: local workers that dial its own listener.
    expect_workers: int = 0
    #: Seconds to wait for the expected dial-ins at startup.
    connect_timeout: float = 60.0
    #: Live-migration policy: ``off`` or ``slowest`` (drain the worker
    #: with the largest ``quantum.run`` self-time delta into the least
    #: busy one; see :mod:`repro.net.rebalance`).
    rebalance: str = "off"
    #: Scheduler turns between policy evaluations.
    rebalance_every: int = 8
    #: Busy-time ratio (slowest/fastest) that triggers a drain.
    rebalance_threshold: float = 4.0
    #: Scripted drain: at this scheduler turn, migrate one worker's
    #: shard away (0 = never).  Deterministic hook for tests and the
    #: CI migration smoke; independent of the rebalance policy.
    drain_turn: int = 0
    #: Worker index to drain at ``drain_turn`` (-1 = highest index).
    drain_worker: int = -1
    #: Straggler watchdog (:mod:`repro.obs.watchdog`): emit a
    #: ``straggler.warn`` telemetry event when a worker's interval
    #: ``quantum.run`` rate falls below this fraction of the fleet
    #: median (the signal ``rebalance="slowest"`` acts on).  0 = off.
    straggler_fraction: float = 0.0

    def migration_capable(self) -> bool:
        """Can this run ever migrate a shard between workers?

        True for every TCP-transport run (workers may join or die) and
        for any run with a rebalance policy or scripted drain.  Workers
        use this to keep interpreter replay logs (the same logs
        checkpointing keeps) so their shards stay movable; keeping the
        log is observational and does not perturb simulated metrics.
        """
        return self.backend == "mp" and (
            self.transport == "tcp"
            or self.rebalance != "off"
            or self.drain_turn > 0)

    def needs_worker_busy_signal(self) -> bool:
        """True when something consumes per-worker ``quantum.run``
        self-time: the rebalance policy or the straggler watchdog."""
        return self.rebalance != "off" or self.straggler_fraction > 0

    def validate(self) -> None:
        _require(self.backend in EXECUTION_BACKENDS,
                 f"distrib: unknown backend {self.backend!r} "
                 f"(choose from {EXECUTION_BACKENDS})")
        _require(self.worker_timeout > 0,
                 "distrib: worker_timeout must be positive")
        _require(self.shutdown_timeout > 0,
                 "distrib: shutdown_timeout must be positive")
        _require(self.transport in ("pipe", "tcp"),
                 f"distrib: unknown transport {self.transport!r} "
                 f"(choose from ('pipe', 'tcp'))")
        _require(self.expect_workers >= 0,
                 "distrib: expect_workers must be >= 0")
        _require(self.expect_workers == 0 or self.transport == "tcp",
                 "distrib: expect_workers requires transport='tcp'")
        _require(self.connect_timeout > 0,
                 "distrib: connect_timeout must be positive")
        _require(self.rebalance in ("off", "slowest"),
                 f"distrib: unknown rebalance policy "
                 f"{self.rebalance!r} (choose from ('off', 'slowest'))")
        _require(self.rebalance_every > 0,
                 "distrib: rebalance_every must be positive")
        _require(self.rebalance_threshold >= 1.0,
                 "distrib: rebalance_threshold must be >= 1.0")
        _require(self.drain_turn >= 0,
                 "distrib: drain_turn must be >= 0")
        _require(0.0 <= self.straggler_fraction <= 1.0,
                 "distrib: straggler_fraction must be in [0, 1]")
        if self.transport == "tcp":
            from repro.net.listener import parse_address
            try:
                parse_address(self.listen)
            except ValueError as exc:
                _require(False, f"distrib: {exc}")


#: Trace file formats (see :mod:`repro.telemetry`): ``auto`` infers
#: chrome for ``.json`` paths and jsonl otherwise.
TRACE_FORMATS = ("auto", "jsonl", "chrome")


@dataclass
class TelemetryConfig:
    """Event tracing and metrics observability (see :mod:`repro.telemetry`).

    Disabled by default; a disabled run constructs no bus at all, so
    every instrumented hot path degenerates to one ``is not None``
    check.  Telemetry is purely observational — it never consumes RNG
    streams or alters timing — so simulated-cycle results are identical
    with tracing on or off.
    """

    enabled: bool = False
    #: Event categories to record; names from
    #: :class:`repro.telemetry.events.EventCategory` or ``"all"``.
    events: List[str] = field(default_factory=lambda: ["all"])
    #: Trace output file; ``None`` keeps events in memory only.
    trace_path: Optional[str] = None
    #: Output format: ``auto`` | ``jsonl`` | ``chrome``.
    trace_format: str = "auto"
    #: Metrics-registry snapshot cadence in scheduler turns; 0 disables.
    metrics_interval: int = 0
    #: mp backend: worker flushes its event batch to the coordinator
    #: once this many events are pending.
    batch_events: int = 256
    #: Distributed-tracing context (:mod:`repro.obs.spans`): the trace
    #: id this run belongs to ("" = untraced) and the parent span id
    #: minted by the submitting process.  Pure propagation — carried
    #: through the serve protocol, the distrib wire and the net
    #: handshake, honoured only when telemetry is enabled.
    trace_id: str = ""
    span_parent: str = ""
    #: Crash flight recorder (:mod:`repro.obs.flight`): directory to
    #: dump forensics bundles into when a worker crashes or a protocol
    #: error kills a connection ("" = recorder off), and the ring
    #: capacity in events.  Works with telemetry otherwise disabled —
    #: the recorder rides a mask-0 bus as an observer, so the recorded
    #: trace and the simulated results are unchanged either way.
    flight_dir: str = ""
    flight_events: int = 256

    def resolved_trace_format(self) -> str:
        if self.trace_format != "auto":
            return self.trace_format
        if self.trace_path and str(self.trace_path).endswith(".json"):
            return "chrome"
        return "jsonl"

    def events_include(self, name: str) -> bool:
        """Whether the requested category set covers ``name``."""
        return "all" in self.events or name in self.events

    def validate(self) -> None:
        _require(self.trace_format in TRACE_FORMATS,
                 f"telemetry: unknown trace format {self.trace_format!r} "
                 f"(choose from {TRACE_FORMATS})")
        _require(self.metrics_interval >= 0,
                 "telemetry: metrics_interval must be >= 0")
        _require(self.batch_events >= 1,
                 "telemetry: batch_events must be >= 1")
        _require(self.flight_events >= 1,
                 "telemetry: flight_events must be >= 1")
        # Resolves category names; raises ConfigError on unknown ones.
        from repro.telemetry.events import parse_event_mask
        parse_event_mask(self.events)


@dataclass
class ProfileConfig:
    """Host-performance profiling (see :mod:`repro.profile`).

    Answers "where does the *host's* wall time go and how fast are we
    simulating?" — the simulator-side counterpart of the target-side
    telemetry above.  Disabled by default; a disabled run constructs no
    profiler at all, so instrumented call sites keep their original,
    unwrapped methods and the hot paths pay nothing.  Profiling is
    purely observational: it never consumes RNG streams, never charges
    simulated time, and a profiled run produces byte-identical
    simulation metrics to an unprofiled one.
    """

    #: Enable host profiling (CLI ``--profile``).
    enabled: bool = False
    #: Subsystem rows kept in rendered reports and bench trajectories.
    top_n: int = 12

    def validate(self) -> None:
        _require(self.top_n >= 1, "profile: top_n must be >= 1")


@dataclass
class CheckConfig:
    """Runtime correctness checking (see :mod:`repro.check.sanitize`).

    Sanitizers observe the telemetry bus and verify invariants (clock
    monotonicity, message causality, barrier membership) as the
    simulation runs.  They are purely observational: a sanitized run
    produces the same simulated cycles and counters as an unsanitized
    one, and when ``sanitize`` is off no observer exists at all.
    """

    #: Enable the runtime sanitizers (CLI ``--sanitize``).
    sanitize: bool = False

    def validate(self) -> None:
        pass


@dataclass
class CkptConfig:
    """Deterministic checkpoint/restore (see :mod:`repro.ckpt`).

    Disabled by default.  Setting ``dir`` makes the simulation
    snapshottable: thread interpreters begin recording their generator
    replay logs and :meth:`repro.sim.simulator.Simulator.save_checkpoint`
    becomes available.  Setting ``every`` > 0 additionally writes a
    snapshot every that many scheduler turns.  Snapshots are purely
    observational — a checkpointing run produces byte-identical
    metrics to a non-checkpointing one — and a restored run continues
    to a byte-identical :class:`~repro.sim.results.SimulationResult`.

    Under the mp backend a checkpoint is a *coordinated* one (every
    worker acknowledges a CHECKPOINT barrier before the snapshot
    commits), and a crashed worker triggers restore-and-resume from
    the last consistent checkpoint with exponential backoff, up to
    ``max_restarts`` attempts.
    """

    #: Checkpoint directory; ``None`` disables the subsystem entirely.
    dir: Optional[str] = None
    #: Scheduler turns between periodic checkpoints; 0 = manual only.
    every: int = 0
    #: Completed checkpoints retained in ``dir`` (older ones pruned).
    keep: int = 2
    #: Crash-recovery restarts allowed before the failure propagates.
    max_restarts: int = 3
    #: First restart delay in seconds; doubles per subsequent attempt.
    backoff_base: float = 0.05
    #: Multiplier applied to the backoff delay after every attempt.
    backoff_factor: float = 2.0

    @property
    def enabled(self) -> bool:
        return self.dir is not None

    def validate(self) -> None:
        _require(self.every >= 0, "ckpt: every must be >= 0")
        _require(self.keep >= 1, "ckpt: keep must be >= 1")
        _require(self.max_restarts >= 0,
                 "ckpt: max_restarts must be >= 0")
        _require(self.backoff_base >= 0.0,
                 "ckpt: backoff_base must be >= 0")
        _require(self.backoff_factor >= 1.0,
                 "ckpt: backoff_factor must be >= 1")
        _require(self.every == 0 or self.dir is not None,
                 "ckpt: periodic checkpointing (every > 0) needs dir")


@dataclass
class SampleConfig:
    """Checkpoint-accelerated sampling (see :mod:`repro.sample`).

    Two composable mechanisms, both switching execution mode only at
    scheduler-quantum boundaries:

    * **Functional fast-forward**: until every live tile clock reaches
      ``ff_until``, the run executes functionally — caches, directory
      and shared memory stay architecturally warm, but the core retires
      at a fixed unit cost, the network and DRAM are zero-latency and
      synchronization is magic.
    * **Interval sampling**: after ``ff_until``, each ``period`` cycles
      opens with a detailed-but-unmeasured ``warmup`` window, then a
      measured ``detail`` window, then fast-forwards the remainder;
      :mod:`repro.sample.stats` extrapolates whole-run metrics from the
      measured windows with Student-t confidence intervals.

    The section is *semantic* — fast-forwarding legitimately changes
    ``simulated_cycles`` — except ``library``, which only names where
    shared prefix snapshots live and is excluded from
    :meth:`SimulationConfig.semantic_dict`.
    """

    #: Fast-forward functionally until every live tile clock reaches
    #: this cycle count; 0 disables fast-forward.
    ff_until: int = 0
    #: Interval sampling period in cycles; 0 disables interval sampling.
    period: int = 0
    #: Measured detailed window after each period's warmup, in cycles.
    detail: int = 0
    #: Detailed (unmeasured) warmup opening each period.
    warmup: int = 0
    #: Snapshot-library root for prefix sharing; ``None`` = no library.
    #: Observational: two configs differing only here hash identically.
    library: Optional[str] = None
    #: Confidence level of the Student-t interval on extrapolations.
    confidence: float = 0.95

    @property
    def enabled(self) -> bool:
        return self.ff_until > 0 or self.period > 0

    @property
    def intervals_enabled(self) -> bool:
        return self.period > 0

    @classmethod
    def parse_intervals(cls, spec: str) -> Tuple[int, int, int]:
        """Parse the CLI's ``period:detail:warmup`` interval spec."""
        parts = spec.split(":")
        if len(parts) != 3:
            raise ConfigError(
                f"sample: interval spec {spec!r} is not "
                "'period:detail:warmup'")
        try:
            period, detail, warmup = (int(p) for p in parts)
        except ValueError as exc:
            raise ConfigError(
                f"sample: non-integer interval spec {spec!r}") from exc
        return period, detail, warmup

    def validate(self) -> None:
        _require(self.ff_until >= 0, "sample: ff_until must be >= 0")
        _require(self.period >= 0, "sample: period must be >= 0")
        _require(self.detail >= 0, "sample: detail must be >= 0")
        _require(self.warmup >= 0, "sample: warmup must be >= 0")
        if self.period:
            _require(self.detail >= 1,
                     "sample: interval sampling needs detail >= 1")
            _require(self.detail + self.warmup <= self.period,
                     "sample: detail + warmup must fit in the period")
        _require(0.0 < self.confidence < 1.0,
                 "sample: confidence must be in (0, 1)")


@dataclass
class SimulationConfig:
    """Top-level configuration: the target architecture plus the host."""

    num_tiles: int = 32
    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    sync: SyncConfig = field(default_factory=SyncConfig)
    host: HostConfig = field(default_factory=HostConfig)
    distrib: DistribConfig = field(default_factory=DistribConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    check: CheckConfig = field(default_factory=CheckConfig)
    profile: ProfileConfig = field(default_factory=ProfileConfig)
    ckpt: CkptConfig = field(default_factory=CkptConfig)
    sample: SampleConfig = field(default_factory=SampleConfig)
    #: Master seed for all RNG streams.
    seed: int = 42
    #: Heterogeneous tiles (paper §2: "tiles may be homogeneous or
    #: heterogeneous"): per-tile overrides of CoreConfig fields, e.g.
    #: ``{0: {"dispatch_width": 4, "model": "out_of_order"}}`` makes
    #: tile 0 a big core.  Unlisted tiles use ``core`` as-is.
    tile_core_overrides: Dict[int, Dict[str, Any]] = field(
        default_factory=dict)
    #: Sample per-tile clocks for skew traces (Figure 7); adds overhead.
    trace_clock_skew: bool = False
    #: Skew sampling period in scheduler turns.
    skew_sample_period: int = 64

    def core_config_for(self, tile: int) -> CoreConfig:
        """The effective core configuration of one tile."""
        overrides = self.tile_core_overrides.get(tile)
        if not overrides:
            return self.core
        merged = dataclasses.replace(self.core, **overrides)
        merged.validate()
        return merged

    def validate(self) -> None:
        _require(self.num_tiles >= 1, "simulation: need at least one tile")
        self.core.validate()
        for tile, overrides in self.tile_core_overrides.items():
            _require(0 <= int(tile) < self.num_tiles,
                     f"simulation: override for missing tile {tile}")
            unknown = set(overrides) - {
                f.name for f in dataclasses.fields(CoreConfig)}
            _require(not unknown,
                     f"simulation: unknown core fields {sorted(unknown)}")
            self.core_config_for(int(tile))
        self.memory.validate()
        self.network.validate()
        self.sync.validate()
        self.host.validate()
        self.distrib.validate()
        self.telemetry.validate()
        self.check.validate()
        self.profile.validate()
        self.ckpt.validate()
        self.sample.validate()
        # Host-profiling instrumentation rebinds instance methods with
        # closure wrappers, which cannot cross a snapshot pickle.
        _require(not (self.ckpt.enabled and self.profile.enabled),
                 "ckpt: checkpointing does not support host profiling "
                 "(--profile); disable one of the two")

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to plain nested dicts (JSON-compatible)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationConfig":
        """Build a config from nested dicts, applying defaults elsewhere."""

        def build(klass: type, section: Mapping[str, Any]) -> Any:
            names = {f.name for f in dataclasses.fields(klass)}
            unknown = set(section) - names
            if unknown:
                raise ConfigError(
                    f"{klass.__name__}: unknown keys {sorted(unknown)}")
            return klass(**dict(section))

        data = dict(data)
        if "tile_core_overrides" in data:
            data["tile_core_overrides"] = {
                int(tile): dict(overrides) for tile, overrides
                in data["tile_core_overrides"].items()}
        sections: Dict[str, Tuple[type, ...]] = {
            "core": (CoreConfig,),
            "network": (NetworkConfig,),
            "sync": (SyncConfig,),
            "host": (HostConfig,),
            "dram": (DramConfig,),
            "distrib": (DistribConfig,),
            "telemetry": (TelemetryConfig,),
            "check": (CheckConfig,),
            "profile": (ProfileConfig,),
            "ckpt": (CkptConfig,),
            "sample": (SampleConfig,),
        }
        kwargs: Dict[str, Any] = {}
        for key, value in data.items():
            if key == "memory":
                mem = dict(value)
                mkwargs: Dict[str, Any] = {}
                for ck in ("l1i", "l1d", "l2"):
                    if ck in mem:
                        mkwargs[ck] = build(CacheConfig, mem.pop(ck))
                if "dram" in mem:
                    mkwargs["dram"] = build(DramConfig, mem.pop("dram"))
                mkwargs.update(mem)
                kwargs["memory"] = MemoryConfig(**mkwargs)
            elif key in sections:
                kwargs[key] = build(sections[key][0], value)
            else:
                kwargs[key] = value
        config = cls(**kwargs)
        config.validate()
        return config

    def copy(self) -> "SimulationConfig":
        """Deep-copy via round-trip so sweeps can mutate safely."""
        return SimulationConfig.from_dict(self.to_dict())

    # -- content addressing -------------------------------------------------

    def semantic_dict(self) -> Dict[str, Any]:
        """The result-determining subset of :meth:`to_dict`.

        Drops :data:`OBSERVATIONAL_SECTIONS` — the knobs proven not to
        change simulation metrics — and keeps everything else,
        including the seed and every nested model parameter.  The
        ``sample`` section stays (fast-forwarding changes results),
        minus its ``library`` field, which only locates shared prefix
        snapshots on disk.
        """
        data = self.to_dict()
        for section in OBSERVATIONAL_SECTIONS:
            data.pop(section, None)
        if "sample" in data:
            data["sample"] = {k: v for k, v in data["sample"].items()
                              if k != "library"}
        return data

    def content_hash(self) -> str:
        """Deterministic identity of this configuration's *results*.

        The sha256 (hex) of the canonical JSON of
        :meth:`semantic_dict` plus the wire/result format version:
        equal hashes mean a simulation of this config is guaranteed to
        produce byte-identical metrics, which is what lets the serve
        result cache (:mod:`repro.serve.store`) return a stored
        :class:`~repro.sim.results.SimulationResult` for a repeat
        submission without simulating.  Stable across processes,
        interpreters and ``PYTHONHASHSEED`` values: the JSON encoding
        sorts keys and carries no addresses or wall-clock state.
        """
        from repro.distrib.wire import WIRE_VERSION
        payload = {"config": self.semantic_dict(),
                   "wire_version": WIRE_VERSION}
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def prefix_hash(self) -> str:
        """Identity of this config's *functional prefix*.

        Like :meth:`content_hash` but additionally dropping
        :data:`PREFIX_IRRELEVANT_SECTIONS` and the per-tile core
        overrides: sections that only steer timing models bypassed
        during functional fast-forward.  Two configs with equal prefix
        hashes fast-forwarded to the same cycle produce byte-identical
        architectural state, so the snapshot library
        (:mod:`repro.sample.library`) may serve both from one stored
        checkpoint.  Stable across processes and ``PYTHONHASHSEED``
        for the same reasons as :meth:`content_hash`.
        """
        from repro.distrib.wire import WIRE_VERSION
        data = self.semantic_dict()
        for section in PREFIX_IRRELEVANT_SECTIONS:
            data.pop(section, None)
        data.pop("tile_core_overrides", None)
        payload = {"prefix": data, "wire_version": WIRE_VERSION}
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    # -- pickling (wire format) ---------------------------------------------
    #
    # Configurations cross process boundaries in the mp backend and the
    # parallel sweep pool.  Pickling goes through the plain-dict form so
    # the wire state is explicit and versioned rather than a dump of
    # interpreter internals.

    _PICKLE_VERSION = 1

    def __getstate__(self) -> Dict[str, Any]:
        return {"version": self._PICKLE_VERSION, "data": self.to_dict()}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        version = state.get("version")
        if version != self._PICKLE_VERSION:
            raise ConfigError(
                f"SimulationConfig pickle version {version!r} is not "
                f"supported (expected {self._PICKLE_VERSION})")
        rebuilt = SimulationConfig.from_dict(state["data"])
        self.__dict__.update(rebuilt.__dict__)
