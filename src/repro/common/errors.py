"""Exception hierarchy for the simulator.

Every error raised by the simulator derives from :class:`SimulationError`
so callers can catch simulator faults without masking ordinary Python
bugs.
"""


class SimulationError(Exception):
    """Base class for all simulator-raised errors."""


class ConfigError(SimulationError):
    """An invalid or inconsistent configuration was supplied."""


class TargetFault(SimulationError):
    """The simulated application performed an illegal operation.

    Examples: access to an unmapped target address, double-free in the
    target heap, joining a thread that was never spawned.
    """


class DeadlockError(SimulationError):
    """No runnable thread remains but the simulation has not finished."""


class TransportError(SimulationError):
    """A failure in the physical transport layer."""


class ProtocolError(SimulationError):
    """The cache-coherence engine reached an illegal protocol state."""


class CheckpointError(SimulationError):
    """A snapshot could not be written, validated or restored.

    Raised by :mod:`repro.ckpt` for unreadable checkpoint directories,
    manifest/blob checksum mismatches (corruption), format-version
    mismatches and replay failures while rebuilding thread generators.
    """


class SampleError(SimulationError):
    """A failure in checkpoint-accelerated sampling (:mod:`repro.sample`).

    Raised by the snapshot library for workloads that finish before the
    requested fast-forward target, corrupt or missing library entries,
    and — loudly — whenever the determinism check finds a forked run
    whose metrics are not byte-identical to an unshared run of the same
    configuration.
    """


class ServeError(SimulationError):
    """A failure in the simulation service (:mod:`repro.serve`).

    Raised for protocol-version mismatches on the client channel,
    malformed frames, requests naming unknown jobs, and a daemon that
    cannot be reached at its socket.
    """


class SanitizerViolation(SimulationError):
    """A runtime sanitizer observed a broken simulation invariant.

    Raised by :mod:`repro.check.sanitize` when a ``--sanitize`` run
    violates clock monotonicity, message causality or barrier
    membership.  Always indicates a simulator bug, never an
    application bug.
    """
