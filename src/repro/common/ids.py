"""Typed identifiers for simulation entities.

All identifiers are small integers.  Wrapping them in distinct ``int``
subclasses costs nothing at runtime but makes signatures self-documenting
and lets tests assert that the right *kind* of id flows through an
interface.
"""

from __future__ import annotations


class TileId(int):
    """Index of a tile in the target architecture (0-based)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TileId({int(self)})"


class CoreId(int):
    """Index of a host core within the host cluster (0-based, global)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CoreId({int(self)})"


class ProcessId(int):
    """Index of a host process participating in the simulation."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessId({int(self)})"


class ThreadId(int):
    """Identifier of an application thread (matches its tile id).

    Graphite maps each application thread to exactly one target tile, so
    thread ids share the tile id space.  The distinct type documents
    whether an API is about the *thread* or the *tile*.
    """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadId({int(self)})"
