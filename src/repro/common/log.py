"""Lightweight simulation logging.

Wraps :mod:`logging` with a namespaced logger per subsystem and a single
switch to enable verbose tracing during debugging.  Disabled by default
so hot paths pay only an ``isEnabledFor`` check.
"""

from __future__ import annotations

import logging

_ROOT = "repro"


def get_logger(subsystem: str) -> logging.Logger:
    """Return the logger for a subsystem, e.g. ``memory.coherence``."""
    return logging.getLogger(f"{_ROOT}.{subsystem}")


#: Marker attribute identifying the handler :func:`enable_tracing` owns.
_TRACE_HANDLER_FLAG = "_repro_trace_handler"


def enable_tracing(level: int = logging.DEBUG) -> None:
    """Turn on console tracing for all simulator subsystems.

    Idempotent: repeated calls adjust the level but never stack a
    second stream handler, even when other code (pytest's caplog, an
    application's own logging setup) has already attached handlers of
    its own to the ``repro`` logger.
    """
    logger = logging.getLogger(_ROOT)
    logger.setLevel(level)
    if not any(getattr(h, _TRACE_HANDLER_FLAG, False)
               for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(
            "%(name)s: %(message)s"))
        setattr(handler, _TRACE_HANDLER_FLAG, True)
        logger.addHandler(handler)


def disable_tracing() -> None:
    """Silence simulator logging (the default state)."""
    logging.getLogger(_ROOT).setLevel(logging.WARNING)
