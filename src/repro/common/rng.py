"""Deterministic random-number streams.

A simulation draws randomness in several independent places: host
scheduling jitter, LaxP2P partner selection, workload data generation.
Giving each consumer its own named stream derived from the master seed
keeps runs reproducible and keeps one consumer's draw count from
perturbing another's sequence.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict


class RngStreams:
    """A family of independent :class:`random.Random` streams.

    Streams are created lazily by name; the same ``(seed, name)`` pair
    always yields the same sequence.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def state(self) -> Dict[str, Any]:
        """Snapshot every named stream's exact generator state.

        The snapshot captures each live stream's
        :meth:`random.Random.getstate` tuple, in creation order, so a
        :meth:`restore`-d family continues every sequence at precisely
        the next draw — the property the checkpoint/restore subsystem
        (:mod:`repro.ckpt`) relies on for byte-identical resumption.
        """
        return {
            "seed": self.seed,
            "streams": {name: rng.getstate()
                        for name, rng in self._streams.items()},
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Reinstate a :meth:`state` snapshot.

        Streams not present in the snapshot are discarded; streams in
        the snapshot are recreated (preserving the snapshot's creation
        order) and rewound to their captured position.  Streams later
        requested but absent from the snapshot are derived fresh from
        the restored master seed, exactly as on first use.
        """
        self.seed = state["seed"]
        self._streams.clear()
        for name, rng_state in state["streams"].items():
            rng = random.Random()
            rng.setstate(rng_state)
            self._streams[name] = rng

    def reseed(self, seed: int) -> None:
        """Discard all streams and restart from a new master seed."""
        self.seed = seed
        self._streams.clear()

    def fork(self, name: str) -> "RngStreams":
        """Derive a child family, e.g. one per simulation run in a sweep."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return RngStreams(int.from_bytes(digest[8:16], "big"))
