"""Deterministic random-number streams.

A simulation draws randomness in several independent places: host
scheduling jitter, LaxP2P partner selection, workload data generation.
Giving each consumer its own named stream derived from the master seed
keeps runs reproducible and keeps one consumer's draw count from
perturbing another's sequence.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A family of independent :class:`random.Random` streams.

    Streams are created lazily by name; the same ``(seed, name)`` pair
    always yields the same sequence.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def reseed(self, seed: int) -> None:
        """Discard all streams and restart from a new master seed."""
        self.seed = seed
        self._streams.clear()

    def fork(self, name: str) -> "RngStreams":
        """Derive a child family, e.g. one per simulation run in a sweep."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return RngStreams(int.from_bytes(digest[8:16], "big"))
