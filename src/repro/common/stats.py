"""Statistics primitives used by every model.

Models accumulate raw counts during simulation; the analysis layer
(:mod:`repro.analysis`) turns them into the rows the paper reports.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A streaming histogram tracking count/sum/min/max and moments.

    Sufficient for means, standard deviations and coefficients of
    variation without retaining every sample.  A bounded reservoir of
    decimated samples additionally supports approximate quantiles: the
    histogram keeps every ``stride``-th recorded value and, when the
    reservoir exceeds :data:`MAX_SAMPLES`, drops every other retained
    sample and doubles the stride.  The retained set is a pure function
    of the recorded sequence — no randomness — so distributed runs stay
    deterministic and mergeable.
    """

    __slots__ = ("name", "count", "total", "sq_total", "min", "max",
                 "samples", "_stride", "_pending")

    #: Reservoir bound; decimation halves the reservoir past this.
    MAX_SAMPLES = 512

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.sq_total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []
        self._stride = 1
        self._pending = 0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.sq_total += value * value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self.samples.append(value)
            if len(self.samples) > self.MAX_SAMPLES:
                self.samples = self.samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        var = self.sq_total / self.count - mean * mean
        return max(var, 0.0)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def cov(self) -> float:
        """Coefficient of variation (stddev / mean), 0 if mean is 0."""
        mean = self.mean
        return self.stddev / mean if mean else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the decimated reservoir.

        Linear interpolation between retained samples; exact while
        fewer than :data:`MAX_SAMPLES` values have been recorded.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's accumulation into this one.

        Moments add exactly; the reservoirs concatenate and re-decimate
        to the bound.  Used by the mp backend to aggregate each
        worker's locally recorded distributions at the coordinator.
        """
        self.count += other.count
        self.total += other.total
        self.sq_total += other.sq_total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        self.samples.extend(other.samples)
        self._stride = max(self._stride, other._stride)
        while len(self.samples) > self.MAX_SAMPLES:
            self.samples = self.samples[::2]
            self._stride *= 2

    def state(self) -> Dict[str, object]:
        """Plain-dict snapshot (wire format for distributed merging)."""
        return {
            "count": self.count,
            "total": self.total,
            "sq_total": self.sq_total,
            "min": self.min,
            "max": self.max,
            "samples": list(self.samples),
            "stride": self._stride,
        }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Merge a :meth:`state` snapshot (possibly from another process)."""
        other = Histogram(self.name)
        other.count = int(state["count"])
        other.total = float(state["total"])
        other.sq_total = float(state["sq_total"])
        other.min = state["min"]
        other.max = state["max"]
        other.samples = list(state["samples"])
        other._stride = int(state.get("stride", 1))
        self.merge(other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Histogram({self.name}: n={self.count}, "
                f"mean={self.mean:.3g})")


class TimeSeries:
    """An append-only (time, value) series, e.g. clock-skew samples."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def window_extrema(self, buckets: int) -> List[Tuple[float, float, float]]:
        """Split the series into ``buckets`` intervals of equal time.

        Returns ``(interval_midpoint, min, max)`` triples — the format
        used by the paper's Figure 7 clock-skew plots.
        """
        if not self.times or buckets <= 0:
            return []
        t0, t1 = self.times[0], self.times[-1]
        span = (t1 - t0) or 1.0
        out: List[Tuple[float, float, float]] = []
        lo = [math.inf] * buckets
        hi = [-math.inf] * buckets
        seen = [False] * buckets
        for t, v in zip(self.times, self.values):
            i = min(int((t - t0) / span * buckets), buckets - 1)
            seen[i] = True
            lo[i] = min(lo[i], v)
            hi[i] = max(hi[i], v)
        for i in range(buckets):
            if seen[i]:
                mid = t0 + span * (i + 0.5) / buckets
                out.append((mid, lo[i], hi[i]))
        return out


class StatGroup:
    """A named bag of counters/histograms/series plus child groups.

    Each model owns a group; the simulator stitches them into one tree
    which :mod:`repro.sim.results` snapshots at the end of a run.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.children: Dict[str, "StatGroup"] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = Counter(name)
            self.counters[name] = c
        return c

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = Histogram(name)
            self.histograms[name] = h
        return h

    def timeseries(self, name: str) -> TimeSeries:
        s = self.series.get(name)
        if s is None:
            s = TimeSeries(name)
            self.series[name] = s
        return s

    def child(self, name: str) -> "StatGroup":
        g = self.children.get(name)
        if g is None:
            g = StatGroup(name)
            self.children[name] = g
        return g

    def walk(self, prefix: str = "") -> Iterable[Tuple[str, Counter]]:
        """Yield (dotted-path, counter) for the whole subtree."""
        base = f"{prefix}{self.name}"
        for c in self.counters.values():
            yield f"{base}.{c.name}", c
        for child in self.children.values():
            yield from child.walk(f"{base}.")

    def walk_histograms(self, prefix: str = "") -> Iterable[Tuple[str, Histogram]]:
        """Yield (dotted-path, histogram) for the whole subtree."""
        base = f"{prefix}{self.name}"
        for h in self.histograms.values():
            yield f"{base}.{h.name}", h
        for child in self.children.values():
            yield from child.walk_histograms(f"{base}.")

    def to_dict(self) -> Dict[str, object]:
        """Flatten into a plain dict snapshot (for results objects)."""
        out: Dict[str, object] = {}
        for path, c in self.walk():
            out[path] = c.value
        return out

    def add_flat(self, flat: Dict[str, int]) -> None:
        """Merge a flattened counter snapshot into this tree.

        Keys are dotted paths rooted at this group's name (the format
        :meth:`to_dict` produces); missing children and counters are
        created.  Used by the distributed backend to fold each worker's
        locally accumulated statistics back into the coordinator's tree.
        """
        prefix = f"{self.name}."
        for path, value in flat.items():
            if not path.startswith(prefix):
                raise ValueError(
                    f"counter path {path!r} is not rooted at {self.name!r}")
            *groups, name = path[len(prefix):].split(".")
            node = self
            for part in groups:
                node = node.child(part)
            node.counter(name).add(int(value))

    def histogram_states(self) -> Dict[str, Dict[str, object]]:
        """Flatten every histogram into ``{dotted-path: state}``.

        The histogram counterpart of :meth:`to_dict`, used by mp
        workers to ship locally recorded distributions to the
        coordinator (counters alone cannot carry min/max/quantiles).
        """
        return {path: h.state() for path, h in self.walk_histograms()}

    def merge_histogram_states(self,
                               flat: Dict[str, Dict[str, object]]) -> None:
        """Merge a :meth:`histogram_states` snapshot into this tree."""
        prefix = f"{self.name}."
        for path, state in flat.items():
            if not path.startswith(prefix):
                raise ValueError(
                    f"histogram path {path!r} is not rooted at {self.name!r}")
            *groups, name = path[len(prefix):].split(".")
            node = self
            for part in groups:
                node = node.child(part)
            node.histogram(name).merge_state(state)
