"""Statistics primitives used by every model.

Models accumulate raw counts during simulation; the analysis layer
(:mod:`repro.analysis`) turns them into the rows the paper reports.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A streaming histogram tracking count/sum/min/max and moments.

    Sufficient for means, standard deviations and coefficients of
    variation without retaining every sample.
    """

    __slots__ = ("name", "count", "total", "sq_total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.sq_total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.sq_total += value * value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        var = self.sq_total / self.count - mean * mean
        return max(var, 0.0)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def cov(self) -> float:
        """Coefficient of variation (stddev / mean), 0 if mean is 0."""
        mean = self.mean
        return self.stddev / mean if mean else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Histogram({self.name}: n={self.count}, "
                f"mean={self.mean:.3g})")


class TimeSeries:
    """An append-only (time, value) series, e.g. clock-skew samples."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def window_extrema(self, buckets: int) -> List[Tuple[float, float, float]]:
        """Split the series into ``buckets`` intervals of equal time.

        Returns ``(interval_midpoint, min, max)`` triples — the format
        used by the paper's Figure 7 clock-skew plots.
        """
        if not self.times or buckets <= 0:
            return []
        t0, t1 = self.times[0], self.times[-1]
        span = (t1 - t0) or 1.0
        out: List[Tuple[float, float, float]] = []
        lo = [math.inf] * buckets
        hi = [-math.inf] * buckets
        seen = [False] * buckets
        for t, v in zip(self.times, self.values):
            i = min(int((t - t0) / span * buckets), buckets - 1)
            seen[i] = True
            lo[i] = min(lo[i], v)
            hi[i] = max(hi[i], v)
        for i in range(buckets):
            if seen[i]:
                mid = t0 + span * (i + 0.5) / buckets
                out.append((mid, lo[i], hi[i]))
        return out


class StatGroup:
    """A named bag of counters/histograms/series plus child groups.

    Each model owns a group; the simulator stitches them into one tree
    which :mod:`repro.sim.results` snapshots at the end of a run.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.children: Dict[str, "StatGroup"] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = Counter(name)
            self.counters[name] = c
        return c

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = Histogram(name)
            self.histograms[name] = h
        return h

    def timeseries(self, name: str) -> TimeSeries:
        s = self.series.get(name)
        if s is None:
            s = TimeSeries(name)
            self.series[name] = s
        return s

    def child(self, name: str) -> "StatGroup":
        g = self.children.get(name)
        if g is None:
            g = StatGroup(name)
            self.children[name] = g
        return g

    def walk(self, prefix: str = "") -> Iterable[Tuple[str, Counter]]:
        """Yield (dotted-path, counter) for the whole subtree."""
        base = f"{prefix}{self.name}"
        for c in self.counters.values():
            yield f"{base}.{c.name}", c
        for child in self.children.values():
            yield from child.walk(f"{base}.")

    def to_dict(self) -> Dict[str, object]:
        """Flatten into a plain dict snapshot (for results objects)."""
        out: Dict[str, object] = {}
        for path, c in self.walk():
            out[path] = c.value
        return out

    def add_flat(self, flat: Dict[str, int]) -> None:
        """Merge a flattened counter snapshot into this tree.

        Keys are dotted paths rooted at this group's name (the format
        :meth:`to_dict` produces); missing children and counters are
        created.  Used by the distributed backend to fold each worker's
        locally accumulated statistics back into the coordinator's tree.
        """
        prefix = f"{self.name}."
        for path, value in flat.items():
            if not path.startswith(prefix):
                raise ValueError(
                    f"counter path {path!r} is not rooted at {self.name!r}")
            *groups, name = path[len(prefix):].split(".")
            node = self
            for part in groups:
                node = node.child(part)
            node.counter(name).add(int(value))
