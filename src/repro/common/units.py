"""Unit constants and conversion helpers.

Target time is measured in *cycles* of the target clock (Table 1:
1 GHz, so 1 cycle == 1 ns of target time).  Host time is measured in
*seconds* (floats).  Data sizes are in bytes.
"""

from __future__ import annotations

# --- data sizes -----------------------------------------------------------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# --- time -----------------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3

#: Target clock frequency from Table 1.
DEFAULT_CLOCK_HZ = 1_000_000_000


def cycles_to_seconds(cycles: int, clock_hz: int = DEFAULT_CLOCK_HZ) -> float:
    """Convert a target cycle count into seconds of target time."""
    return cycles / float(clock_hz)


def seconds_to_cycles(seconds: float, clock_hz: int = DEFAULT_CLOCK_HZ) -> int:
    """Convert seconds of target time into (truncated) target cycles."""
    return int(seconds * clock_hz)


def bytes_per_cycle(bandwidth_bytes_per_s: float,
                    clock_hz: int = DEFAULT_CLOCK_HZ) -> float:
    """Convert a bandwidth in bytes/second into bytes/target-cycle."""
    return bandwidth_bytes_per_s / float(clock_hz)


def pretty_bytes(n: int) -> str:
    """Render a byte count with a binary suffix (``32 KB``, ``3 MB``)."""
    if n >= GB and n % GB == 0:
        return f"{n // GB} GB"
    if n >= MB and n % MB == 0:
        return f"{n // MB} MB"
    if n >= KB and n % KB == 0:
        return f"{n // KB} KB"
    return f"{n} B"


def pretty_seconds(s: float) -> str:
    """Render a duration with an appropriate suffix."""
    if s >= 1.0:
        return f"{s:.2f} s"
    if s >= MS:
        return f"{s / MS:.2f} ms"
    if s >= US:
        return f"{s / US:.2f} us"
    return f"{s / NS:.0f} ns"
