"""Core performance model (paper §3.1).

A purely *modeled* component managing the simulated clock local to each
tile.  It follows a producer-consumer design: the front-end (our DBT
substitute) produces instructions and dynamic information (memory
latencies, branch outcomes); the model consumes them and advances the
tile's local clock.  The model is isolated from functional execution, so
alternative core models (e.g. out-of-order) can be swapped in without
touching the functional simulator.
"""

from repro.core.branch import BranchPredictor
from repro.core.factory import CoreModel, create_core_model
from repro.core.clock import TileClock
from repro.core.instruction import (
    BranchInstruction,
    Instruction,
    MemoryInstruction,
    PseudoInstruction,
)
from repro.core.isa import InstructionClass
from repro.core.lsu import LoadQueue, StoreBuffer
from repro.core.ooo_model import OutOfOrderCoreModel
from repro.core.perf_model import CorePerfModel

__all__ = [
    "BranchInstruction",
    "BranchPredictor",
    "CoreModel",
    "CorePerfModel",
    "OutOfOrderCoreModel",
    "create_core_model",
    "Instruction",
    "InstructionClass",
    "LoadQueue",
    "MemoryInstruction",
    "PseudoInstruction",
    "StoreBuffer",
    "TileClock",
]
