"""Branch prediction model.

A classic table of two-bit saturating counters indexed by the low bits
of the branch PC.  The front-end supplies the dynamic outcome (the
"branch path" dynamic information of paper §3.1); the model predicts,
compares, and reports whether the misprediction penalty applies.
"""

from __future__ import annotations

from typing import List

from repro.common.stats import StatGroup

_STRONG_NOT_TAKEN = 0
_WEAK_NOT_TAKEN = 1
_WEAK_TAKEN = 2
_STRONG_TAKEN = 3


class BranchPredictor:
    """Two-bit saturating-counter bimodal predictor."""

    def __init__(self, entries: int, stats: StatGroup) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("predictor entries must be a power of two")
        self._mask = entries - 1
        self._table: List[int] = [_WEAK_NOT_TAKEN] * entries
        self._predicted = stats.counter("branches")
        self._mispredicted = stats.counter("mispredictions")

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict branch at ``pc``; train on ``taken``.

        Returns True when the prediction was wrong (penalty applies).
        """
        index = (pc >> 2) & self._mask
        state = self._table[index]
        prediction = state >= _WEAK_TAKEN
        mispredicted = prediction != taken
        if taken:
            if state < _STRONG_TAKEN:
                self._table[index] = state + 1
        else:
            if state > _STRONG_NOT_TAKEN:
                self._table[index] = state - 1
        self._predicted.add()
        if mispredicted:
            self._mispredicted.add()
        return mispredicted

    @property
    def misprediction_rate(self) -> float:
        total = self._predicted.value
        return self._mispredicted.value / total if total else 0.0
