"""The per-tile local clock.

Under lax synchronization each tile maintains its own simulated clock,
running independently of all other tiles (paper §3.6.1).  The clock only
moves forward: synchronization events *forward* it to the event's
timestamp; events in the local past leave it unchanged.
"""

from __future__ import annotations


class TileClock:
    """Monotonic simulated-cycle counter local to one tile."""

    __slots__ = ("cycles",)

    def __init__(self, start: int = 0) -> None:
        self.cycles = start

    def advance(self, cycles: int) -> int:
        """Add ``cycles`` of local progress; returns the new time."""
        if cycles < 0:
            raise ValueError("clock cannot move backwards")
        self.cycles += cycles
        return self.cycles

    def forward_to(self, time: int) -> bool:
        """Forward the clock to ``time`` if it lies in the local future.

        Returns True if the clock moved.  This implements the lax rule:
        "the clock of the tile is forwarded to the time that the event
        occurred; if the event occurred earlier in simulated time, then
        no updates take place."
        """
        if time > self.cycles:
            self.cycles = time
            return True
        return False

    @property
    def now(self) -> int:
        return self.cycles

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TileClock({self.cycles})"
