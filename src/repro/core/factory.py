"""Core-model factory: the swappable-module point of paper §3.1.

"Because the core performance model is isolated from the functional
portion of the simulator, there is great flexibility in implementing it
to match the target architecture."  Both models consume the same
instruction / pseudo-instruction streams and expose the same interface,
so swapping them changes every downstream clock-derived quantity —
memory and network utilization included — without touching functional
execution.
"""

from __future__ import annotations

from typing import Union

from repro.common.config import CoreConfig
from repro.common.errors import ConfigError
from repro.common.stats import StatGroup
from repro.core.ooo_model import OutOfOrderCoreModel
from repro.core.perf_model import CorePerfModel

CoreModel = Union[CorePerfModel, OutOfOrderCoreModel]


def create_core_model(config: CoreConfig, stats: StatGroup,
                      telemetry=None, tile=None) -> CoreModel:
    """Instantiate the configured core timing model.

    ``telemetry`` is an optional SYNC-category channel for stall
    events; ``tile`` labels them (the core model itself has no notion
    of placement).
    """
    if config.model == "in_order":
        return CorePerfModel(config, stats, telemetry, tile)
    if config.model == "out_of_order":
        return OutOfOrderCoreModel(config, stats, telemetry, tile)
    raise ConfigError(f"unknown core model {config.model!r}")
