"""Dynamic instruction records consumed by the core performance model.

The majority of instructions are produced by the front-end as the
application thread executes; other parts of the system produce
*pseudo-instructions* to update the local clock on unusual events — a
"message receive pseudo-instruction" when the messaging API delivers,
a "spawn pseudo-instruction" when a thread lands on a core (paper §3.1).

Dynamic information not present in the instruction trace — memory
latencies, branch paths — travels alongside the instruction through the
fields below, produced by the back-end and consumed asynchronously.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.isa import InstructionClass


@dataclass
class Instruction:
    """A plain computational instruction with a static cost class."""

    klass: InstructionClass = InstructionClass.GENERIC
    #: Number of identical dynamic instructions this record stands for.
    #: The front-end batches runs of non-trapped instructions, exactly as
    #: direct execution lets uninteresting instructions run natively.
    count: int = 1


@dataclass
class BranchInstruction:
    """A conditional branch plus its dynamic outcome."""

    pc: int
    taken: bool


@dataclass
class MemoryInstruction:
    """A load or store with its modelled round-trip latency.

    ``latency`` is produced by the memory model (it already includes
    network round trips for misses); the core model decides how much of
    it stalls the pipeline (store buffering may hide store latency).
    """

    klass: InstructionClass  # LOAD or STORE
    address: int
    size: int
    latency: int


class PseudoKind(enum.Enum):
    """Kinds of pseudo-instruction injected by the rest of the system."""

    #: Delivered message: forward clock to its arrival time + recv cost.
    MESSAGE_RECEIVE = "message_receive"
    #: Thread spawned on this core: initialise/forward the clock.
    SPAWN = "spawn"
    #: Synchronization event (lock/barrier/join): forward the clock.
    SYNC = "sync"
    #: Explicit cost, e.g. syscall handling overhead.
    COST = "cost"


@dataclass
class PseudoInstruction:
    """Clock-updating event that is not an application instruction."""

    kind: PseudoKind
    #: Simulated time the event occurred (clock forwards to this; no
    #: update if it is in the local past — paper §3.6.1).
    time: int = 0
    #: Additional cycles charged after forwarding.
    cost: int = 0
