"""Instruction classification for the core performance model.

The front-end does not carry real opcodes; it classifies instructions
into cost classes.  Classes not present in the configured cost table
default to one cycle (paper: "instruction costs are all modeled and
configurable").
"""

from __future__ import annotations

import enum
from typing import Mapping


class InstructionClass(enum.Enum):
    """Cost class of a dynamic instruction."""

    GENERIC = "generic"
    IALU = "ialu"
    IMUL = "imul"
    IDIV = "idiv"
    FPU_ADD = "fpu_add"
    FPU_MUL = "fpu_mul"
    FPU_DIV = "fpu_div"
    BRANCH = "branch"
    JMP = "jmp"
    LOAD = "load"
    STORE = "store"


#: Cost charged when a class is missing from the config table.
DEFAULT_COST = 1


def cost_of(klass: InstructionClass, table: Mapping[str, int]) -> int:
    """Look up the configured cycle cost of an instruction class."""
    return table.get(klass.value, DEFAULT_COST)
