"""Load/store unit models: a store buffer and a load queue.

The paper's in-order core has an out-of-order memory system: "store
buffers, load units ... are all modeled and configurable" (§3.1).  The
store buffer lets stores retire without stalling until it fills; the
load queue bounds outstanding loads and supports store-to-load
forwarding from buffered stores.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.common.stats import StatGroup


class StoreBuffer:
    """FIFO of in-flight stores, each occupying a slot until completion.

    A store issued at time ``t`` with memory latency ``l`` holds its slot
    until ``t + l``.  When the buffer is full the pipeline stalls until
    the oldest store drains.
    """

    def __init__(self, entries: int, stats: StatGroup) -> None:
        if entries < 1:
            raise ValueError("store buffer needs at least one entry")
        self.entries = entries
        #: (completion_time, line_address) of each in-flight store.
        self._inflight: Deque[Tuple[int, int]] = deque()
        self._stalls = stats.counter("store_buffer_stall_cycles")
        self._stores = stats.counter("stores_buffered")

    def _drain(self, now: int) -> None:
        while self._inflight and self._inflight[0][0] <= now:
            self._inflight.popleft()

    def issue(self, now: int, address: int, latency: int) -> int:
        """Issue a store; returns the stall in cycles (0 if buffered)."""
        self._drain(now)
        stall = 0
        if len(self._inflight) >= self.entries:
            # Stall until the oldest store completes.
            completion = self._inflight[0][0]
            stall = max(completion - now, 0)
            now += stall
            self._drain(now)
            self._stalls.add(stall)
        self._inflight.append((now + latency, address))
        self._stores.add()
        return stall

    def forwards(self, address: int) -> bool:
        """True when a buffered store can forward data at ``address``."""
        return any(addr == address for _, addr in self._inflight)

    def occupancy(self, now: int) -> int:
        self._drain(now)
        return len(self._inflight)

    def drain_time(self) -> int:
        """Completion time of the youngest in-flight store (0 if empty)."""
        return self._inflight[-1][0] if self._inflight else 0


class LoadQueue:
    """Bounds the number of loads in flight.

    The functional front-end needs each load's value immediately, so the
    in-order model charges the full load latency; the queue adds a
    structural stall when too many loads are outstanding in the same
    window (approximating a limited load unit).
    """

    def __init__(self, entries: int, stats: StatGroup) -> None:
        if entries < 1:
            raise ValueError("load queue needs at least one entry")
        self.entries = entries
        self._inflight: Deque[int] = deque()  # completion times
        self._stalls = stats.counter("load_queue_stall_cycles")
        self._loads = stats.counter("loads_issued")

    def _drain(self, now: int) -> None:
        while self._inflight and self._inflight[0] <= now:
            self._inflight.popleft()

    def issue(self, now: int, latency: int) -> int:
        """Issue a load; returns the structural stall in cycles."""
        self._drain(now)
        stall = 0
        if len(self._inflight) >= self.entries:
            completion = self._inflight[0]
            stall = max(completion - now, 0)
            now += stall
            self._drain(now)
            self._stalls.add(stall)
        self._inflight.append(now + latency)
        self._loads.add()
        return stall
