"""An out-of-order core performance model.

Paper §3.1: "It is also possible to implement core models that differ
drastically from the operation of the functional models — i.e.,
although the simulator is functionally in-order with sequentially
consistent memory, the core performance model can be an out-of-order
core with a relaxed memory model.  Models throughout the remainder of
the system will reflect the new core type, as they are ultimately based
on clocks updated by the core model."

This model demonstrates exactly that swap.  It approximates an OoO
machine with a reorder-buffer window and multi-issue dispatch:

* instructions dispatch ``dispatch_width`` per cycle;
* memory operations occupy a window slot until their (memory-model
  supplied) latency elapses, overlapping with later work instead of
  stalling the pipeline — memory-level parallelism up to the window
  size;
* the pipeline stalls only when the window is full (waiting for the
  oldest entry) — an in-order-retire approximation of ROB pressure;
* branch mispredictions flush: the penalty is charged and the window
  drains (speculative overlap across a mispredicted branch is lost);
* synchronization pseudo-instructions drain the window before the
  clock forwards (a sync event orders everything before it).

The functional simulator remains sequentially consistent; only *time*
changes — which is the paper's point.
"""

from __future__ import annotations

import heapq
from typing import List

from repro.common.config import CoreConfig
from repro.common.stats import StatGroup
from repro.core.branch import BranchPredictor
from repro.core.clock import TileClock
from repro.core.instruction import (
    BranchInstruction,
    Instruction,
    MemoryInstruction,
    PseudoInstruction,
    PseudoKind,
)
from repro.core.isa import InstructionClass, cost_of


class OutOfOrderCoreModel:
    """Window-based OoO timing model (same interface as the in-order)."""

    def __init__(self, config: CoreConfig, stats: StatGroup,
                 telemetry=None, tile=None) -> None:
        self.config = config
        self.clock = TileClock()
        self.stats = stats
        #: SYNC-category telemetry channel for stall events, or ``None``.
        self._tele = telemetry
        self._tile = tile
        self.branch_predictor = BranchPredictor(
            config.branch_predictor_entries, stats.child("branch"))
        self._costs = config.instruction_costs
        self.window_size = config.rob_entries
        self.dispatch_width = max(config.dispatch_width, 1)
        #: Min-heap of completion times of in-flight long-latency ops.
        self._window: List[int] = []
        #: Fractional dispatch accumulator (width > 1).
        self._dispatch_backlog = 0.0
        self._instructions = stats.counter("instructions")
        self._memory_stall = stats.counter("memory_stall_cycles")
        self._branch_stall = stats.counter("branch_stall_cycles")
        self._sync_wait = stats.counter("sync_wait_cycles")
        self._window_stalls = stats.counter("window_stall_cycles")
        self._overlapped = stats.counter("overlapped_latency_cycles")

    # -- internal helpers ---------------------------------------------------

    def _dispatch(self, issue_cycles: float) -> None:
        """Advance the clock by front-end dispatch time."""
        # The backlog intentionally accumulates fractional issue cycles;
        # only whole cycles ever reach the clock below.
        self._dispatch_backlog += (
            issue_cycles / self.dispatch_width)  # check: allow D004 -- fractional backlog
        whole = int(self._dispatch_backlog)
        if whole:
            self.clock.advance(whole)
            self._dispatch_backlog -= whole
        self._retire_completed()

    def _retire_completed(self) -> None:
        now = self.clock.now
        while self._window and self._window[0] <= now:
            heapq.heappop(self._window)

    def _reserve_slot(self) -> None:
        """Stall until the window has room for one more in-flight op."""
        if len(self._window) >= self.window_size:
            oldest = heapq.heappop(self._window)
            if oldest > self.clock.now:
                self._window_stalls.add(oldest - self.clock.now)
                self.clock.forward_to(oldest)
            self._retire_completed()

    def drain(self) -> None:
        """Wait for every in-flight operation to complete."""
        if self._window:
            last = max(self._window)
            if last > self.clock.now:
                self._memory_stall.add(last - self.clock.now)
                self.clock.forward_to(last)
            self._window.clear()

    # -- the core-model interface ----------------------------------------------

    def execute(self, instruction: Instruction) -> None:
        cost = cost_of(instruction.klass, self._costs)
        self._dispatch(cost * instruction.count)
        self._instructions.add(instruction.count)

    def execute_branch(self, branch: BranchInstruction) -> bool:
        mispredicted = self.branch_predictor.predict_and_update(
            branch.pc, branch.taken)
        self._dispatch(cost_of(InstructionClass.BRANCH, self._costs))
        if mispredicted:
            # Flush: lose the overlap and pay the redirect penalty.
            self.drain()
            self.clock.advance(self.config.branch_mispredict_penalty)
            self._branch_stall.add(self.config.branch_mispredict_penalty)
        self._instructions.add()
        return mispredicted

    def execute_memory(self, op: MemoryInstruction) -> int:
        """Memory ops overlap: they occupy a window slot, not the pipe."""
        issue_cost = cost_of(op.klass, self._costs)
        self._dispatch(issue_cost)
        self._reserve_slot()
        before = self.clock.now
        heapq.heappush(self._window, before + op.latency)
        self._overlapped.add(op.latency)
        self._instructions.add()
        return self.clock.now - before + issue_cost

    def execute_pseudo(self, pseudo: PseudoInstruction) -> None:
        if pseudo.kind in (PseudoKind.MESSAGE_RECEIVE, PseudoKind.SYNC,
                           PseudoKind.SPAWN):
            # Synchronization orders everything before it.
            self.drain()
            before = self.clock.now
            self.clock.forward_to(pseudo.time)
            waited = self.clock.now - before
            self._sync_wait.add(waited)
            if waited > 0 and self._tele is not None:
                self._tele.emit("stall", self._tile, before,
                                {"cycles": waited,
                                 "kind": pseudo.kind.value})
        if pseudo.cost:
            self.clock.advance(pseudo.cost)

    def retire_functional(self, count: int = 1) -> None:
        """Unit-cost retirement for fast-forward (:mod:`repro.sample`).

        Identical to the in-order model's — fast-forward progress must
        not depend on which timing model a variant selects, or shared
        prefix snapshots would diverge."""
        self.clock.advance(count)
        self._instructions.add(count)

    # -- accessors ------------------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.clock.now

    @property
    def instruction_count(self) -> int:
        return self._instructions.value
