"""The in-order core performance model.

Consumes dynamic instructions and pseudo-instructions and advances the
tile-local clock (paper §3.1).  The model is configurable through
:class:`repro.common.config.CoreConfig`: per-class instruction costs,
branch predictor geometry and misprediction penalty, store-buffer and
load-queue depths.

The model never performs functional work; it only accounts time.  This
keeps it swappable: a different core model (e.g. out-of-order issue)
could consume the same streams.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.common.config import CoreConfig
from repro.common.stats import StatGroup
from repro.core.branch import BranchPredictor
from repro.core.clock import TileClock
from repro.core.instruction import (
    BranchInstruction,
    Instruction,
    MemoryInstruction,
    PseudoInstruction,
    PseudoKind,
)
from repro.core.isa import InstructionClass, cost_of
from repro.core.lsu import LoadQueue, StoreBuffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import Channel

#: Latency charged when a load hits a buffered store (forwarding).
STORE_FORWARD_LATENCY = 1


class CorePerfModel:
    """Timing model of one in-order core with an OoO memory interface."""

    def __init__(self, config: CoreConfig, stats: StatGroup,
                 telemetry: Optional["Channel"] = None,
                 tile: Optional[int] = None) -> None:
        self.config = config
        self.clock = TileClock()
        self.stats = stats
        #: SYNC-category telemetry channel for stall events, or ``None``.
        self._tele = telemetry
        self._tile = tile
        self.branch_predictor = BranchPredictor(
            config.branch_predictor_entries, stats.child("branch"))
        self.store_buffer = StoreBuffer(
            config.store_buffer_entries, stats.child("lsu"))
        self.load_queue = LoadQueue(
            config.load_queue_entries, stats.child("lsu"))
        self._costs = config.instruction_costs
        self._instructions = stats.counter("instructions")
        self._memory_stall = stats.counter("memory_stall_cycles")
        self._branch_stall = stats.counter("branch_stall_cycles")
        self._sync_wait = stats.counter("sync_wait_cycles")

    # -- instruction consumption -------------------------------------------

    def execute(self, instruction: Instruction) -> None:
        """Retire a batch of computational instructions."""
        cost = cost_of(instruction.klass, self._costs)
        self.clock.advance(cost * instruction.count)
        self._instructions.add(instruction.count)

    def execute_branch(self, branch: BranchInstruction) -> bool:
        """Retire a branch; charge the penalty on a misprediction."""
        cost = cost_of(InstructionClass.BRANCH, self._costs)
        mispredicted = self.branch_predictor.predict_and_update(
            branch.pc, branch.taken)
        if mispredicted:
            cost += self.config.branch_mispredict_penalty
            self._branch_stall.add(self.config.branch_mispredict_penalty)
        self.clock.advance(cost)
        self._instructions.add()
        return mispredicted

    def execute_memory(self, op: MemoryInstruction) -> int:
        """Retire a load or store; returns the cycles the pipeline spent.

        Loads: charged the full round-trip latency (the in-order core
        needs the value), shortened to the forwarding latency when a
        buffered store holds the address; the load queue adds structural
        stalls.  Stores: buffered, so the pipeline only stalls when the
        store buffer is full.
        """
        now = self.clock.now
        issue_cost = cost_of(op.klass, self._costs)
        if op.klass is InstructionClass.LOAD:
            latency = op.latency
            if self.store_buffer.forwards(op.address):
                latency = min(latency, STORE_FORWARD_LATENCY)
            stall = self.load_queue.issue(now, latency)
            total = issue_cost + stall + latency
        elif op.klass is InstructionClass.STORE:
            stall = self.store_buffer.issue(now, op.address, op.latency)
            total = issue_cost + stall
        else:
            raise ValueError(f"not a memory instruction class: {op.klass}")
        self.clock.advance(total)
        self._instructions.add()
        self._memory_stall.add(total - issue_cost)
        return total

    def execute_pseudo(self, pseudo: PseudoInstruction) -> None:
        """Consume a pseudo-instruction from elsewhere in the system."""
        if pseudo.kind in (PseudoKind.MESSAGE_RECEIVE, PseudoKind.SYNC,
                           PseudoKind.SPAWN):
            before = self.clock.now
            self.clock.forward_to(pseudo.time)
            waited = self.clock.now - before
            self._sync_wait.add(waited)
            if waited > 0 and self._tele is not None:
                self._tele.emit("stall", self._tile, before,
                                {"cycles": waited,
                                 "kind": pseudo.kind.value})
        if pseudo.cost:
            self.clock.advance(pseudo.cost)

    def drain(self) -> None:
        """Wait for in-flight memory operations to complete.

        The in-order model already charges load latency synchronously;
        only buffered stores can be outstanding, and they never gate
        the local clock — so this is a no-op, present for interface
        parity with the out-of-order model.
        """

    def retire_functional(self, count: int = 1) -> None:
        """Retire ``count`` instructions at fixed unit cost.

        The fast-forward path (:mod:`repro.sample`): the instruction
        counter and the local clock advance — lax synchronization
        still needs monotone per-tile clocks — but the predictor,
        LSU and stall accounting are untouched.
        """
        self.clock.advance(count)
        self._instructions.add(count)

    # -- accessors -----------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Current local clock in cycles."""
        return self.clock.now

    @property
    def instruction_count(self) -> int:
        return self._instructions.value
