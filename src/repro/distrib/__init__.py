"""Distributed execution: multiprocess backend + parallel sweep pool.

Two independent ways to use more than one OS process:

* ``backend = "mp"`` — one simulation spread over forked workers, one
  per host process of the cluster layout (paper §3.5).  Execution is
  kept globally sequential, so metrics are byte-identical to the
  in-process backend; see :mod:`repro.distrib.coordinator`.
* the sweep pool — independent configurations run concurrently, one
  simulation per process; see :mod:`repro.distrib.pool`.
"""

from repro.distrib.coordinator import DistribSimulator, WorkerCluster
from repro.distrib.errors import (
    DistribError,
    ProgramTransportError,
    WireFormatError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.distrib.pool import parallel_repeat, parallel_sweep, run_jobs
from repro.distrib.wire import (
    WIRE_VERSION,
    PickledProgram,
    WorkloadRef,
    make_program_ref,
)

__all__ = [
    "DistribSimulator",
    "WorkerCluster",
    "DistribError",
    "ProgramTransportError",
    "WireFormatError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "parallel_repeat",
    "parallel_sweep",
    "run_jobs",
    "WIRE_VERSION",
    "PickledProgram",
    "WorkloadRef",
    "make_program_ref",
]
