"""Coordinator: the mp backend's master control process.

The coordinator plays the role Graphite gives the MCP's host process
(paper §2.2): it owns every service needing a globally consistent view
— the scheduler, the memory system, the MCP itself, the network models
and the host cost model — and drives N forked workers, one per entry
of :meth:`~repro.host.cluster.ClusterLayout.shards`.

:class:`DistribSimulator` is a :class:`~repro.sim.simulator.Simulator`
whose tile threads are :class:`RemoteTask` stubs.  When the scheduler
dispatches one, the coordinator sends RUN_QUANTUM to the owning worker
and synchronously services that worker's kernel traffic until
QUANTUM_DONE — so exactly one quantum executes anywhere at a time, and
every piece of shared state is touched in the same order as the
in-process backend.  That is what makes the two backends produce
byte-identical metrics from the same seed; the speed-up story of the
mp backend is the *sweep pool* (:mod:`repro.distrib.pool`), which runs
independent configurations in parallel.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.config import SimulationConfig
from repro.common.ids import ProcessId, ThreadId, TileId
from repro.distrib.errors import (
    DistribError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.distrib.shard import ShardTransport
from repro.distrib.wire import (
    WIRE_VERSION,
    FrameKind,
    HostStatsBatch,
    decode_frame,
    encode_frame,
    make_program_ref,
    program_key,
)
from repro.host.cluster import ClusterLayout
from repro.net.channel import Channel, ChannelClosedError, PipeChannel
from repro.net.handshake import HandshakeError
from repro.net.listener import NetListener
from repro.net.rebalance import create_policy
from repro.host.scheduler import QuantumResult, QuantumStatus, ThreadTask
from repro.sim.simulator import Simulator
from repro.system.mcp import MCP_TILE
from repro.telemetry.aggregate import TelemetryBatch, merge_batch
from repro.telemetry.events import EventCategory
from repro.transport.message import Message, MessageKind
from repro.transport.transport import Transport

#: Pipe poll granularity while waiting on a worker (seconds).
_POLL_TICK = 0.05


class WorkerCluster:
    """Lifecycle, framed I/O and tile ownership for the worker fleet.

    The cluster speaks :class:`~repro.net.channel.Channel` — forked
    children over multiprocessing pipes (``transport="pipe"``) or
    TCP-connected workers (``transport="tcp"``, local self-dialed or
    remote ``repro worker --connect`` dial-ins) — and owns the dynamic
    tile→worker map.  Membership only changes between quanta (the
    coordinator polls the listener from a scheduler hook), and a live
    worker's whole shard can be migrated to another worker via the
    checkpoint blobs of wire v4 (:meth:`migrate_shard`).  Placement is
    host bookkeeping only: every modelled cost reads the simulated
    :class:`~repro.host.cluster.ClusterLayout`, so joins, leaves and
    migrations never perturb simulated metrics.
    """

    def __init__(self, layout: ClusterLayout,
                 config: SimulationConfig,
                 profiler: Optional[Any] = None) -> None:
        self.layout = layout
        self.config = config
        self.timeout = config.distrib.worker_timeout
        self.shutdown_timeout = config.distrib.shutdown_timeout
        #: Coordinator-side host profiler (``--profile``) or ``None``.
        #: Times wire serialization (``mp.wire.encode``/``decode``/
        #: ``send``) and blocked channel waits (``mp.idle.wait``).
        self.profiler = profiler
        #: Optional :class:`~repro.obs.flight.FlightRecorder` whose
        #: wire-frame ring :meth:`send`/:meth:`recv` feed; installed by
        #: the simulator after formation (formation frames are not
        #: recorded — the ring is for steady-state forensics).
        self.flight = None
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            self._ctx = multiprocessing.get_context("spawn")
        self._channels: List[Channel] = []
        #: False once a worker departed (drained + GOODBYE) or died.
        self._active: List[bool] = []
        #: Dynamic tile→worker map, covering *every* tile id; updated
        #: by :meth:`migrate_shard`, read by every routed frame.
        self._owner: Dict[int, int] = {}
        #: Every process this cluster spawned (teardown safety net).
        self._spawned: List[Any] = []
        #: Current interpreter execution mode (:mod:`repro.sample`),
        #: mirrored here so late joiners can be brought up to date.
        self.exec_functional = False
        self.listener: Optional[NetListener] = None
        try:
            if config.distrib.transport == "tcp":
                self._start_tcp(config)
            else:
                self._start_pipes(config)
        except Exception:
            self.shutdown()
            raise

    # -- formation -----------------------------------------------------------

    def _start_pipes(self, config: SimulationConfig) -> None:
        for index, tiles in enumerate(self.layout.shards()):
            parent, child = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_worker_entry, args=(child, index),
                name=f"repro-worker-{index}", daemon=True)
            proc.start()
            child.close()
            self._spawned.append(proc)
            self._channels.append(PipeChannel(parent, proc))
            self._active.append(True)
            for tile in tiles:
                self._owner[int(tile)] = index
            self.send(index, FrameKind.HELLO,
                      (config, [int(t) for t in tiles], index))

    def _start_tcp(self, config: SimulationConfig) -> None:
        self.listener = NetListener(
            config.distrib.listen, role="coordinator",
            wire_version=WIRE_VERSION,
            config_fingerprint=config.content_hash(),
            trace=config.telemetry.trace_id)
        expect = config.distrib.expect_workers
        count = expect if expect > 0 else self.layout.num_processes
        procs_by_pid: Dict[int, Any] = {}
        if expect == 0:
            # Self-contained multi-host shape: fork local workers that
            # dial our own listener, exercising the full TCP path.
            for index in range(count):
                proc = self._ctx.Process(
                    target=_tcp_worker_entry,
                    args=(self.listener.address,),
                    name=f"repro-worker-{index}", daemon=True)
                proc.start()
                self._spawned.append(proc)
                procs_by_pid[proc.pid] = proc
        deadline = time.monotonic() + config.distrib.connect_timeout
        while len(self._channels) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerTimeoutError(
                    f"only {len(self._channels)} of {count} workers "
                    f"dialed {self.listener.address} within "
                    f"{config.distrib.connect_timeout:.0f}s")
            accepted = self.listener.accept(timeout=min(remaining, 1.0))
            if accepted is None:
                continue
            channel, hello = accepted
            channel.proc = procs_by_pid.get(hello.pid)
            self._channels.append(channel)
            self._active.append(True)
        for index in range(count):
            tiles = [t for t in range(self.layout.num_tiles)
                     if t % count == index]
            for tile in tiles:
                self._owner[tile] = index
            self.send(index, FrameKind.HELLO, (config, tiles, index))

    # -- membership ----------------------------------------------------------

    @property
    def num_workers(self) -> int:
        """Total worker slots ever attached (departed ones included)."""
        return len(self._channels)

    def workers(self) -> List[int]:
        """Indices of the workers still attached."""
        return [i for i, alive in enumerate(self._active) if alive]

    def tiles_of(self, worker: int) -> List[int]:
        return sorted(t for t, w in self._owner.items() if w == worker)

    def owner(self, tile: TileId) -> int:
        return self._owner[int(tile)]

    def adopt_ownership(self, owner_map: Dict[int, int]) -> None:
        """Install a checkpointed tile→worker map (resume path)."""
        self._owner = dict(owner_map)

    @property
    def ownership(self) -> Dict[int, int]:
        return dict(self._owner)

    def poll_joins(self) -> List[int]:
        """Accept any pending dial-ins; returns the new worker indices.

        Called from the coordinator's scheduler hook, i.e. strictly
        between quanta — a joiner becomes a registered (initially
        tile-less) worker without ever racing a running quantum.  A
        peer failing the handshake is rejected and skipped; it never
        touches the pickle wire.
        """
        if self.listener is None:
            return []
        joined: List[int] = []
        while True:
            try:
                accepted = self.listener.accept(timeout=0.0)
            except HandshakeError:
                continue  # rejected peer; keep draining the backlog
            if accepted is None:
                return joined
            channel, _hello = accepted
            index = len(self._channels)
            self._channels.append(channel)
            self._active.append(True)
            self.send(index, FrameKind.HELLO, (self.config, [], index))
            if self.exec_functional:
                # The Welcome already advertised the mode, but the
                # frame makes it authoritative on the pickle wire too.
                self.send(index, FrameKind.SET_MODE, True)
            joined.append(index)

    def set_execution_mode(self, functional: bool) -> None:
        """Broadcast the execution mode to every worker (wire v6).

        Called by the coordinator strictly between quanta (the sample
        controller is a periodic hook), when every worker is parked on
        its control pipe — so the flag lands before any worker runs
        another quantum.  Also remembered for membership: later
        dial-ins get a SET_MODE right after HELLO, and the handshake
        Welcome advertises the current mode.
        """
        self.exec_functional = bool(functional)
        if self.listener is not None:
            self.listener.mode = ("functional" if functional
                                  else "detailed")
        for worker in self.workers():
            self.send(worker, FrameKind.SET_MODE, bool(functional))

    def migrate_shard(self, src: int, dst: int) -> List[int]:
        """Move every tile owned by ``src`` into ``dst``, live.

        The coordinated-checkpoint machinery of wire v4 does the heavy
        lifting: ``src`` snapshots its shard (kernel proxy, inbound
        queues, interpreters with their replay logs) into an opaque
        blob, ``dst`` ADOPTs it — merging the migrated tiles into its
        own shard — and the ownership map is rewired.  Runs strictly
        between quanta, so the blob is consistent by construction.
        """
        tiles = self.tiles_of(src)
        if not tiles or src == dst:
            return []
        self.send(src, FrameKind.CHECKPOINT, None)
        kind, payload = self.recv(src)
        if kind is FrameKind.ERROR:
            _raise_remote(src, payload)
        if kind is not FrameKind.CKPT_ACK:
            raise DistribError(
                f"worker {src}: expected CKPT_ACK, got {kind.value}")
        self.send(dst, FrameKind.ADOPT, payload.blob)
        kind, payload = self.recv(dst)
        if kind is FrameKind.ERROR:
            _raise_remote(dst, payload)
        if kind is not FrameKind.CKPT_ACK:
            raise DistribError(
                f"worker {dst}: expected CKPT_ACK after ADOPT, got "
                f"{kind.value}")
        # The source sheds its (now stale) shard: its old kernel would
        # otherwise keep double-reporting the moved tiles' stats, and a
        # shard migrated back in later would collide with the leftover
        # queue entries.  A departing source is GOODBYEd right after,
        # which makes the release a harmless no-op.
        self.send(src, FrameKind.RELEASE, None)
        kind, payload = self.recv(src)
        if kind is FrameKind.ERROR:
            _raise_remote(src, payload)
        if kind is not FrameKind.CKPT_ACK:
            raise DistribError(
                f"worker {src}: expected CKPT_ACK after RELEASE, got "
                f"{kind.value}")
        for tile in tiles:
            self._owner[tile] = dst
        return tiles

    def depart(self, worker: int) -> None:
        """Release a drained worker: GOODBYE, detach, reap."""
        try:
            self.send(worker, FrameKind.GOODBYE, None)
        except WorkerCrashError:
            pass
        self._active[worker] = False
        channel = self._channels[worker]
        proc = channel.proc
        if proc is not None:
            proc.join(timeout=self.shutdown_timeout)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        channel.close()

    # -- framed I/O ----------------------------------------------------------

    def send(self, worker: int, kind: FrameKind, payload: Any) -> None:
        prof = self.profiler
        if prof is not None:
            prof.enter("mp.wire.encode")
            try:
                blob = encode_frame(kind, payload)
            finally:
                prof.exit()
        else:
            blob = encode_frame(kind, payload)
        channel = self._channels[worker]
        if self.flight is not None:
            self.flight.note_frame("send", f"worker{worker}",
                                   kind.value, len(blob))
        try:
            if prof is not None:
                prof.enter("mp.wire.send")
                try:
                    channel.send_bytes(blob)
                finally:
                    prof.exit()
            else:
                channel.send_bytes(blob)
        except ChannelClosedError as exc:
            raise WorkerCrashError(
                f"worker {worker} ({channel.describe()}) closed while "
                f"sending {kind.value}: {exc}") from exc

    def recv(self, worker: int) -> Tuple[FrameKind, Any]:
        """Receive one frame, bounding the wait by the worker timeout.

        A dead worker is distinguished from a slow one: liveness is
        re-checked every poll tick, and a crash surfaces as
        :class:`WorkerCrashError` (with exit code, when the worker is
        a local process) rather than a hang.
        """
        channel = self._channels[worker]
        prof = self.profiler
        wait_start = time.perf_counter_ns() if prof is not None else 0
        deadline = time.monotonic() + self.timeout
        while True:
            if channel.poll(_POLL_TICK):
                try:
                    blob = channel.recv_bytes()
                except ChannelClosedError as exc:
                    raise WorkerCrashError(
                        f"worker {worker} ({channel.describe()}) closed "
                        f"its channel (exit code {channel.exitcode()})"
                    ) from exc
                if prof is not None:
                    prof.add_ns("mp.idle.wait",
                                time.perf_counter_ns() - wait_start)
                    prof.enter("mp.wire.decode")
                    try:
                        frame = decode_frame(blob)
                    finally:
                        prof.exit()
                else:
                    frame = decode_frame(blob)
                if self.flight is not None:
                    self.flight.note_frame("recv", f"worker{worker}",
                                           frame[0].value, len(blob))
                return frame
            if not channel.alive():
                # One last poll: a frame may have raced with death.
                if channel.poll(0):
                    continue
                raise WorkerCrashError(
                    f"worker {worker} ({channel.describe()}) died "
                    f"(exit code {channel.exitcode()})")
            if time.monotonic() > deadline:
                raise WorkerTimeoutError(
                    f"worker {worker} sent nothing for "
                    f"{self.timeout:.0f}s")

    # -- frame helpers -------------------------------------------------------

    def deliver(self, message: Message) -> None:
        self.send(self.owner(message.dst), FrameKind.DELIVER, message)

    def notify_wake(self, tile: TileId, timestamp: int) -> None:
        self.send(self.owner(tile), FrameKind.NOTIFY_WAKE,
                  (int(tile), timestamp))

    def spawn(self, tile: TileId, ref: Any, args: tuple,
              start_clock: int, code_base: int) -> None:
        self.send(self.owner(tile), FrameKind.SPAWN,
                  (int(tile), ref, args, start_clock, code_base))

    def collect_stats(self) -> List[Dict[str, int]]:
        """Fetch each attached worker's flattened local statistics."""
        out = []
        for worker in self.workers():
            self.send(worker, FrameKind.COLLECT_STATS, None)
            kind, payload = self.recv(worker)
            if kind is FrameKind.ERROR:
                _raise_remote(worker, payload)
            if kind is not FrameKind.STATS:
                raise DistribError(
                    f"worker {worker}: expected STATS, got {kind.value}")
            out.append(payload)
        return out

    def collect_telemetry(self) -> List[TelemetryBatch]:
        """Final telemetry drain: each worker's events + histograms."""
        out = []
        for worker in self.workers():
            self.send(worker, FrameKind.COLLECT_TELEMETRY, None)
            kind, payload = self.recv(worker)
            if kind is FrameKind.ERROR:
                _raise_remote(worker, payload)
            if kind is not FrameKind.TELEMETRY:
                raise DistribError(
                    f"worker {worker}: expected TELEMETRY, got "
                    f"{kind.value}")
            out.append(payload)
        return out

    def collect_host_stats(self) -> List[HostStatsBatch]:
        """Fetch each worker's host-profiler scope export (wire v3)."""
        out = []
        for worker in self.workers():
            self.send(worker, FrameKind.COLLECT_HOST_STATS, None)
            kind, payload = self.recv(worker)
            if kind is FrameKind.ERROR:
                _raise_remote(worker, payload)
            if kind is not FrameKind.HOST_STATS:
                raise DistribError(
                    f"worker {worker}: expected HOST_STATS, got "
                    f"{kind.value}")
            out.append(payload)
        return out

    def quantum_busy_ns(self) -> Dict[int, int]:
        """Cumulative per-worker ``quantum.run`` self-time (rebalance)."""
        busy = {}
        for batch in self.collect_host_stats():
            scope = batch.scopes.get("quantum.run", {})
            busy[batch.worker] = int(scope.get("self_ns", 0))
        return busy

    # -- teardown ------------------------------------------------------------

    @property
    def _procs(self) -> List[Any]:
        """Local process handles by worker index (None for remotes)."""
        return [channel.proc for channel in self._channels]

    def shutdown(self) -> None:
        """Stop all workers: ask nicely, then terminate stragglers."""
        for worker, channel in enumerate(self._channels):
            if not self._active[worker]:
                continue
            try:
                channel.send_bytes(
                    encode_frame(FrameKind.SHUTDOWN, None))
            except Exception:
                pass
        deadline = time.monotonic() + self.shutdown_timeout
        for proc in self._spawned:
            proc.join(timeout=max(deadline - time.monotonic(), 0.1))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for channel in self._channels:
            try:
                channel.close()
            except Exception:
                pass
        if self.listener is not None:
            self.listener.close()
            self.listener = None

    def __enter__(self) -> "WorkerCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _worker_entry(conn, index: int) -> None:  # pragma: no cover - child
    from repro.distrib.worker import worker_main
    worker_main(conn, index)


def _tcp_worker_entry(address: str) -> None:  # pragma: no cover - child
    from repro.distrib.worker import tcp_worker_main
    tcp_worker_main(address)


def _raise_remote(worker: int, payload: tuple) -> None:
    """Re-raise a worker-reported failure with its original type."""
    remote_tb, blob = payload
    if blob is not None:
        try:
            import pickle
            exc = pickle.loads(blob)
        except Exception:
            exc = None
        if isinstance(exc, BaseException):
            if hasattr(exc, "add_note"):
                exc.add_note(f"(raised in worker {worker})\n"
                             f"--- worker traceback ---\n{remote_tb}")
            raise exc
    raise WorkerCrashError(f"worker {worker} failed", remote_tb)


class _CoreView:
    """Coordinator-side snapshot of a remote interpreter's core state."""

    __slots__ = ("cycles", "instruction_count")

    def __init__(self, cycles: int) -> None:
        self.cycles = cycles
        self.instruction_count = 0


class RemoteTask(ThreadTask):
    """Scheduler stub for an interpreter living in a worker.

    Caches the pieces of interpreter state the scheduler and sync
    models read between quanta (`cycles`, instruction counts); the
    caches are refreshed from every QUANTUM_DONE frame and advanced by
    wake notifications exactly as ``Clock.forward_to`` would.
    """

    def __init__(self, sim: "DistribSimulator", tile: TileId,
                 start_clock: int) -> None:
        self.tile = tile
        self.start_clock = start_clock
        self.core = _CoreView(start_clock)
        self.result: Any = None
        self._sim = sim

    @property
    def cycles(self) -> int:
        return self.core.cycles

    def notify_wake(self, timestamp: int) -> None:
        if timestamp > self.core.cycles:
            self.core.cycles = timestamp
        self._sim.cluster.notify_wake(self.tile, timestamp)

    def run(self, budget_instructions: int,
            cycle_limit: Optional[int] = None) -> QuantumResult:
        return self._sim.service_quantum(self, budget_instructions,
                                         cycle_limit)


class DistribSimulator(Simulator):
    """Simulator whose tile threads execute in forked worker processes."""

    def __init__(self, config: SimulationConfig) -> None:
        super().__init__(config)
        self._cluster: Optional[WorkerCluster] = None
        #: Shard blobs a checkpoint loader stashes for ``resume_run``.
        self._restore_shards: Dict[int, bytes] = {}
        #: Tile ownership at snapshot time; rides the coordinator
        #: snapshot so a checkpoint taken after a migration resumes
        #: with the migrated placement, not the initial striping.
        self._owner_at_ckpt: Dict[int, int] = {}
        #: True once the scripted drain (``--drain-turn``) has fired.
        self._drained = False
        self._rebalance = create_policy(config)
        self._watchdog = None
        if config.distrib.straggler_fraction > 0:
            from repro.obs.watchdog import StragglerWatchdog
            self._watchdog = StragglerWatchdog(
                self.telemetry.channel(EventCategory.OBS)
                if self.telemetry is not None else None,
                config.distrib.straggler_fraction)
        if (config.distrib.backend == "mp"
                and (config.distrib.transport == "tcp"
                     or config.distrib.migration_capable()
                     or config.distrib.needs_worker_busy_signal())):
            # Membership and migration act strictly between quanta:
            # the hook polls for dial-ins, fires the scripted drain,
            # and evaluates the rebalance policy and the straggler
            # watchdog.
            self.scheduler.add_periodic_hook(self._net_hook, 1)
        self._build_handler_tables()

    def _build_handler_tables(self) -> None:
        """(Re)create the kernel dispatch tables.

        Kept out of the pickled state — the lambdas they hold cannot
        cross a snapshot — and rebuilt on ``__setstate__``.
        """
        self._rpc_handlers: Dict[str, Callable] = {
            "memory_load": self._rpc_memory_load,
            "memory_store": self._rpc_memory_store,
            "memory_fetch": self._rpc_memory_fetch,
            "fabric_send": self._rpc_fabric_send,
            "fabric_transfer": self._rpc_fabric_transfer,
            "malloc": lambda size, align: self.allocator.malloc(size,
                                                                align),
            "free": lambda address: self.allocator.free(address),
            "futex_wait": lambda a, t: self.mcp.futex.wait(a, TileId(t)),
            "futex_wake": lambda a, n, c: self.mcp.futex.wake(a, n, c),
            "barrier_arrive": lambda a, n, t, c: self.mcp.barrier_arrive(
                a, n, TileId(t), c),
            "barrier_is_waiting": lambda a, t: self.mcp.barrier_is_waiting(
                a, TileId(t)),
            "try_join": lambda t, g: self.mcp.threads.try_join(
                TileId(t), TileId(g)),
            "final_clock": lambda g: self.mcp.threads.final_clock(
                TileId(g)),
            "syscall": lambda name, args: self.mcp.syscalls.execute(
                name, args),
            "spawn_thread": self._rpc_spawn_thread,
        }
        self._cast_handlers: Dict[str, Callable] = {
            "charge": self._cast_charge,
            "thread_finished": lambda t, c: self.thread_finished(
                TileId(t), c),
            "wake_scheduler": lambda t: self.wake_scheduler(TileId(t)),
        }

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_cluster"] = None
        state["_restore_shards"] = {}
        state.pop("_rpc_handlers", None)
        state.pop("_cast_handlers", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._build_handler_tables()

    @property
    def cluster(self) -> WorkerCluster:
        assert self._cluster is not None, "cluster not running"
        return self._cluster

    def _make_transport(self) -> Transport:
        return ShardTransport(self.layout, self.stats.child("transport"))

    # -- execution mode (repro.sample, wire v6) ------------------------------

    def set_execution_mode(self, mode: str) -> None:
        """Flip the mode on the coordinator's models *and* the workers.

        The coordinator owns every timing model (memory system,
        network fabric, host cost), so the base-class flip already
        covers them in the mp backend; what it cannot reach is the
        interpreter dispatch in the worker processes.  A SET_MODE
        broadcast closes that gap — sent between quanta, like every
        mode switch, so both sides agree before the next quantum.
        """
        before = self.exec_functional
        super().set_execution_mode(mode)
        # getattr: the ``ff_until`` flip happens inside the base-class
        # constructor, before this subclass sets ``_cluster``.
        cluster = getattr(self, "_cluster", None)
        if self.exec_functional != before and cluster is not None:
            cluster.set_execution_mode(self.exec_functional)

    # -- lifecycle -----------------------------------------------------------

    def run(self, main_program: Any, args: tuple = ()):
        if self.profiler is not None:
            # Open the wall-time bracket before the fork so cluster
            # start-up (the paper's process start-up cost, for real)
            # counts toward host wall time.
            self.profiler.start_run()
        self._cluster = WorkerCluster(self.layout, self.config,
                                      profiler=self.profiler)
        self._cluster.flight = getattr(self, "flight", None)
        self.transport.attach(self._cluster)
        tele_worker = (self.telemetry.channel(EventCategory.WORKER)
                       if self.telemetry is not None else None)
        if tele_worker is not None:
            for index in self._cluster.workers():
                tele_worker.emit(
                    "worker_start", None, 0,
                    {"worker": index,
                     "tiles": len(self._cluster.tiles_of(index))})
        if self.exec_functional:
            # The initial fast-forward flip (``sample.ff_until``)
            # happened in ``__init__``, before any worker existed;
            # replay it now the cluster is up.
            self._cluster.set_execution_mode(True)
        try:
            return super().run(main_program, args)
        finally:
            self._cluster.shutdown()
            self.transport.attach(None)
            self._cluster = None

    def resume_run(self):
        """Continue a restored distributed simulation to completion.

        Starts a fresh worker cluster (HELLO as usual), then ships
        each worker its shard blob in a RESTORE frame so it adopts the
        checkpointed kernel and interpreters before the first quantum.
        """
        from repro.common.errors import CheckpointError
        if not self._restore_shards:
            raise CheckpointError(
                "no shard blobs to restore; load the checkpoint via "
                "repro.ckpt.recovery.load_checkpoint")
        self._cluster = WorkerCluster(self.layout, self.config)
        self._cluster.flight = getattr(self, "flight", None)
        self.transport.attach(self._cluster)
        try:
            if self._owner_at_ckpt:
                # The checkpoint was taken under a migrated placement;
                # shards must land where the blobs say the tiles live.
                highest = max(self._owner_at_ckpt.values())
                if highest >= self._cluster.num_workers:
                    raise CheckpointError(
                        f"checkpoint placement references worker "
                        f"{highest} but only "
                        f"{self._cluster.num_workers} workers "
                        f"attached; resume with at least "
                        f"{highest + 1} workers")
                self._cluster.adopt_ownership(self._owner_at_ckpt)
            restored = []
            for worker in self._cluster.workers():
                blob = self._restore_shards.get(worker)
                if blob is None:
                    if self._cluster.tiles_of(worker):
                        raise CheckpointError(
                            f"checkpoint has no shard for worker "
                            f"{worker}")
                    continue  # fully drained before the snapshot
                self._cluster.send(worker, FrameKind.RESTORE, blob)
                restored.append(worker)
            for worker in restored:
                kind, payload = self._cluster.recv(worker)
                if kind is FrameKind.ERROR:
                    _raise_remote(worker, payload)
                if kind is not FrameKind.CKPT_ACK:
                    raise DistribError(
                        f"worker {worker}: expected CKPT_ACK after "
                        f"RESTORE, got {kind.value}")
            self._restore_shards = {}
            if self.exec_functional:
                # A checkpoint taken mid-fast-forward: the shard
                # kernels pickled the flag too, but the replay also
                # updates the membership listener for late joiners.
                self._cluster.set_execution_mode(True)
            return super().resume_run()
        finally:
            self._cluster.shutdown()
            self.transport.attach(None)
            self._cluster = None

    # -- membership & migration ----------------------------------------------

    def _net_channel(self):
        if self.telemetry is None:
            return None
        return self.telemetry.channel(EventCategory.NET)

    def _net_hook(self, scheduler) -> None:
        """Between-quanta membership tick.

        Fires after every scheduler turn — the one point where no
        quantum is in flight anywhere — and performs the three
        membership actions in a fixed order: accept pending dial-ins,
        run the scripted drain, evaluate the rebalance policy.  All
        three move host placement only, so the hook cannot change
        simulated metrics.
        """
        cluster = self._cluster
        if cluster is None:
            return
        channel = self._net_channel()
        for index in cluster.poll_joins():
            if channel is not None:
                channel.emit(
                    "worker.joined", None, 0,
                    {"worker": index,
                     "peer": cluster._channels[index].describe()})
        distrib = self.config.distrib
        turn = scheduler.turns
        if (distrib.drain_turn and not self._drained
                and turn >= distrib.drain_turn):
            self._drained = True
            self._scripted_drain(cluster, channel)
        watchdog = getattr(self, "_watchdog", None)
        if ((self._rebalance is not None or watchdog is not None)
                and turn % distrib.rebalance_every == 0):
            # One host-stats sweep feeds both consumers of the
            # per-worker busy signal.
            busy = cluster.quantum_busy_ns()
            if watchdog is not None:
                watchdog.observe(busy, turn=turn)
            if self._rebalance is not None:
                self._policy_drain(cluster, channel, busy)

    def _scripted_drain(self, cluster: WorkerCluster, channel) -> None:
        """Deterministic drain (``--drain-turn``): one worker's shard
        moves and the worker departs — the migration path exercised
        without depending on host timing."""
        active = cluster.workers()
        src = self.config.distrib.drain_worker
        if src < 0:
            loaded = [w for w in active if cluster.tiles_of(w)]
            if not loaded:
                return
            src = max(loaded)
        destinations = [w for w in active if w != src]
        if src not in active or not destinations:
            return
        self._migrate(cluster, channel, src, min(destinations),
                      depart=True)

    def _policy_drain(self, cluster: WorkerCluster, channel,
                      busy: Dict[int, int]) -> None:
        active = cluster.workers()
        loaded = [w for w in active if cluster.tiles_of(w)]
        idle = [w for w in active if not cluster.tiles_of(w)]
        decision = self._rebalance.observe(busy, loaded, idle)
        if decision is not None:
            self._migrate(cluster, channel, decision[0], decision[1],
                          depart=False)

    def _migrate(self, cluster: WorkerCluster, channel, src: int,
                 dst: int, depart: bool) -> None:
        tiles = cluster.migrate_shard(src, dst)
        if not tiles:
            return
        if channel is not None:
            channel.emit("worker.migrated", None, 0,
                         {"src": src, "dst": dst, "tiles": len(tiles)})
        if depart:
            cluster.depart(src)
            if channel is not None:
                channel.emit("worker.left", None, 0, {"worker": src})

    # -- checkpointing -------------------------------------------------------

    def _checkpoint_blobs(self) -> Dict[str, bytes]:
        """Coordinated snapshot: barrier every worker, then self.

        The periodic hook fires between quanta, when every worker sits
        idle in its frame loop — so CHECKPOINT can fan out to all
        workers at once and each shard snapshot is consistent with the
        coordinator's shared state by construction.
        """
        from repro.ckpt.snapshot import snapshot_bytes
        cluster = self.cluster
        active = cluster.workers()
        for worker in active:
            cluster.send(worker, FrameKind.CHECKPOINT, None)
        blobs: Dict[str, bytes] = {}
        for worker in active:
            kind, payload = cluster.recv(worker)
            if kind is FrameKind.ERROR:
                _raise_remote(worker, payload)
            if kind is not FrameKind.CKPT_ACK:
                raise DistribError(
                    f"worker {worker}: expected CKPT_ACK, got "
                    f"{kind.value}")
            blobs[f"shard{payload.worker}"] = payload.blob
        # The coordinator snapshot carries the live tile→worker map so
        # a post-migration checkpoint resumes with the same placement.
        self._owner_at_ckpt = cluster.ownership
        blobs["coordinator"] = snapshot_bytes(self)
        return blobs

    # -- spawning ------------------------------------------------------------

    def spawn_thread(self, program: Any, args: tuple,
                     parent_tile: Optional[TileId],
                     parent_clock: int) -> ThreadId:
        """Spawn protocol, distributed: the interpreter is built in the
        owning worker from a shipped program reference.

        Mirrors the in-process sequence step for step (same MCP
        bookkeeping, same LCP hops, same transfer and host charge, and
        the code region allocated at the same point in global order) so
        all modelled costs land identically.
        """
        ref = make_program_ref(program)
        tile = self.mcp.threads.allocate_tile()
        self.mcp.threads.register_spawn(tile)
        process = self.layout.process_of_tile(tile)
        lcp = self.lcps[ProcessId(int(process))]
        if not lcp.initialized:
            lcp.initialize_process()
        lcp.handle_spawn(tile)
        self.fabric.transfer(MCP_TILE, tile, MessageKind.SYSTEM, 64,
                             parent_clock)
        self.charge(self.config.host.thread_spawn_cost)
        code_base = self._code_base_for(program_key(ref))
        self.cluster.spawn(tile, ref, args, parent_clock, code_base)
        task = RemoteTask(self, tile, parent_clock)
        self.interpreters[tile] = task
        self.scheduler.add_thread(
            task, start_host_time=self.scheduler.current_host_time())
        return ThreadId(int(tile))

    # -- the quantum service loop --------------------------------------------

    def service_quantum(self, task: RemoteTask, budget: int,
                        cycle_limit: Optional[int]) -> QuantumResult:
        """Run one quantum remotely, servicing kernel traffic inline.

        The worker owning ``task.tile`` becomes the (single) active
        worker; its KERNEL_CALL/KERNEL_CAST frames are applied to the
        shared state here, in arrival order, until QUANTUM_DONE.
        """
        worker = self.cluster.owner(task.tile)
        self.cluster.send(worker, FrameKind.RUN_QUANTUM,
                          (int(task.tile), budget, cycle_limit))
        while True:
            kind, payload = self.cluster.recv(worker)
            if kind is FrameKind.QUANTUM_DONE:
                status, instructions, cycles, icount, outcome = payload
                task.core.cycles = cycles
                task.core.instruction_count = icount
                if QuantumStatus(status) is QuantumStatus.DONE:
                    task.result = outcome
                return QuantumResult(QuantumStatus(status), instructions)
            if kind is FrameKind.KERNEL_CALL:
                method, args = payload
                reply = self._rpc_handlers[method](*args)
                self.cluster.send(worker, FrameKind.KERNEL_REPLY, reply)
            elif kind is FrameKind.KERNEL_CAST:
                method, args = payload
                self._cast_handlers[method](*args)
            elif kind is FrameKind.TELEMETRY:
                merge_batch(self.telemetry, self.stats, payload)
            elif kind is FrameKind.ERROR:
                _raise_remote(worker, payload)
            else:
                raise DistribError(
                    f"unexpected frame {kind.value} from worker "
                    f"{worker} during a quantum")

    # -- RPC handlers --------------------------------------------------------

    def _rpc_memory_load(self, tile: int, address: int, size: int,
                         timestamp: int) -> tuple:
        return self.controllers[tile].load(address, size, timestamp)

    def _rpc_memory_store(self, tile: int, address: int, data: bytes,
                          timestamp: int) -> int:
        return self.controllers[tile].store(address, data, timestamp)

    def _rpc_memory_fetch(self, tile: int, pc: int,
                          timestamp: int) -> int:
        return self.controllers[tile].fetch(pc, timestamp)

    def _rpc_fabric_send(self, src: int, dst: int, kind: str,
                         payload: Any, size_bytes: int, timestamp: int,
                         tag: Optional[int]) -> None:
        self.fabric.send(TileId(src), TileId(dst), MessageKind(kind),
                         payload, size_bytes, timestamp, tag)

    def _rpc_fabric_transfer(self, src: int, dst: int, kind: str,
                             size_bytes: int, timestamp: int) -> int:
        return self.fabric.transfer(TileId(src), TileId(dst),
                                    MessageKind(kind), size_bytes,
                                    timestamp)

    def _rpc_spawn_thread(self, ref: Any, args: tuple, parent_tile: int,
                          parent_clock: int) -> int:
        return int(self.spawn_thread(ref, args, TileId(parent_tile),
                                     parent_clock))

    # -- cast handlers -------------------------------------------------------

    def _cast_charge(self, token: tuple) -> None:
        """Evaluate a deferred cost token, consuming jitter RNG here —
        in cast-arrival order, which equals in-process call order."""
        kind, *rest = token
        if kind == "instructions":
            cost = self.cost_model.instructions(rest[0])
        elif kind == "model_trap":
            cost = self.cost_model.model_trap()
        elif kind == "memory_access":
            cost = self.cost_model.memory_access()
        else:
            raise DistribError(f"unknown cost token {token!r}")
        self.scheduler.charge(cost)

    # -- results -------------------------------------------------------------

    def _before_results(self) -> None:
        """Fold every worker's state back into the coordinator.

        Telemetry first (the drained events and histogram states),
        then the flat counter trees; the bus closes — rendering file
        sinks from the fully merged stream — right after this hook.
        """
        for batch in self.cluster.collect_telemetry():
            merge_batch(self.telemetry, self.stats, batch)
        if self.telemetry is not None:
            channel = self.telemetry.channel(EventCategory.WORKER)
            if channel is not None:
                for index in self.cluster.workers():
                    channel.emit("worker_stop", None, 0,
                                 {"worker": index})
        for flat in self.cluster.collect_stats():
            self.stats.add_flat(flat)
        if self.profiler is not None:
            self._worker_host_scopes = {
                batch.worker: batch.scopes
                for batch in self.cluster.collect_host_stats()}
