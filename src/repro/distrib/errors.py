"""Exception hierarchy of the distributed-execution backend.

All distribution failures derive from :class:`DistribError` (itself a
:class:`~repro.common.errors.SimulationError`), so callers can treat
"the cluster broke" separately from "the simulated program faulted":
target faults raised inside a worker are re-raised in the coordinator
with their original type, while infrastructure failures (crashed or
hung workers, protocol mismatches) surface as the classes below.
"""

from __future__ import annotations

from repro.common.errors import SimulationError


class DistribError(SimulationError):
    """Base class for distributed-backend failures."""


class WireFormatError(DistribError):
    """A frame could not be encoded/decoded or had a bad version."""


class ProgramTransportError(DistribError):
    """A target program or its arguments could not cross processes.

    The mp backend ships thread programs to their owning worker by
    pickling; module-level functions travel by reference, but closures
    and lambdas cannot.  Use a module-level worker function (as the
    bundled workloads do) or a :class:`repro.distrib.wire.WorkloadRef`.
    """


class WorkerCrashError(DistribError):
    """A worker process died or raised outside the simulated program.

    ``remote_traceback`` carries the worker's formatted traceback so
    the failure is debuggable from the coordinator process.
    """

    def __init__(self, message: str,
                 remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback

    def __str__(self) -> str:
        base = super().__str__()
        if self.remote_traceback:
            return (f"{base}\n--- worker traceback ---\n"
                    f"{self.remote_traceback}")
        return base


class WorkerTimeoutError(DistribError):
    """A worker sent no frame within the configured timeout."""


class JobRetryExhaustedError(DistribError):
    """A sweep job kept landing on dying workers and ran out of retries.

    Raised by :class:`repro.distrib.pool.SweepPool` when one job has
    been requeued from dead workers more than the retry budget allows;
    ``job_index`` and ``attempts`` identify the offender.
    """

    def __init__(self, job_index: int, attempts: int) -> None:
        super().__init__(
            f"sweep job {job_index} lost to dying workers "
            f"{attempts} times; retry budget exhausted")
        self.job_index = job_index
        self.attempts = attempts
