"""Worker pool for running independent simulations in parallel.

Experiment sweeps (Table 3's configuration grids, repeat-run CoV
protocols) are embarrassingly parallel: every configuration is a fully
independent simulation.  This pool fans such jobs out across OS
processes, one full simulation per job, and is where the mp backend's
wall-clock win comes from on multi-core hosts — single-simulation mp
execution is kept globally sequential for reproducibility (see
:mod:`repro.distrib.coordinator`).

Each pool child runs its jobs with the in-process backend regardless
of the job config's ``distrib.backend``: one process per simulation is
already the right grain, and nesting worker clusters inside pool
children would oversubscribe the host.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import SimulationConfig
from repro.distrib.errors import (
    JobRetryExhaustedError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.distrib.wire import make_program_ref
from repro.sim.results import SimulationResult

#: One sweep job: (config, program reference, program args).
Job = Tuple[SimulationConfig, Any, tuple]

#: Result-queue poll granularity (seconds).
_POLL_TICK = 0.1


def _effective_workers(workers: int, num_jobs: int) -> int:
    """Children the pool actually forks: never more than there are
    jobs (surplus children would start, find the queue drained and
    exit — pure fork cost), never fewer than one."""
    return max(1, min(workers, num_jobs))


def _pool_child(task_queue, result_queue,
                marker) -> None:  # pragma: no cover
    """Child loop: pull jobs until the sentinel, run each in-process.

    A start marker (job index + this child's pid) precedes every job so
    the parent can attribute in-flight jobs to a worker — that is what
    lets it requeue the jobs of a crashed worker onto survivors.  The
    marker travels over a dedicated per-child pipe, NOT the result
    queue: ``Connection.send`` writes synchronously in this thread (and
    small messages are single atomic writes), whereas a ``Queue.put``
    is flushed by a background feeder thread that a SIGKILL right after
    a short job would silently take down marker-unsent.
    """
    from repro.sim.simulator import Simulator
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, config, ref, args = item
        marker.send((index, os.getpid()))
        try:
            run_config = config.copy()
            run_config.distrib.backend = "inproc"
            if run_config.sample.ff_until > 0 and \
                    run_config.sample.library:
                # Snapshot-library path: fork from the shared prefix
                # checkpoint (primed up front by a share_prefix sweep,
                # or by whichever pool child gets there first — entry
                # creation is atomic, the race loser's work discarded).
                from repro.sample.library import run_with_library
                result = run_with_library(run_config, ref, args)
            else:
                result = Simulator(run_config).run(ref, args)
            try:
                pickle.dumps(result.main_result)
            except Exception:
                result.main_result = None
            result_queue.put((index, "ok", result))
        except BaseException:
            result_queue.put((index, "error", traceback.format_exc()))


def run_jobs(jobs: Sequence[Job], workers: int,
             timeout: float = 3600.0,
             max_attempts: int = 3) -> List[SimulationResult]:
    """Run ``jobs`` across ``workers`` processes; results in job order.

    Robustness: a pool worker that *dies* (SIGKILL, OOM) does not fail
    the sweep — its in-flight jobs are requeued onto the surviving
    workers, each job up to ``max_attempts`` starts before
    :class:`JobRetryExhaustedError` names it and gives up.  A job that
    *raises* still aborts the pool as :class:`WorkerCrashError`
    carrying the child's traceback (an application error would fail
    again on a survivor), as does the death of every worker.  Programs
    must be shippable (module-level functions or references with
    ``resolve()``); closures are rejected up front with a clear error.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    prepared = [(config, make_program_ref(program), tuple(args))
                for config, program, args in jobs]
    workers = _effective_workers(workers, len(prepared))
    if workers == 1:
        from repro.sim.simulator import Simulator
        out = []
        for config, ref, args in prepared:
            run_config = config.copy()
            run_config.distrib.backend = "inproc"
            out.append(Simulator(run_config).run(ref, args))
        return out

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        ctx = multiprocessing.get_context("spawn")
    task_queue = ctx.Queue()
    result_queue = ctx.Queue()
    procs = []
    markers = []
    for i in range(workers):
        reader, writer = ctx.Pipe(duplex=False)
        procs.append(ctx.Process(target=_pool_child,
                                 args=(task_queue, result_queue, writer),
                                 name=f"repro-pool-{i}", daemon=True))
        markers.append((reader, writer))
    for proc in procs:
        proc.start()
    for reader, writer in markers:
        writer.close()  # children hold the write ends now
    #: job index -> pid of the child currently running it.
    started_by: Dict[int, int] = {}
    #: job index -> times a child has started it.
    attempts: Dict[int, int] = {i: 0 for i in range(len(prepared))}
    #: pids whose lost jobs were already requeued.
    reaped_pids: set = set()

    def _drain_start_markers() -> None:
        for reader, _ in markers:
            try:
                while reader.poll():
                    index, pid = reader.recv()
                    attempts[index] += 1
                    started_by[index] = pid
            except (EOFError, OSError):
                continue

    def _requeue_from_dead_workers() -> None:
        """Hand the in-flight jobs of newly dead children to survivors."""
        _drain_start_markers()
        for proc in procs:
            if proc.is_alive() or proc.pid in reaped_pids:
                continue
            reaped_pids.add(proc.pid)
            lost = sorted(i for i, pid in started_by.items()
                          if pid == proc.pid)
            for index in lost:
                del started_by[index]
                if attempts[index] >= max_attempts:
                    raise JobRetryExhaustedError(index, attempts[index])
                config, ref, args = prepared[index]
                task_queue.put((index, config, ref, args))

    try:
        for index, (config, ref, args) in enumerate(prepared):
            task_queue.put((index, config, ref, args))

        results: List[Optional[SimulationResult]] = [None] * len(prepared)
        received = 0
        deadline = time.monotonic() + timeout
        while received < len(prepared):
            try:
                index, status, payload = result_queue.get(
                    timeout=_POLL_TICK)
            except Exception:
                if time.monotonic() > deadline:
                    unfinished = [i for i, r in enumerate(results)
                                  if r is None]
                    shown = ", ".join(map(str, unfinished[:8]))
                    if len(unfinished) > 8:
                        shown += ", ..."
                    alive = sum(1 for p in procs if p.is_alive())
                    raise WorkerTimeoutError(
                        f"sweep pool produced no result for "
                        f"{timeout:.0f}s; {len(unfinished)} job(s) "
                        f"unfinished (indices {shown}), "
                        f"{alive}/{len(procs)} pool workers still "
                        f"alive") from None
                dead = [p for p in procs if not p.is_alive()]
                if len(dead) == len(procs) and result_queue.empty():
                    codes = [p.exitcode for p in procs]
                    raise WorkerCrashError(
                        f"all pool workers exited (codes {codes}) with "
                        f"{len(prepared) - received} jobs unfinished")
                _requeue_from_dead_workers()
                continue
            if status == "error":
                raise WorkerCrashError(
                    f"sweep job {index} failed", payload)
            started_by.pop(index, None)
            if results[index] is None:
                results[index] = payload
                received += 1
            # else: a requeued duplicate of a result that raced the
            # worker's death; the first copy already counted.
        # All results are in; only now may the children drain their
        # sentinels (earlier sentinels would beat requeued jobs to the
        # survivors and starve them).
        for _ in procs:
            task_queue.put(None)
        return [r for r in results if r is not None]
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=1.0)
        for reader, _ in markers:
            reader.close()
        task_queue.close()
        result_queue.close()


def parallel_sweep(configs: Sequence[SimulationConfig],
                   program: Any, args: tuple = (),
                   workers: int = 1) -> List[SimulationResult]:
    """Parallel counterpart of :func:`repro.sim.experiment.sweep`."""
    return run_jobs([(c, program, args) for c in configs], workers)


def parallel_repeat(config: SimulationConfig, program: Any,
                    args: tuple = (), runs: int = 10,
                    base_seed: Optional[int] = None,
                    workers: int = 1) -> List[SimulationResult]:
    """Parallel counterpart of the repeat-runs seed protocol."""
    seed0 = config.seed if base_seed is None else base_seed
    jobs = []
    for run_index in range(runs):
        run_config = config.copy()
        run_config.seed = seed0 + 7919 * run_index
        jobs.append((run_config, program, args))
    return run_jobs(jobs, workers)
