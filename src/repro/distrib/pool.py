"""Worker pool for running independent simulations in parallel.

Experiment sweeps (Table 3's configuration grids, repeat-run CoV
protocols) are embarrassingly parallel: every configuration is a fully
independent simulation.  This pool fans such jobs out across OS
processes, one full simulation per job, and is where the mp backend's
wall-clock win comes from on multi-core hosts — single-simulation mp
execution is kept globally sequential for reproducibility (see
:mod:`repro.distrib.coordinator`).

Each pool child runs its jobs with the in-process backend regardless
of the job config's ``distrib.backend``: one process per simulation is
already the right grain, and nesting worker clusters inside pool
children would oversubscribe the host.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from typing import Any, List, Optional, Sequence, Tuple

from repro.common.config import SimulationConfig
from repro.distrib.errors import WorkerCrashError, WorkerTimeoutError
from repro.distrib.wire import make_program_ref
from repro.sim.results import SimulationResult

#: One sweep job: (config, program reference, program args).
Job = Tuple[SimulationConfig, Any, tuple]

#: Result-queue poll granularity (seconds).
_POLL_TICK = 0.1


def _pool_child(task_queue, result_queue) -> None:  # pragma: no cover
    """Child loop: pull jobs until the sentinel, run each in-process."""
    from repro.sim.simulator import Simulator
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, config, ref, args = item
        try:
            run_config = config.copy()
            run_config.distrib.backend = "inproc"
            result = Simulator(run_config).run(ref, args)
            try:
                pickle.dumps(result.main_result)
            except Exception:
                result.main_result = None
            result_queue.put((index, "ok", result))
        except BaseException:
            result_queue.put((index, "error", traceback.format_exc()))


def run_jobs(jobs: Sequence[Job], workers: int,
             timeout: float = 3600.0) -> List[SimulationResult]:
    """Run ``jobs`` across ``workers`` processes; results in job order.

    Any job failure aborts the pool and surfaces as
    :class:`WorkerCrashError` carrying the child's traceback.  Programs
    must be shippable (module-level functions or references with
    ``resolve()``); closures are rejected up front with a clear error.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    prepared = [(config, make_program_ref(program), tuple(args))
                for config, program, args in jobs]
    workers = max(1, min(workers, len(prepared)))
    if workers == 1:
        from repro.sim.simulator import Simulator
        out = []
        for config, ref, args in prepared:
            run_config = config.copy()
            run_config.distrib.backend = "inproc"
            out.append(Simulator(run_config).run(ref, args))
        return out

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        ctx = multiprocessing.get_context("spawn")
    task_queue = ctx.Queue()
    result_queue = ctx.Queue()
    procs = [ctx.Process(target=_pool_child,
                         args=(task_queue, result_queue),
                         name=f"repro-pool-{i}", daemon=True)
             for i in range(workers)]
    for proc in procs:
        proc.start()
    try:
        for index, (config, ref, args) in enumerate(prepared):
            task_queue.put((index, config, ref, args))
        for _ in procs:
            task_queue.put(None)

        results: List[Optional[SimulationResult]] = [None] * len(prepared)
        received = 0
        deadline = time.monotonic() + timeout
        while received < len(prepared):
            try:
                index, status, payload = result_queue.get(
                    timeout=_POLL_TICK)
            except Exception:
                if time.monotonic() > deadline:
                    unfinished = [i for i, r in enumerate(results)
                                  if r is None]
                    shown = ", ".join(map(str, unfinished[:8]))
                    if len(unfinished) > 8:
                        shown += ", ..."
                    alive = sum(1 for p in procs if p.is_alive())
                    raise WorkerTimeoutError(
                        f"sweep pool produced no result for "
                        f"{timeout:.0f}s; {len(unfinished)} job(s) "
                        f"unfinished (indices {shown}), "
                        f"{alive}/{len(procs)} pool workers still "
                        f"alive") from None
                dead = [p for p in procs if not p.is_alive()]
                if len(dead) == len(procs) and result_queue.empty():
                    codes = [p.exitcode for p in procs]
                    raise WorkerCrashError(
                        f"all pool workers exited (codes {codes}) with "
                        f"{len(prepared) - received} jobs unfinished")
                continue
            if status == "error":
                raise WorkerCrashError(
                    f"sweep job {index} failed", payload)
            results[index] = payload
            received += 1
        return [r for r in results if r is not None]
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=1.0)
        task_queue.close()
        result_queue.close()


def parallel_sweep(configs: Sequence[SimulationConfig],
                   program: Any, args: tuple = (),
                   workers: int = 1) -> List[SimulationResult]:
    """Parallel counterpart of :func:`repro.sim.experiment.sweep`."""
    return run_jobs([(c, program, args) for c in configs], workers)


def parallel_repeat(config: SimulationConfig, program: Any,
                    args: tuple = (), runs: int = 10,
                    base_seed: Optional[int] = None,
                    workers: int = 1) -> List[SimulationResult]:
    """Parallel counterpart of the repeat-runs seed protocol."""
    seed0 = config.seed if base_seed is None else base_seed
    jobs = []
    for run_index in range(runs):
        run_config = config.copy()
        run_config.seed = seed0 + 7919 * run_index
        jobs.append((run_config, program, args))
    return run_jobs(jobs, workers)
