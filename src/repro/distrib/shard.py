"""Cross-process transport: coordinator-side routing + worker queues.

In the mp backend the physical message fabric is split in two:

* :class:`ShardTransport` lives in the coordinator.  It *is* the
  simulation's :class:`~repro.transport.transport.Transport` — all
  sends, statistics and host-cost hooks run there exactly as in-process
  — but the delivery step relays each message to the worker owning the
  destination tile as a DELIVER frame instead of appending to a local
  deque.

* :class:`ShardQueues` lives in each worker and holds the inbound
  queues of that worker's tile shard, preserving the poll / poll_match
  / pending semantics interpreters rely on.

Because one pipe per worker carries frames in FIFO order and the
coordinator serializes all sends, physical delivery order is identical
to the in-process backend — the property the paper's "deliver in the
order received" semantics (§3.3) and the reproducibility acceptance
test both rest on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.host.cluster import ClusterLayout
from repro.transport.message import Message, MessageKind
from repro.transport.transport import Transport


class ShardTransport(Transport):
    """Transport whose delivery step crosses process boundaries."""

    def __init__(self, layout: ClusterLayout,
                 stats: Optional[StatGroup] = None) -> None:
        super().__init__(layout, stats)
        self._cluster = None

    def attach(self, cluster) -> None:
        """Connect the worker cluster; until then delivery is local."""
        self._cluster = cluster

    def _deliver(self, message: Message) -> None:
        if self._cluster is None:
            super()._deliver(message)
            return
        self._cluster.deliver(message)


class ShardQueues:
    """Worker-local inbound message queues for one tile shard."""

    def __init__(self, tiles: List[TileId]) -> None:
        self._queues: Dict[int, Dict[MessageKind, Deque[Message]]] = {
            int(t): {kind: deque() for kind in MessageKind}
            for t in tiles
        }

    def enqueue(self, message: Message) -> None:
        self._queues[int(message.dst)][message.kind].append(message)

    def absorb(self, other: "ShardQueues") -> None:
        """Take over another shard's tile queues (live migration).

        Tiles are owned by exactly one worker at a time, so a
        collision means the coordinator mis-routed a migration; fail
        loudly rather than silently merging two queue histories.
        """
        for tile, queues in other._queues.items():
            if tile in self._queues:
                raise ValueError(
                    f"tile {tile} already owned by this shard")
            self._queues[tile] = queues

    def poll(self, tile: TileId, kind: MessageKind) -> Optional[Message]:
        queue = self._queues[int(tile)][kind]
        return queue.popleft() if queue else None

    def poll_match(self, tile: TileId, kind: MessageKind,
                   src: Optional[TileId] = None,
                   tag: Optional[int] = None) -> Optional[Message]:
        queue = self._queues[int(tile)][kind]
        for i, msg in enumerate(queue):
            if src is not None and msg.src != src:
                continue
            if tag is not None and msg.tag != tag:
                continue
            del queue[i]
            return msg
        return None

    def pending(self, tile: TileId, kind: MessageKind) -> int:
        return len(self._queues[int(tile)][kind])
