"""Wire format of the coordinator <-> worker control channel.

Every frame crossing a worker pipe is ``(WIRE_VERSION, FrameKind,
payload)`` serialized with pickle.  The version travels in every frame
so a coordinator and a worker built from different checkouts fail
loudly at the first exchange instead of corrupting a simulation.

The module also defines *program references* — picklable stand-ins for
target programs.  Workload ``build()`` closures cannot cross a process
boundary, so the coordinator ships a :class:`WorkloadRef` (rebuilt from
the workload registry on the far side) or a :class:`PickledProgram`
(for module-level functions, e.g. the per-thread workers the workloads
spawn).  Both expose ``resolve()``, the duck-typed protocol
:meth:`repro.sim.simulator.Simulator.spawn_thread` already honors.
"""

from __future__ import annotations

import enum
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from repro.distrib.errors import ProgramTransportError, WireFormatError

#: Bump on any incompatible change to frame payloads or pickling.
#: v2: TELEMETRY / COLLECT_TELEMETRY frames (event + histogram
#: aggregation from workers).
#: v3: HOST_STATS / COLLECT_HOST_STATS frames (worker host-profiler
#: scope exports for the merged cluster-wide host profile).
#: v4: CHECKPOINT / CKPT_ACK / RESTORE frames (coordinated snapshot
#: barrier and shard restore for fault-tolerant runs).
#: v5: ADOPT / RELEASE / GOODBYE frames (live shard migration between
#: workers and orderly departure of drained workers; :mod:`repro.net`).
#: v6: SET_MODE frame (execution-mode propagation for functional
#: fast-forward and interval sampling; :mod:`repro.sample`).
WIRE_VERSION = 6


class FrameKind(enum.Enum):
    """Control-channel frame types."""

    #: coordinator -> worker: config + shard at startup.
    HELLO = "hello"
    #: coordinator -> worker: create an interpreter for a tile.
    SPAWN = "spawn"
    #: coordinator -> worker: run one scheduler quantum on a tile.
    RUN_QUANTUM = "run_quantum"
    #: worker -> coordinator: quantum finished (status + core state).
    QUANTUM_DONE = "quantum_done"
    #: worker -> coordinator: kernel RPC (needs a KERNEL_REPLY).
    KERNEL_CALL = "kernel_call"
    #: coordinator -> worker: RPC return value.
    KERNEL_REPLY = "kernel_reply"
    #: worker -> coordinator: one-way kernel notification (no reply).
    KERNEL_CAST = "kernel_cast"
    #: coordinator -> worker: enqueue a user message on a local tile.
    DELIVER = "deliver"
    #: coordinator -> worker: forward a wake timestamp to a tile.
    NOTIFY_WAKE = "notify_wake"
    #: coordinator -> worker: switch the interpreter execution mode
    #: (payload: ``True`` = functional, ``False`` = detailed).  Sent
    #: only between quanta — the sample controller is a periodic
    #: scheduler hook — so no interpreter is ever mid-quantum when the
    #: mode flips (:mod:`repro.sample`).
    SET_MODE = "set_mode"
    #: coordinator -> worker: request the flattened local stats.
    COLLECT_STATS = "collect_stats"
    #: worker -> coordinator: flattened local stats.
    STATS = "stats"
    #: coordinator -> worker: request buffered telemetry + histograms.
    COLLECT_TELEMETRY = "collect_telemetry"
    #: worker -> coordinator: a :class:`~repro.telemetry.aggregate.
    #: TelemetryBatch` (sent unsolicited when the event buffer fills
    #: during a quantum, and as the COLLECT_TELEMETRY reply).
    TELEMETRY = "telemetry"
    #: coordinator -> worker: request the worker's host-profiler state.
    COLLECT_HOST_STATS = "collect_host_stats"
    #: worker -> coordinator: a :class:`HostStatsBatch` (the worker's
    #: own busy/idle/serialization attribution; empty when the run is
    #: unprofiled).
    HOST_STATS = "host_stats"
    #: coordinator -> worker: snapshot the shard (barrier; the worker
    #: must be idle between quanta when this arrives).
    CHECKPOINT = "checkpoint"
    #: worker -> coordinator: a :class:`ShardCheckpoint` (the shard's
    #: pickled kernel + interpreters), acknowledging the barrier.
    CKPT_ACK = "ckpt_ack"
    #: coordinator -> worker: adopt a :class:`ShardCheckpoint` blob
    #: (sent after HELLO when resuming from a checkpoint).
    RESTORE = "restore"
    #: coordinator -> worker: merge a migrated :class:`ShardCheckpoint`
    #: blob into the worker's *existing* shard (live migration; unlike
    #: RESTORE the current kernel and interpreters are kept).
    ADOPT = "adopt"
    #: coordinator -> worker: your shard has been migrated elsewhere;
    #: discard it and continue with a fresh, empty one.  Sent to the
    #: *source* of a non-departing migration so stale kernels never
    #: double-report stats or collide with a later re-adoption.
    RELEASE = "release"
    #: coordinator -> worker: the worker has been drained; exit the
    #: loop cleanly (its tiles now live elsewhere).
    GOODBYE = "goodbye"
    #: coordinator -> worker: exit the worker loop.
    SHUTDOWN = "shutdown"
    #: worker -> coordinator: unrecoverable failure (with traceback).
    ERROR = "error"


def encode_frame(kind: FrameKind, payload: Any) -> bytes:
    try:
        return pickle.dumps((WIRE_VERSION, kind.value, payload),
                            protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise WireFormatError(
            f"cannot encode {kind.value} frame: {exc}") from exc


def decode_frame(blob: bytes) -> Tuple[FrameKind, Any]:
    try:
        version, kind, payload = pickle.loads(blob)
    except Exception as exc:
        raise WireFormatError(f"undecodable frame: {exc}") from exc
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"wire version mismatch: got {version!r}, "
            f"expected {WIRE_VERSION}")
    return FrameKind(kind), payload


@dataclass(frozen=True)
class HostStatsBatch:
    """One worker's host-profiler export, as carried on the wire (v3).

    ``scopes`` maps scope name -> ``{"calls", "cum_ns", "self_ns"}``
    (the :meth:`repro.profile.timers.HostProfiler.scope_dict` shape);
    the coordinator summarizes it into per-worker busy/idle/serialize
    time and merges all workers into the cluster-wide host profile.
    """

    worker: int
    scopes: Dict[str, Dict[str, int]] = field(default_factory=dict)


@dataclass(frozen=True)
class ShardCheckpoint:
    """One worker's shard snapshot, as carried on the wire (v4).

    ``blob`` is the surgical pickle (:mod:`repro.ckpt.snapshot`) of
    ``{"kernel": KernelProxy, "interpreters": {tile: interpreter}}``;
    the coordinator never unpickles it — it stores the bytes in the
    checkpoint and ships them back verbatim in a RESTORE frame.
    """

    worker: int
    blob: bytes


# -- program references ------------------------------------------------------


@dataclass(frozen=True)
class WorkloadRef:
    """A main program named by workload-registry entry, not by object.

    ``resolve()`` rebuilds the program on whichever process unpickles
    the reference, so closure-laden ``build()`` products never need to
    cross the wire.
    """

    workload: str
    nthreads: int
    scale: float = 1.0
    params: Dict[str, Any] = field(default_factory=dict)

    def resolve(self) -> Callable[..., Any]:
        from repro.workloads import get_workload
        return get_workload(self.workload).main(
            self.nthreads, self.scale, **dict(self.params))


@dataclass(frozen=True)
class PickledProgram:
    """A program shipped as its pickle (module-level functions only)."""

    blob: bytes

    def resolve(self) -> Callable[..., Any]:
        return pickle.loads(self.blob)


def make_program_ref(program: Any) -> Any:
    """Make ``program`` shippable; pass existing references through."""
    if hasattr(program, "resolve"):
        return program
    try:
        return PickledProgram(pickle.dumps(
            program, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:
        raise ProgramTransportError(
            f"program {program!r} cannot cross a process boundary "
            f"({exc}); use a module-level function or a WorkloadRef"
        ) from exc


def program_key(ref: Any) -> bytes:
    """Stable identity of a program reference across processes.

    Used by the coordinator to allocate synthetic code regions: equal
    references (same workload spec, same pickled function) map to the
    same code base, mirroring the in-process ``id(program)`` keying.
    """
    return pickle.dumps(ref, protocol=pickle.HIGHEST_PROTOCOL)
