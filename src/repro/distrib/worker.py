"""Worker process: executes the interpreters of one tile shard.

A worker is the mp backend's analogue of one Graphite target process:
it owns the tile threads striped onto it (paper §3.5) and *really*
executes their programs — the generators run here, op by op, through
unmodified :class:`~repro.frontend.interpreter.ThreadInterpreter`
instances.  What the worker does **not** own is shared simulation
state: the memory system, network models, MCP, allocator, host cost
model and scheduler all live in the coordinator, reached through
:class:`KernelProxy` — a stand-in for the kernel object whose local
pieces (config, per-thread stats, inbound message queues) are worker
resident and whose shared pieces are RPCs over the control pipe.

Determinism: the pipe is FIFO and the coordinator runs exactly one
quantum anywhere at a time, so kernel calls reach the coordinator in
the same order the in-process backend would make them — including the
order in which the jittered cost model's RNG is consumed.  Cost-model
lookups themselves are deferred: ``cost_model.instructions(n)`` here
returns a token, and the coordinator evaluates it (consuming RNG) when
the paired ``charge`` arrives.
"""

from __future__ import annotations

import pickle
import sys
import traceback
from typing import Any, List, Optional

from repro.common.config import SimulationConfig
from repro.common.ids import ThreadId, TileId
from repro.common.stats import StatGroup
from repro.distrib.shard import ShardQueues
from repro.distrib.wire import (
    FrameKind,
    HostStatsBatch,
    ShardCheckpoint,
    decode_frame,
    encode_frame,
)
from repro.frontend.interpreter import ThreadInterpreter
from repro.profile.timers import create_profiler
from repro.telemetry.aggregate import TelemetryBatch
from repro.telemetry.bus import create_bus
from repro.telemetry.events import EventCategory
from repro.transport.message import Message, MessageKind


class _DeferredCostModel:
    """Cost-model facade returning tokens instead of host seconds.

    The real model consumes a jitter RNG per lookup; evaluating here
    would fork the RNG stream.  Tokens ride the ``charge`` cast and are
    evaluated coordinator-side, in arrival (= program) order.
    """

    def instructions(self, count: int) -> tuple:
        return ("instructions", count)

    def model_trap(self) -> tuple:
        return ("model_trap",)

    def memory_access(self) -> tuple:
        return ("memory_access",)


class _MemoryProxy:
    """``kernel.controllers[tile]`` stand-in: RPCs to the real MC."""

    __slots__ = ("_kernel", "_tile")

    def __init__(self, kernel: "KernelProxy", tile: int) -> None:
        self._kernel = kernel
        self._tile = tile

    def load(self, address: int, size: int, timestamp: int):
        return self._kernel.rpc("memory_load",
                                (self._tile, address, size, timestamp))

    def store(self, address: int, data: bytes, timestamp: int) -> int:
        return self._kernel.rpc("memory_store",
                                (self._tile, address, data, timestamp))

    def fetch(self, pc: int, timestamp: int) -> int:
        return self._kernel.rpc("memory_fetch",
                                (self._tile, pc, timestamp))


class _NetIfProxy:
    """Per-tile network endpoint: sends are RPCs, receives are local.

    Inbound queues are worker-owned (fed by DELIVER frames), so the
    receive path — the only transport operation on an interpreter's
    critical polling loop — never crosses the process boundary.
    """

    __slots__ = ("_kernel", "tile")

    def __init__(self, kernel: "KernelProxy", tile: TileId) -> None:
        self._kernel = kernel
        self.tile = tile

    def send(self, dst: TileId, payload: Any = None,
             kind: MessageKind = MessageKind.USER, size_bytes: int = 8,
             timestamp: int = 0, tag: Optional[int] = None) -> None:
        return self._kernel.rpc("fabric_send",
                                (int(self.tile), int(dst), kind.value,
                                 payload, size_bytes, timestamp, tag))

    def poll(self, kind: MessageKind) -> Optional[Message]:
        return self._kernel.queues.poll(self.tile, kind)

    def poll_match(self, kind: MessageKind, src: Optional[TileId] = None,
                   tag: Optional[int] = None) -> Optional[Message]:
        return self._kernel.queues.poll_match(self.tile, kind, src, tag)

    def pending(self, kind: MessageKind) -> int:
        return self._kernel.queues.pending(self.tile, kind)


class _FabricProxy:
    __slots__ = ("_kernel",)

    def __init__(self, kernel: "KernelProxy") -> None:
        self._kernel = kernel

    def interface(self, tile: TileId) -> _NetIfProxy:
        return _NetIfProxy(self._kernel, tile)

    def transfer(self, src: TileId, dst: TileId, kind: MessageKind,
                 size_bytes: int, timestamp: int) -> int:
        return self._kernel.rpc("fabric_transfer",
                                (int(src), int(dst), kind.value,
                                 size_bytes, timestamp))


class _AllocatorProxy:
    __slots__ = ("_kernel",)

    def __init__(self, kernel: "KernelProxy") -> None:
        self._kernel = kernel

    def malloc(self, size: int, align: int = 8) -> int:
        return self._kernel.rpc("malloc", (size, align))

    def free(self, address: int) -> None:
        return self._kernel.rpc("free", (address,))


class _FutexProxy:
    __slots__ = ("_kernel",)

    def __init__(self, kernel: "KernelProxy") -> None:
        self._kernel = kernel

    def wait(self, address: int, tile: TileId) -> None:
        return self._kernel.rpc("futex_wait", (address, int(tile)))

    def wake(self, address: int, count: int, clock: int) -> int:
        return self._kernel.rpc("futex_wake", (address, count, clock))


class _ThreadsProxy:
    __slots__ = ("_kernel",)

    def __init__(self, kernel: "KernelProxy") -> None:
        self._kernel = kernel

    def try_join(self, tile: TileId, target: TileId) -> Optional[int]:
        return self._kernel.rpc("try_join", (int(tile), int(target)))

    def final_clock(self, target: TileId) -> Optional[int]:
        return self._kernel.rpc("final_clock", (int(target),))


class _SyscallsProxy:
    __slots__ = ("_kernel",)

    def __init__(self, kernel: "KernelProxy") -> None:
        self._kernel = kernel

    def execute(self, name: str, args: tuple) -> Any:
        return self._kernel.rpc("syscall", (name, args))


class _McpProxy:
    def __init__(self, kernel: "KernelProxy") -> None:
        self._kernel = kernel
        self.futex = _FutexProxy(kernel)
        self.threads = _ThreadsProxy(kernel)
        self.syscalls = _SyscallsProxy(kernel)

    def barrier_arrive(self, address: int, total: int, tile: TileId,
                       clock: int) -> Optional[int]:
        return self._kernel.rpc("barrier_arrive",
                                (address, total, int(tile), clock))

    def barrier_is_waiting(self, address: int, tile: TileId) -> bool:
        return self._kernel.rpc("barrier_is_waiting",
                                (address, int(tile)))


class _ControllerTable:
    """Lazy ``controllers[tile]`` lookup over the whole tile space."""

    __slots__ = ("_kernel",)

    def __init__(self, kernel: "KernelProxy") -> None:
        self._kernel = kernel

    def __getitem__(self, tile: int) -> _MemoryProxy:
        return _MemoryProxy(self._kernel, int(tile))


class KernelProxy:
    """The kernel object handed to this worker's interpreters."""

    def __init__(self, worker: "Worker",
                 config: SimulationConfig) -> None:
        self._worker = worker
        self.config = config
        #: Execution mode sampled by the interpreters once per quantum
        #: (:mod:`repro.sample`).  Driven by SET_MODE frames (wire v6)
        #: so it only ever changes between quanta; pickles with the
        #: shard, so a checkpoint taken mid-fast-forward resumes
        #: functional.
        self.exec_functional = False
        self.stats = StatGroup("sim")
        self.queues = worker.queues
        #: Worker-local event bus: no sinks (a worker never opens the
        #: coordinator's trace file); events batch over the wire.
        self.telemetry = create_bus(config.telemetry, with_sinks=False)
        self.cost_model = _DeferredCostModel()
        self.controllers = _ControllerTable(self)
        self.fabric = _FabricProxy(self)
        self.allocator = _AllocatorProxy(self)
        self.mcp = _McpProxy(self)
        #: Code base shipped in the SPAWN frame currently being handled;
        #: consumed by the interpreter's single ``code_base`` call.
        self._pending_code_base: Optional[int] = None
        self._code_bases: dict = {}

    # -- pipe plumbing -------------------------------------------------------

    def rpc(self, method: str, args: tuple) -> Any:
        return self._worker.rpc(method, args)

    def cast(self, method: str, args: tuple) -> None:
        self._worker.cast(method, args)

    # -- kernel interface ----------------------------------------------------

    def charge(self, cost_token: tuple) -> None:
        self.cast("charge", (cost_token,))

    def code_base(self, program: Any) -> int:
        base = self._code_bases.get(id(program))
        if base is None:
            base = self._pending_code_base
            assert base is not None, "code_base outside a SPAWN frame"
            self._pending_code_base = None
            self._code_bases[id(program)] = base
        return base

    def spawn_thread(self, program: Any, args: tuple, parent_tile: TileId,
                     parent_clock: int) -> ThreadId:
        from repro.distrib.wire import make_program_ref
        child = self.rpc("spawn_thread",
                         (make_program_ref(program), args,
                          int(parent_tile), parent_clock))
        return ThreadId(child)

    def thread_finished(self, tile: TileId, final_clock: int) -> None:
        self.cast("thread_finished", (int(tile), final_clock))

    def wake_scheduler(self, tile: TileId) -> None:
        self.cast("wake_scheduler", (int(tile),))


class Worker:
    """One worker process: frame loop + interpreter shard."""

    def __init__(self, conn, process_index: int,
                 config: SimulationConfig, tiles: List[int]) -> None:
        self.conn = conn
        self.process_index = process_index
        self.queues = ShardQueues([TileId(t) for t in tiles])
        self.kernel = KernelProxy(self, config)
        self.interpreters: dict = {}
        #: Kernel proxies adopted through live shard migration: their
        #: interpreters keep charging stats into these trees, so stat
        #: and histogram collection folds them in alongside the
        #: primary kernel.
        self.adopted: List[KernelProxy] = []
        # Crash flight recorder (``--flight-dir``): every process keeps
        # its own bounded ring of recent events.  It observes a mask-0
        # bus when tracing is off, so nothing is recorded or shipped —
        # batches drain only *recorded* events, keeping the
        # coordinator's merged trace byte-identical either way.  Must
        # attach before any channel resolves (observer mask).
        self.flight = None
        if config.telemetry.flight_dir:
            from repro.obs.flight import FlightRecorder
            from repro.telemetry.bus import TelemetryBus
            from repro.telemetry.events import ALL_CATEGORIES
            if self.kernel.telemetry is None:
                self.kernel.telemetry = TelemetryBus(0)
            self.flight = FlightRecorder(config.telemetry.flight_events)
            self.kernel.telemetry.observe(self.flight.on_event,
                                          ALL_CATEGORIES)
        self._batch_events = config.telemetry.batch_events
        self._tele_worker = None
        if self.kernel.telemetry is not None:
            self._tele_worker = self.kernel.telemetry.channel(
                EventCategory.WORKER)
        #: Worker-side host profiler (``--profile``): ``None`` when off,
        #: in which case the plain frame I/O methods below stay bound
        #: and nothing is timed.  Scope names: ``idle.wait`` (blocked on
        #: the control pipe), ``wire.encode``/``wire.decode``/
        #: ``wire.send`` (serialization), ``quantum.run`` (interpreting
        #: the op stream; RPC waits nest inside and subtract out).
        self.profiler = create_profiler(config.profile)
        if self.profiler is not None:
            self._send = self._send_timed  # type: ignore[method-assign]
            self._recv = self._recv_timed  # type: ignore[method-assign]
        elif config.distrib.migration_capable() or \
                config.distrib.needs_worker_busy_signal():
            # Migration-capable runs (and runs with a straggler
            # watchdog) always carry a minimal profiler: only
            # ``quantum.run`` is bracketed (frame I/O stays untimed),
            # which is exactly the per-worker busy signal the
            # rebalance policy and the watchdog feed on.
            from repro.profile.timers import HostProfiler
            self.profiler = HostProfiler()

    def _flush_telemetry(self) -> None:
        """Ship buffered events once the batch threshold is crossed.

        Only called at points where the coordinator is known to be
        reading this worker's pipe (inside a quantum, or answering
        COLLECT_TELEMETRY) — an unsolicited frame at any other time
        would deadlock against an unread pipe.
        """
        bus = self.kernel.telemetry
        if bus is None or len(bus.events) < self._batch_events:
            return
        self._send(FrameKind.TELEMETRY,
                   TelemetryBatch(self.process_index,
                                  bus.drain_pending()))

    # -- frame I/O -----------------------------------------------------------

    def _send(self, kind: FrameKind, payload: Any) -> None:
        self.conn.send_bytes(encode_frame(kind, payload))

    def _recv(self) -> tuple:
        return decode_frame(self.conn.recv_bytes())

    def _send_timed(self, kind: FrameKind, payload: Any) -> None:
        prof = self.profiler
        prof.enter("wire.encode")
        try:
            blob = encode_frame(kind, payload)
        finally:
            prof.exit()
        prof.enter("wire.send")
        try:
            self.conn.send_bytes(blob)
        finally:
            prof.exit()

    def _recv_timed(self) -> tuple:
        prof = self.profiler
        prof.enter("idle.wait")
        try:
            blob = self.conn.recv_bytes()
        finally:
            prof.exit()
        prof.enter("wire.decode")
        try:
            return decode_frame(blob)
        finally:
            prof.exit()

    def rpc(self, method: str, args: tuple) -> Any:
        """Issue a kernel RPC; service interleaved casts while waiting.

        Between the KERNEL_CALL and its KERNEL_REPLY the coordinator may
        legitimately send this worker DELIVER, NOTIFY_WAKE or SPAWN
        frames (side effects of the very call in flight, e.g. a send to
        a tile we own, or a spawn landing on our shard).  Those are
        handled inline; all are pure-local, so no recursion is possible.
        """
        self._send(FrameKind.KERNEL_CALL, (method, args))
        while True:
            kind, payload = self._recv()
            if kind is FrameKind.KERNEL_REPLY:
                return payload
            if kind is FrameKind.SHUTDOWN:
                # The coordinator aborted mid-call (its side raised);
                # exit instead of waiting for a reply that never comes.
                sys.exit(0)
            self._handle_cast_frame(kind, payload)

    def cast(self, method: str, args: tuple) -> None:
        self._send(FrameKind.KERNEL_CAST, (method, args))

    # -- frame handlers ------------------------------------------------------

    def _handle_cast_frame(self, kind: FrameKind, payload: Any) -> None:
        if kind is FrameKind.DELIVER:
            self.queues.enqueue(payload)
        elif kind is FrameKind.NOTIFY_WAKE:
            tile, timestamp = payload
            self.interpreters[tile].notify_wake(timestamp)
        elif kind is FrameKind.SPAWN:
            self._handle_spawn(payload)
        elif kind is FrameKind.SET_MODE:
            self._handle_set_mode(payload)
        else:
            raise RuntimeError(f"unexpected frame {kind} in worker")

    def _handle_set_mode(self, functional: bool) -> None:
        """Flip the interpreter execution mode (wire v6).

        Purely local, like SPAWN: just a flag the interpreters sample
        at their next quantum.  Adopted kernels (live migration) flip
        too — their interpreters dispatch through them.
        """
        for kernel in [self.kernel, *self.adopted]:
            kernel.exec_functional = bool(functional)

    def _handle_spawn(self, payload: tuple) -> None:
        """Create an interpreter for a tile we own.  Purely local.

        This handler must not issue RPCs: it can run while the
        coordinator is busy servicing *another* worker's quantum, in
        which case nobody would answer.  Everything the interpreter
        constructor needs — including the synthetic code base the
        in-process backend would allocate on demand — arrives in the
        frame.
        """
        tile, ref, args, start_clock, code_base = payload
        program = ref.resolve() if hasattr(ref, "resolve") else ref
        self.kernel._pending_code_base = code_base
        interpreter = ThreadInterpreter(self.kernel, TileId(tile), program,
                                        tuple(args),
                                        start_clock=start_clock)
        if hasattr(ref, "resolve"):
            interpreter.program_ref = ref
        self.interpreters[tile] = interpreter
        if self._tele_worker is not None:
            # Buffered only (no pipe write: this frame can arrive while
            # the coordinator is busy elsewhere); ships with the next
            # batch.  WORKER events exist only in the mp backend.
            self._tele_worker.emit("interp_spawn", tile, start_clock,
                                   {"worker": self.process_index})

    def _handle_run_quantum(self, payload: tuple) -> None:
        tile, budget, cycle_limit = payload
        interpreter = self.interpreters[tile]
        if self.profiler is not None:
            self.profiler.enter("quantum.run")
            try:
                result = interpreter.run(budget, cycle_limit)
            finally:
                self.profiler.exit()
        else:
            result = interpreter.run(budget, cycle_limit)
        outcome = None
        if result.status.value == "done":
            try:
                pickle.dumps(interpreter.result)
                outcome = interpreter.result
            except Exception:
                outcome = None  # unshippable results stay worker-side
        # The coordinator reads this pipe until QUANTUM_DONE, so a full
        # event buffer flushes here, *before* the terminating frame.
        self._flush_telemetry()
        self._send(FrameKind.QUANTUM_DONE,
                   (result.status.value, result.instructions,
                    interpreter.core.cycles,
                    interpreter.core.instruction_count, outcome))

    def _handle_checkpoint(self) -> None:
        """Snapshot this shard and acknowledge the barrier (wire v4).

        Arrives only between quanta, so no interpreter is mid-op; the
        shard's entire mutable state is the kernel proxy (stats tree,
        inbound queues) plus the interpreters, pickled as one graph so
        shared references survive.
        """
        from repro.ckpt.snapshot import snapshot_bytes
        blob = snapshot_bytes({"kernel": self.kernel,
                               "interpreters": self.interpreters,
                               "adopted": self.adopted})
        self._send(FrameKind.CKPT_ACK,
                   ShardCheckpoint(self.process_index, blob))

    def _handle_restore(self, blob: bytes) -> None:
        """Adopt a checkpointed shard (sent right after HELLO).

        The restored kernel proxy replaces the HELLO-built one; its
        worker backref (excised by the snapshot pickler) is repointed
        here, its program-id cache is dropped (object ids do not
        survive a process boundary), and every live interpreter's
        generator is replayed back to its checkpointed position.
        """
        hello_config = self.kernel.config
        shard = pickle.loads(blob)
        kernel = shard["kernel"]
        kernel._worker = self
        kernel._code_bases = {}
        kernel._pending_code_base = None
        self.kernel = kernel
        self.queues = kernel.queues
        self.interpreters = shard["interpreters"]
        # Shards snapshotted after a live migration carry the adopted
        # kernels too; rewire each exactly like the primary.
        self.adopted = list(shard.get("adopted", []))
        for extra in self.adopted:
            extra._worker = self
            extra._code_bases = {}
            extra._pending_code_base = None
        # Observers (telemetry bus/channels) were excised to None; the
        # resumed shard runs unobserved, like a --trace-less run.
        self._tele_worker = None
        self._redress_shard(hello_config)
        for interpreter in self.interpreters.values():
            interpreter.rebuild_generator()
        self._send(FrameKind.CKPT_ACK,
                   ShardCheckpoint(self.process_index, b""))

    def _redress_shard(self, hello_config: SimulationConfig) -> None:
        """Re-dress a restored shard for the HELLO config (wire v6).

        A snapshot-library fork (:mod:`repro.sample.library`) resumes
        a shared prefix checkpoint under a *variant* config that may
        differ from the pickled one in prefix-irrelevant sections —
        the core model above all.  Mirror of the coordinator-side fork
        re-dressing: each interpreter whose core disagrees with the
        variant gets a freshly built model (its ``core`` stat subtree
        rebuilt from scratch, so no stale counters from the primer's
        model type survive) carrying the clock and instruction total
        over — exactly the state fast-forward advances.  A plain
        crash-recovery resume restores under the identical config and
        rebuilds nothing.
        """
        from repro.core.factory import create_core_model
        for kernel in [self.kernel, *self.adopted]:
            kernel.config = hello_config
        for tile, interpreter in self.interpreters.items():
            target = hello_config.core_config_for(int(tile))
            old = interpreter.core
            if not hasattr(old, "config") or old.config == target:
                continue
            clock_now = old.clock.now
            retired = old.instruction_count
            stats = interpreter.kernel.stats.child(f"thread{int(tile)}")
            stats.children.pop("core", None)
            core = create_core_model(target, stats.child("core"),
                                     telemetry=None, tile=int(tile))
            core.clock.forward_to(clock_now)
            if retired:
                core._instructions.add(retired)
            interpreter.core = core

    def _handle_adopt(self, blob: bytes) -> None:
        """Merge a migrated shard into this worker's own (wire v5).

        Unlike RESTORE, the current kernel and interpreters stay: the
        migrated interpreters join ours, their kernel proxies are
        rewired to this worker's channel, their inbound queues are
        folded into (and then shared with) ours, and each generator is
        replayed back to its position.  Arrives only between quanta,
        so nothing is mid-op on either side; migrated interpreters run
        telemetry-unobserved afterwards, like a restored shard.
        """
        shard = pickle.loads(blob)
        kernels = []
        seen = set()
        for kernel in [shard["kernel"], *shard.get("adopted", [])]:
            if id(kernel) not in seen:
                seen.add(id(kernel))
                kernels.append(kernel)
        self.queues.absorb(shard["kernel"].queues)
        for kernel in kernels:
            kernel._worker = self
            kernel._code_bases = {}
            kernel._pending_code_base = None
            # One shared queue set per worker: DELIVER frames for the
            # migrated tiles land in our queues, and the migrated
            # interpreters poll through their (rewired) kernel.
            kernel.queues = self.queues
        for tile, interpreter in shard["interpreters"].items():
            interpreter.rebuild_generator()
            self.interpreters[tile] = interpreter
        self.adopted.extend(kernels)
        self._send(FrameKind.CKPT_ACK,
                   ShardCheckpoint(self.process_index, b""))

    def _handle_release(self) -> None:
        """Shed the migrated-away shard; start over empty (wire v5).

        The inverse of ADOPT, sent to the *source* of a non-departing
        migration.  The old kernel proxy (whose stats the adopting
        worker now reports), its queues and every interpreter are
        dropped and replaced with a fresh empty shard — so this worker
        neither double-counts the moved tiles' stats nor collides with
        a shard migrated back in later.
        """
        self.queues = ShardQueues([])
        self.kernel = KernelProxy(self, self.kernel.config)
        self.interpreters = {}
        self.adopted = []
        self._tele_worker = None
        if self.kernel.telemetry is not None:
            self._tele_worker = self.kernel.telemetry.channel(
                EventCategory.WORKER)
        self._send(FrameKind.CKPT_ACK,
                   ShardCheckpoint(self.process_index, b""))

    def _handle_collect_stats(self) -> None:
        flat = dict(self.kernel.stats.to_dict())
        for kernel in self.adopted:
            for path, value in kernel.stats.to_dict().items():
                flat[path] = flat.get(path, 0) + value
        self._send(FrameKind.STATS, flat)

    def _handle_collect_host_stats(self) -> None:
        """Ship this worker's host-profiler scopes (empty when off)."""
        scopes = (self.profiler.scope_dict()
                  if self.profiler is not None else {})
        self._send(FrameKind.HOST_STATS,
                   HostStatsBatch(self.process_index, scopes))

    def _handle_collect_telemetry(self) -> None:
        """Final drain: every buffered event plus histogram states.

        Histograms ride the telemetry channel (not COLLECT_STATS, which
        ships the counter tree) because merging them needs structured
        state, not a flat int mapping.
        """
        bus = self.kernel.telemetry
        events = bus.drain_pending() if bus is not None else []
        histograms = self.kernel.stats.histogram_states()
        if self.adopted:
            scratch = StatGroup("sim")
            scratch.merge_histogram_states(histograms)
            for kernel in self.adopted:
                scratch.merge_histogram_states(
                    kernel.stats.histogram_states())
            histograms = scratch.histogram_states()
        self._send(FrameKind.TELEMETRY,
                   TelemetryBatch(self.process_index, events,
                                  histograms))

    # -- main loop -----------------------------------------------------------

    def loop(self) -> None:
        while True:
            kind, payload = self._recv()
            if kind is FrameKind.SHUTDOWN:
                return
            if kind is FrameKind.GOODBYE:
                # Drained: our tiles live elsewhere now; leave cleanly.
                return
            try:
                if kind is FrameKind.RUN_QUANTUM:
                    self._handle_run_quantum(payload)
                elif kind is FrameKind.CHECKPOINT:
                    self._handle_checkpoint()
                elif kind is FrameKind.RESTORE:
                    self._handle_restore(payload)
                elif kind is FrameKind.ADOPT:
                    self._handle_adopt(payload)
                elif kind is FrameKind.RELEASE:
                    self._handle_release()
                elif kind is FrameKind.COLLECT_STATS:
                    self._handle_collect_stats()
                elif kind is FrameKind.COLLECT_TELEMETRY:
                    self._handle_collect_telemetry()
                elif kind is FrameKind.COLLECT_HOST_STATS:
                    self._handle_collect_host_stats()
                else:
                    self._handle_cast_frame(kind, payload)
            except SystemExit:
                return
            except BaseException as exc:
                blob = None
                try:
                    blob = pickle.dumps(exc)
                except Exception:
                    pass
                self._send(FrameKind.ERROR,
                           (traceback.format_exc(), blob))


def worker_main(conn, process_index: int = -1) -> None:
    """Entry point of a pipe worker process.

    ``conn`` is the raw multiprocessing connection; it is wrapped in a
    :class:`~repro.net.channel.PipeChannel` so the worker loop speaks
    the same channel surface whichever transport spawned it.
    """
    from repro.net.channel import PipeChannel
    _channel_worker_main(PipeChannel(conn), process_index)


def tcp_worker_main(address: str, timeout: float = 30.0) -> None:
    """Entry point of a TCP worker: dial, handshake, serve frames.

    Used both by coordinator-forked local workers (self-contained TCP
    runs) and by ``repro worker --connect`` on another host.  The
    handshake pins the net and pickle wire versions; the coordinator's
    config fingerprint is then re-checked against the HELLO config so
    a worker can never execute a different simulation than the one it
    agreed to join.
    """
    from repro.distrib.wire import WIRE_VERSION
    from repro.net.listener import connect_worker
    channel, welcome = connect_worker(address, WIRE_VERSION,
                                      timeout=timeout)
    run_connected_worker(channel, welcome)


def run_connected_worker(channel, welcome) -> None:
    """Serve a coordinator over an already-handshaken channel."""
    from repro.net.channel import ChannelClosedError
    from repro.net.handshake import HandshakeError
    try:
        kind, payload = decode_frame(channel.recv_bytes())
        if kind is not FrameKind.HELLO:
            raise RuntimeError(f"expected HELLO, got {kind}")
        config, tiles, index = payload
        if welcome.config_fingerprint and \
                config.content_hash() != welcome.config_fingerprint:
            raise HandshakeError(
                "config fingerprint mismatch between handshake "
                f"({welcome.config_fingerprint}) and HELLO "
                f"({config.content_hash()}); refusing to desync")
        worker = Worker(channel, index, config, tiles)
        # Net wire v3: a worker joining mid-fast-forward starts
        # functional; a SET_MODE frame follows HELLO regardless.
        worker.kernel.exec_functional = (
            getattr(welcome, "mode", "detailed") == "functional")
        worker.loop()
    except (EOFError, ChannelClosedError, KeyboardInterrupt):
        pass  # coordinator gone: nothing left to serve
    finally:
        channel.close()


def _channel_worker_main(channel, process_index: int) -> None:
    from repro.net.channel import ChannelClosedError
    try:
        kind, payload = decode_frame(channel.recv_bytes())
        if kind is not FrameKind.HELLO:
            raise RuntimeError(f"expected HELLO, got {kind}")
        config, tiles, index = payload
        if index < 0:
            index = process_index
        Worker(channel, index, config, tiles).loop()
    except (EOFError, ChannelClosedError, KeyboardInterrupt):
        pass
    finally:
        try:
            channel.close()
        except Exception:
            pass
