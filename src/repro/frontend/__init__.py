"""Front-end: the dynamic-binary-translator substitute.

Real Graphite uses Pin to run x86 binaries natively, trapping memory
references, system calls, synchronization and user-level messages into
the back-end.  This package provides the equivalent trap stream from
*target programs written as Python generators*: each program yields
typed ops (:mod:`repro.frontend.ops`), the interpreter
(:mod:`repro.frontend.interpreter`) executes them against the core,
memory, network and system models, and the user API
(:mod:`repro.frontend.api`) gives programs the same surface Graphite
applications see — pthreads-style spawn/join, locks and barriers, the
core-to-core messaging API, malloc, and system calls.
"""

from repro.frontend.api import ThreadContext
from repro.frontend.trace import Trace, TraceRecorder, replay_program
from repro.frontend.interpreter import ThreadInterpreter
from repro.frontend.ops import (
    BarrierWait,
    Branch,
    Compute,
    Free,
    Join,
    Load,
    Lock,
    Malloc,
    Recv,
    Send,
    Spawn,
    Store,
    Syscall,
    Unlock,
)

__all__ = [
    "BarrierWait",
    "Branch",
    "Compute",
    "Free",
    "Join",
    "Load",
    "Lock",
    "Malloc",
    "Recv",
    "Send",
    "Spawn",
    "Store",
    "Syscall",
    "ThreadContext",
    "Trace",
    "TraceRecorder",
    "replay_program",
    "ThreadInterpreter",
    "Unlock",
]
