"""The user-level API target programs are written against.

Mirrors the surface a Graphite application sees: pthreads-style thread
management, mutexes and barriers, the core-to-core messaging API,
malloc/free, and system calls — plus typed load/store helpers, since
our "binaries" are Python generators rather than x86.

Every method is a *sub-generator*: programs call them with
``yield from`` and receive results via ``return``.  The raw ops they
yield are consumed by :class:`repro.frontend.interpreter.ThreadInterpreter`.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Iterable, Optional

from repro.common.ids import ThreadId
from repro.core.isa import InstructionClass
from repro.frontend import ops

_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


class ThreadContext:
    """One thread's handle on the simulated machine."""

    def __init__(self, thread_id: ThreadId, num_tiles: int) -> None:
        self.thread_id = thread_id
        self.num_tiles = num_tiles
        self._branch_seq = 0

    # -- computation -----------------------------------------------------------

    #: Largest single Compute batch; bigger requests are chunked so the
    #: scheduler's quantum and the sync models' cycle limits stay
    #: responsive even inside long compute loops.
    COMPUTE_CHUNK = 256

    def compute(self, count: int = 1,
                klass: InstructionClass = InstructionClass.GENERIC):
        """Retire ``count`` instructions of ``klass``."""
        while count > self.COMPUTE_CHUNK:
            yield ops.Compute(self.COMPUTE_CHUNK, klass)
            count -= self.COMPUTE_CHUNK
        if count > 0:
            yield ops.Compute(count, klass)

    def fp_compute(self, count: int = 1):
        """Floating-point work (multiply-class, the common kernel mix)."""
        yield ops.Compute(count, InstructionClass.FPU_MUL)

    def branch(self, taken: bool, pc: Optional[int] = None):
        """A conditional branch; ``pc`` distinguishes static branches."""
        if pc is None:
            self._branch_seq += 1
            pc = (int(self.thread_id) << 20) | (self._branch_seq & 0xFFFFF)
        yield ops.Branch(taken, pc)

    # -- raw memory ---------------------------------------------------------------

    def load(self, address: int, size: int):
        """Read raw bytes from target memory."""
        data = yield ops.Load(address, size)
        return data

    def store(self, address: int, data: bytes):
        """Write raw bytes to target memory."""
        yield ops.Store(address, data)

    # -- typed memory ------------------------------------------------------------------

    def load_u64(self, address: int):
        data = yield ops.Load(address, 8)
        return _U64.unpack(data)[0]

    def store_u64(self, address: int, value: int):
        yield ops.Store(address, _U64.pack(value & 0xFFFFFFFFFFFFFFFF))

    def load_i64(self, address: int):
        data = yield ops.Load(address, 8)
        return _I64.unpack(data)[0]

    def store_i64(self, address: int, value: int):
        yield ops.Store(address, _I64.pack(value))

    def load_f64(self, address: int):
        data = yield ops.Load(address, 8)
        return _F64.unpack(data)[0]

    def store_f64(self, address: int, value: float):
        yield ops.Store(address, _F64.pack(value))

    def load_u32(self, address: int):
        data = yield ops.Load(address, 4)
        return int.from_bytes(data, "little")

    def store_u32(self, address: int, value: int):
        yield ops.Store(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    # -- bulk helpers ---------------------------------------------------------------------

    def memset(self, address: int, value: int, size: int,
               chunk: int = 64):
        """Write ``size`` bytes of ``value``, one chunk per store."""
        pattern = bytes([value & 0xFF]) * chunk
        done = 0
        while done < size:
            n = min(chunk, size - done)
            yield ops.Store(address + done, pattern[:n])
            done += n

    def memcpy(self, dst: int, src: int, size: int, chunk: int = 64):
        """Copy target memory, chunk by chunk."""
        done = 0
        while done < size:
            n = min(chunk, size - done)
            data = yield ops.Load(src + done, n)
            yield ops.Store(dst + done, data)
            done += n

    # -- heap ----------------------------------------------------------------------------------

    def malloc(self, size: int, align: int = 8):
        """Allocate target heap memory; returns the address."""
        address = yield ops.Malloc(size, align)
        return address

    def calloc(self, size: int, align: int = 64):
        """Allocate and zero (line-aligned by default)."""
        address = yield ops.Malloc(size, align)
        yield from self.memset(address, 0, size)
        return address

    def free(self, address: int):
        yield ops.Free(address)

    # -- messaging (the user API of paper §3.3) ----------------------------------------------------

    def send(self, dst: ThreadId, payload: bytes,
             tag: Optional[int] = None):
        """Send a core-to-core message."""
        yield ops.Send(dst, payload, tag)

    def send_u64(self, dst: ThreadId, value: int,
                 tag: Optional[int] = None):
        yield ops.Send(dst, _U64.pack(value), tag)

    def recv(self, src: Optional[ThreadId] = None,
             tag: Optional[int] = None):
        """Blocking receive; returns ``(src_thread, payload)``."""
        result = yield ops.Recv(src, tag)
        return result

    def recv_u64(self, src: Optional[ThreadId] = None,
                 tag: Optional[int] = None):
        sender, payload = yield ops.Recv(src, tag)
        return sender, _U64.unpack(payload)[0]

    # -- synchronization -------------------------------------------------------------------------------

    def lock(self, address: int):
        """Acquire the mutex at ``address`` (futex-backed)."""
        yield ops.Lock(address)

    def unlock(self, address: int):
        yield ops.Unlock(address)

    def barrier(self, address: int, participants: int):
        """Wait at the application barrier at ``address``."""
        yield ops.BarrierWait(address, participants)

    # -- threads ------------------------------------------------------------------------------------------

    def spawn(self, program: Callable[..., Any], *args: Any):
        """Create a thread running ``program(ctx, *args)``; returns its id."""
        thread = yield ops.Spawn(program, tuple(args))
        return thread

    def join(self, thread: ThreadId):
        """Wait for ``thread`` to finish."""
        yield ops.Join(thread)

    def spawn_workers(self, program: Callable[..., Any], count: int,
                      *args: Any):
        """Spawn ``count`` workers, passing each its worker index first."""
        threads = []
        for index in range(count):
            thread = yield ops.Spawn(program, (index,) + tuple(args))
            threads.append(thread)
        return threads

    def join_all(self, threads: Iterable[ThreadId]):
        for thread in threads:
            yield ops.Join(thread)

    # -- system calls ----------------------------------------------------------------------------------------

    def syscall(self, name: str, *args: Any):
        result = yield ops.Syscall(name, tuple(args))
        return result

    def open(self, path: str, flags: int = 0):
        fd = yield ops.Syscall("open", (path, flags))
        return fd

    def read(self, fd: int, count: int):
        data = yield ops.Syscall("read", (fd, count))
        return data

    def write(self, fd: int, data: bytes):
        written = yield ops.Syscall("write", (fd, data))
        return written

    def close(self, fd: int):
        yield ops.Syscall("close", (fd,))

    def fstat(self, fd: int):
        result = yield ops.Syscall("fstat", (fd,))
        return result
