"""The interpreter: executes one thread's op stream against the models.

This is the meeting point of the whole back-end (Figure 2b): each op a
program yields is dispatched to the core performance model (timing),
the memory controller (functional bytes + timing), the network fabric
(messaging), or the MCP (synchronization, threads, system calls), and
the host cost of every event is charged to the scheduler.

Blocking ops return a ``BLOCKED`` quantum; the scheduler re-runs the
interpreter after a wake-up and the *same op object* is retried (its
mutable progress flags prevent duplicated side effects).  A wake-up
carries the waker's simulated timestamp, which forwards this tile's
clock — the lax synchronization rule.

Checkpointing: the program generator itself cannot pickle, so when
checkpoints are enabled (``config.ckpt.dir``) the interpreter records
every value passed to ``generator.send`` and a restore re-creates the
generator from the program reference and replays that log — pure
generator stepping, with every replayed op discarded (the models
already hold the post-op state from the snapshot).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.common.errors import CheckpointError, SimulationError
from repro.common.ids import ThreadId, TileId
from repro.core.instruction import (
    BranchInstruction,
    Instruction,
    MemoryInstruction,
    PseudoInstruction,
    PseudoKind,
)
from repro.core.isa import InstructionClass
from repro.core.factory import create_core_model
from repro.frontend import ops
from repro.frontend.api import ThreadContext
from repro.host.scheduler import QuantumResult, QuantumStatus, ThreadTask
from repro.transport.message import MessageKind

# Simulated-cycle costs of runtime services (the user-level library and
# trap handling around the raw system events).
SEND_CYCLES = 20
RECV_CYCLES = 20
SPAWN_CYCLES = 2000
JOIN_CYCLES = 100
MALLOC_CYCLES = 60
FREE_CYCLES = 40
LOCK_ALU_CYCLES = 4
SYSCALL_TRAP_CYCLES = 200

#: Synthetic code footprint walked by instruction fetches, per program
#: (the hot loop of a kernel; fits comfortably in the L1I).
CODE_FOOTPRINT_BYTES = 1024

#: Sentinel: the current op blocked; retry it after a wake-up.
_BLOCK = object()

#: Wire overhead of a user message (header bytes).
USER_MESSAGE_HEADER = 8


class ThreadInterpreter(ThreadTask):
    """Drives one application thread (generator) to completion."""

    def __init__(self, kernel: Any, tile: TileId, program: Any,
                 args: tuple = (), start_clock: int = 0) -> None:
        self.kernel = kernel
        self.tile = tile
        self.program = program
        self.args = tuple(args)
        #: Shippable identity of ``program`` (a ``WorkloadRef`` /
        #: ``PickledProgram``), set by the spawner when known; used to
        #: re-create the generator after a checkpoint restore.
        self.program_ref: Any = None
        stats = kernel.stats.child(f"thread{int(tile)}")
        core_config = kernel.config.core_config_for(int(tile))
        channel = None
        tele_bus = getattr(kernel, "telemetry", None)
        if tele_bus is not None:
            from repro.telemetry.events import EventCategory
            channel = tele_bus.channel(EventCategory.SYNC)
        self.core = create_core_model(core_config, stats.child("core"),
                                      telemetry=channel, tile=int(tile))
        #: Runtime sanitizers (``--sanitize``), or ``None``.
        self._sanitizers = getattr(kernel, "sanitizers", None)
        self.core.clock.forward_to(start_clock)
        self.memory = kernel.controllers[int(tile)]
        self.netif = kernel.fabric.interface(tile)
        self.context = ThreadContext(ThreadId(int(tile)),
                                     kernel.config.num_tiles)
        self.generator = program(self.context, *args)
        #: Clock at which this thread began (its spawn timestamp).
        self.start_clock = start_clock
        self._send_value: Any = None
        self._pending_op: Any = None
        self._wake_time: Optional[int] = None
        self._finished = False
        #: Value returned by the program generator, if any.
        self.result: Any = None
        self._fetch_cursor = 0
        self._code_base = kernel.code_base(program)
        self._model_ifetch = kernel.config.memory.l1i.enabled
        self._l1i_hit_latency = kernel.config.memory.l1i.access_latency
        #: Replay log for checkpoint/restore: every value handed to
        #: ``generator.send`` since genesis, or ``None`` when the run
        #: is not snapshottable.  Cleared when the thread finishes.
        #: Shard migration (:mod:`repro.net`) rides the same log — a
        #: migrated interpreter is rebuilt by replay on the adopting
        #: worker — so migration-capable runs keep it too.
        ckpt = getattr(kernel.config, "ckpt", None)
        distrib = getattr(kernel.config, "distrib", None)
        snapshottable = (ckpt is not None and ckpt.enabled) or (
            distrib is not None
            and getattr(distrib, "migration_capable", None) is not None
            and distrib.migration_capable())
        self._ckpt_log: Optional[List[Any]] = (
            [] if snapshottable else None)

    # -- ThreadTask interface ------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.core.cycles

    def notify_wake(self, timestamp: int) -> None:
        """Forward the clock to a wake event's timestamp.

        The forward happens eagerly (the wake IS the synchronization
        event), and the timestamp is also remembered so the retried op
        charges its sync-wait statistics on resume.
        """
        self.core.clock.forward_to(timestamp)
        if self._sanitizers is not None:
            self._sanitizers.on_interaction(int(self.tile), timestamp,
                                            self.core.cycles)
        if self._wake_time is None or timestamp > self._wake_time:
            self._wake_time = timestamp

    def run(self, budget_instructions: int,
            cycle_limit: Optional[int] = None) -> QuantumResult:
        if self._finished:
            raise SimulationError("running a finished thread")
        # Execution mode is sampled once per quantum: the scheduler only
        # flips it at quantum boundaries (:mod:`repro.sample`).
        functional = bool(getattr(self.kernel, "exec_functional", False))
        handlers = self._FF_HANDLERS if functional else self._HANDLERS
        executed = 0
        while executed < budget_instructions:
            if cycle_limit is not None and self.core.cycles >= cycle_limit:
                return QuantumResult(QuantumStatus.RAN, executed)
            if self._pending_op is not None:
                op = self._pending_op
                self._consume_wake(functional)
            else:
                if self._ckpt_log is not None:
                    self._ckpt_log.append(self._send_value)
                try:
                    op = self.generator.send(self._send_value)
                except StopIteration as stop:
                    self.result = stop.value
                    return self._finish(executed)
                self._send_value = None
            handler = handlers.get(type(op))
            if handler is None:
                raise SimulationError(f"unknown front-end op {op!r}")
            result = handler(self, op)
            if result is _BLOCK:
                self._pending_op = op
                return QuantumResult(QuantumStatus.BLOCKED, executed)
            self._pending_op = None
            self._send_value = result
            executed += op.count if isinstance(op, ops.Compute) else 1
        return QuantumResult(QuantumStatus.RAN, executed)

    def _finish(self, executed: int) -> QuantumResult:
        self._finished = True
        # A finished thread never replays; drop the log so snapshots
        # of long runs do not keep every completed thread's history.
        self._ckpt_log = None
        # Retire everything in flight before reporting the final clock.
        self.core.drain()
        self.kernel.thread_finished(self.tile, self.core.cycles)
        return QuantumResult(QuantumStatus.DONE, executed)

    # -- checkpoint support ---------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle everything except the generator (unpicklable).

        The program is replaced by its shippable reference so the
        snapshot never embeds a workload-builder closure; restore
        resolves it back and :meth:`rebuild_generator` replays the
        send log to reconstruct the generator's position.
        """
        state = dict(self.__dict__)
        state["generator"] = None
        ref = self.program_ref
        if ref is None:
            from repro.distrib.wire import make_program_ref
            ref = make_program_ref(self.program)
        state["program"] = ref
        state["program_ref"] = ref
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if hasattr(self.program, "resolve"):
            self.program = self.program.resolve()

    def rebuild_generator(self) -> None:
        """Reconstruct the generator after a restore by replaying.

        Re-creates the generator from the resolved program and feeds
        it the recorded send values; every op it yields during replay
        is discarded — the models already hold the post-op state from
        the snapshot, and a blocked thread retries its pickled
        ``_pending_op`` (which carries the mutated progress flags),
        not the freshly-yielded duplicate.
        """
        if self._finished or self.generator is not None:
            return
        if self._ckpt_log is None:
            raise CheckpointError(
                f"tile {int(self.tile)}: no replay log in snapshot")
        generator = self.program(self.context, *self.args)
        for index, value in enumerate(self._ckpt_log):
            try:
                generator.send(value)
            except StopIteration:
                raise CheckpointError(
                    f"tile {int(self.tile)}: replay ended after "
                    f"{index} of {len(self._ckpt_log)} sends — the "
                    f"program is not deterministic") from None
        self.generator = generator

    def _consume_wake(self, functional: bool = False) -> None:
        if self._wake_time is not None:
            if functional:
                self.core.clock.forward_to(self._wake_time)
            else:
                self.core.execute_pseudo(PseudoInstruction(
                    PseudoKind.SYNC, time=self._wake_time))
            self._wake_time = None

    # -- op dispatch ------------------------------------------------------------------

    def _execute(self, op: Any) -> Any:
        handler = self._HANDLERS.get(type(op))
        if handler is None:
            raise SimulationError(f"unknown front-end op {op!r}")
        return handler(self, op)

    def _fetch(self) -> None:
        """Model the instruction fetch for one op (one basic block)."""
        if not self._model_ifetch:
            return
        pc = self._code_base + self._fetch_cursor
        self._fetch_cursor = (self._fetch_cursor + 64) % CODE_FOOTPRINT_BYTES
        latency = self.memory.fetch(pc, self.core.cycles)
        if latency > self._l1i_hit_latency:
            # Only the miss portion stalls; hit latency is pipelined.
            self.core.clock.advance(latency - self._l1i_hit_latency)

    # -- computational ops ----------------------------------------------------------------

    def _op_compute(self, op: ops.Compute) -> None:
        self._fetch()
        self.core.execute(Instruction(op.klass, op.count))
        self.kernel.charge(self.kernel.cost_model.instructions(op.count))

    def _op_branch(self, op: ops.Branch) -> None:
        self._fetch()
        pc = op.pc if op.pc is not None else self._code_base
        self.core.execute_branch(BranchInstruction(pc, op.taken))
        self.kernel.charge(self.kernel.cost_model.instructions(1))

    # -- memory ops ------------------------------------------------------------------------

    def _op_load(self, op: ops.Load) -> bytes:
        self._fetch()
        data, latency = self.memory.load(op.address, op.size,
                                         self.core.cycles)
        self.core.execute_memory(MemoryInstruction(
            InstructionClass.LOAD, op.address, op.size, latency))
        self.kernel.charge(self.kernel.cost_model.instructions(1))
        return data

    def _op_store(self, op: ops.Store) -> None:
        self._fetch()
        latency = self.memory.store(op.address, op.data, self.core.cycles)
        self.core.execute_memory(MemoryInstruction(
            InstructionClass.STORE, op.address, len(op.data), latency))
        self.kernel.charge(self.kernel.cost_model.instructions(1))

    def _op_malloc(self, op: ops.Malloc) -> int:
        self.core.clock.advance(MALLOC_CYCLES)
        self.kernel.charge(self.kernel.cost_model.model_trap())
        return self.kernel.allocator.malloc(op.size, op.align)

    def _op_free(self, op: ops.Free) -> None:
        self.core.clock.advance(FREE_CYCLES)
        self.kernel.charge(self.kernel.cost_model.model_trap())
        self.kernel.allocator.free(op.address)

    # -- messaging -----------------------------------------------------------------------------

    def _op_send(self, op: ops.Send) -> None:
        self.core.execute(Instruction(InstructionClass.GENERIC,
                                      SEND_CYCLES))
        dst_tile = TileId(int(op.dst))
        self.netif.send(dst_tile, payload=(int(self.tile), op.payload),
                        kind=MessageKind.USER,
                        size_bytes=len(op.payload) + USER_MESSAGE_HEADER,
                        timestamp=self.core.cycles, tag=op.tag)
        # The receiver may be blocked in Recv; let it re-check.
        self.kernel.wake_scheduler(dst_tile)

    def _op_recv(self, op: ops.Recv) -> Any:
        src_tile = TileId(int(op.src)) if op.src is not None else None
        message = self.netif.poll_match(MessageKind.USER, src=src_tile,
                                        tag=op.tag)
        if message is None:
            return _BLOCK
        # "Message receive pseudo-instruction" (paper §3.1): the clock
        # forwards to the message's arrival time, then pays recv cost.
        self.core.execute_pseudo(PseudoInstruction(
            PseudoKind.MESSAGE_RECEIVE, time=message.arrival_time,
            cost=RECV_CYCLES))
        if self._sanitizers is not None:
            self._sanitizers.on_interaction(
                int(self.tile), message.arrival_time, self.core.cycles)
        sender, payload = message.payload
        return (ThreadId(sender), payload)

    # -- synchronization ---------------------------------------------------------------------------

    def _rmw_lock_word(self, address: int) -> int:
        """Atomic RMW on a lock word: the coherence traffic of a futex.

        Returns the value read.  The word is acquired exclusively (a
        cmpxchg needs ownership) so contended locks really ping-pong.
        """
        data, load_latency = self.memory.load(address, 8, self.core.cycles)
        self.core.execute_memory(MemoryInstruction(
            InstructionClass.LOAD, address, 8, load_latency))
        value = int.from_bytes(data, "little")
        store_latency = self.memory.store(
            address, data, self.core.cycles)  # ownership acquisition
        self.core.execute_memory(MemoryInstruction(
            InstructionClass.STORE, address, 8, store_latency))
        self.core.execute(Instruction(InstructionClass.IALU,
                                      LOCK_ALU_CYCLES))
        self.kernel.charge(self.kernel.cost_model.instructions(4))
        return value

    def _op_lock(self, op: ops.Lock) -> Any:
        value = self._rmw_lock_word(op.address)
        if value == 0:
            holder = int(self.tile) + 1  # nonzero == locked
            latency = self.memory.store(
                op.address, holder.to_bytes(8, "little"), self.core.cycles)
            self.core.execute_memory(MemoryInstruction(
                InstructionClass.STORE, op.address, 8, latency))
            return None
        # Contended: forward to the MCP futex (system network round trip)
        # and sleep until an unlock wakes us.
        self._system_round_trip()
        self.core.clock.advance(SYSCALL_TRAP_CYCLES)
        self.kernel.mcp.futex.wait(op.address, self.tile)
        return _BLOCK

    def _op_unlock(self, op: ops.Unlock) -> None:
        latency = self.memory.store(op.address, bytes(8), self.core.cycles)
        self.core.execute_memory(MemoryInstruction(
            InstructionClass.STORE, op.address, 8, latency))
        self.kernel.charge(self.kernel.cost_model.instructions(2))
        woken = self.kernel.mcp.futex.wake(op.address, 1, self.core.cycles)
        if woken:
            self._system_round_trip()

    def _op_barrier(self, op: ops.BarrierWait) -> Any:
        if not op.registered:
            self._rmw_lock_word(op.address)
            self._system_round_trip()
            release = self.kernel.mcp.barrier_arrive(
                op.address, op.participants, self.tile, self.core.cycles)
            op.registered = True
            if release is None:
                return _BLOCK
            op.registered = False
            self.core.execute_pseudo(PseudoInstruction(
                PseudoKind.SYNC, time=release))
            return None
        # Retried after a wake: released unless we are still registered.
        if self.kernel.mcp.barrier_is_waiting(op.address, self.tile):
            return _BLOCK
        op.registered = False
        return None

    # -- threads -----------------------------------------------------------------------------------

    def _op_spawn(self, op: ops.Spawn) -> ThreadId:
        self._system_round_trip()
        self.core.clock.advance(SPAWN_CYCLES)
        child = self.kernel.spawn_thread(op.program, op.args, self.tile,
                                         self.core.cycles)
        return child

    def _op_join(self, op: ops.Join) -> Any:
        target = TileId(int(op.thread))
        if not op.registered:
            self._system_round_trip()
            self.core.clock.advance(JOIN_CYCLES)
            final = self.kernel.mcp.threads.try_join(self.tile, target)
            op.registered = True
            if final is None:
                return _BLOCK
            op.registered = False
            self.core.execute_pseudo(PseudoInstruction(
                PseudoKind.SYNC, time=final))
            return None
        final = self.kernel.mcp.threads.final_clock(target)
        if final is None:
            return _BLOCK  # spurious wake; child still running
        op.registered = False
        return None

    # -- system calls -----------------------------------------------------------------------------------

    def _op_syscall(self, op: ops.Syscall) -> Any:
        self._system_round_trip()
        self.core.clock.advance(SYSCALL_TRAP_CYCLES)
        self.kernel.charge(self.kernel.cost_model.model_trap())
        return self.kernel.mcp.syscalls.execute(op.name, op.args)

    # -- helpers -------------------------------------------------------------------------------------------

    def _system_round_trip(self) -> None:
        """A control round trip to the MCP over the system network."""
        from repro.system.mcp import MCP_TILE
        clock = self.core.cycles
        out = self.kernel.fabric.transfer(self.tile, MCP_TILE,
                                          MessageKind.SYSTEM, 32, clock)
        self.kernel.fabric.transfer(MCP_TILE, self.tile,
                                    MessageKind.SYSTEM, 32, clock + out)

    # -- functional fast-forward handlers (:mod:`repro.sample`) -------------------------

    # Every handler below performs the *identical* functional work as
    # its detailed twin — bytes move, locks acquire, messages deliver,
    # threads spawn — but time is accounted at fixed unit cost: no
    # instruction fetch, no branch predictor, no LSU, no host-cost
    # charges.  The instruction counter advances by the same amounts as
    # the detailed handlers so fast-forwarded instruction totals remain
    # comparable.  Crucially, nothing here depends on the core or
    # network configuration, so variants forked from a shared
    # fast-forward snapshot see byte-identical architectural state.

    def _ff_compute(self, op: ops.Compute) -> None:
        self.core.retire_functional(op.count)

    def _ff_branch(self, op: ops.Branch) -> None:
        self.core.retire_functional(1)

    def _ff_load(self, op: ops.Load) -> bytes:
        data, _ = self.memory.load(op.address, op.size, self.core.cycles)
        self.core.retire_functional(1)
        return data

    def _ff_store(self, op: ops.Store) -> None:
        self.memory.store(op.address, op.data, self.core.cycles)
        self.core.retire_functional(1)

    def _ff_malloc(self, op: ops.Malloc) -> int:
        self.core.clock.advance(MALLOC_CYCLES)
        return self.kernel.allocator.malloc(op.size, op.align)

    def _ff_free(self, op: ops.Free) -> None:
        self.core.clock.advance(FREE_CYCLES)
        self.kernel.allocator.free(op.address)

    def _ff_send(self, op: ops.Send) -> None:
        self.core.retire_functional(SEND_CYCLES)
        dst_tile = TileId(int(op.dst))
        self.netif.send(dst_tile, payload=(int(self.tile), op.payload),
                        kind=MessageKind.USER,
                        size_bytes=len(op.payload) + USER_MESSAGE_HEADER,
                        timestamp=self.core.cycles, tag=op.tag)
        self.kernel.wake_scheduler(dst_tile)

    def _ff_recv(self, op: ops.Recv) -> Any:
        src_tile = TileId(int(op.src)) if op.src is not None else None
        message = self.netif.poll_match(MessageKind.USER, src=src_tile,
                                        tag=op.tag)
        if message is None:
            return _BLOCK
        self.core.clock.forward_to(message.arrival_time)
        self.core.clock.advance(RECV_CYCLES)
        sender, payload = message.payload
        return (ThreadId(sender), payload)

    def _ff_rmw_lock_word(self, address: int) -> int:
        data, _ = self.memory.load(address, 8, self.core.cycles)
        self.memory.store(address, data, self.core.cycles)
        self.core.retire_functional(2 + LOCK_ALU_CYCLES)
        return int.from_bytes(data, "little")

    def _ff_lock(self, op: ops.Lock) -> Any:
        value = self._ff_rmw_lock_word(op.address)
        if value == 0:
            holder = int(self.tile) + 1
            self.memory.store(op.address, holder.to_bytes(8, "little"),
                              self.core.cycles)
            self.core.retire_functional(1)
            return None
        self.core.clock.advance(SYSCALL_TRAP_CYCLES)
        self.kernel.mcp.futex.wait(op.address, self.tile)
        return _BLOCK

    def _ff_unlock(self, op: ops.Unlock) -> None:
        self.memory.store(op.address, bytes(8), self.core.cycles)
        self.core.retire_functional(1)
        self.kernel.mcp.futex.wake(op.address, 1, self.core.cycles)

    def _ff_barrier(self, op: ops.BarrierWait) -> Any:
        if not op.registered:
            self._ff_rmw_lock_word(op.address)
            release = self.kernel.mcp.barrier_arrive(
                op.address, op.participants, self.tile, self.core.cycles)
            op.registered = True
            if release is None:
                return _BLOCK
            op.registered = False
            self.core.clock.forward_to(release)
            return None
        if self.kernel.mcp.barrier_is_waiting(op.address, self.tile):
            return _BLOCK
        op.registered = False
        return None

    def _ff_spawn(self, op: ops.Spawn) -> ThreadId:
        self.core.clock.advance(SPAWN_CYCLES)
        return self.kernel.spawn_thread(op.program, op.args, self.tile,
                                        self.core.cycles)

    def _ff_join(self, op: ops.Join) -> Any:
        target = TileId(int(op.thread))
        if not op.registered:
            self.core.clock.advance(JOIN_CYCLES)
            final = self.kernel.mcp.threads.try_join(self.tile, target)
            op.registered = True
            if final is None:
                return _BLOCK
            op.registered = False
            self.core.clock.forward_to(final)
            return None
        final = self.kernel.mcp.threads.final_clock(target)
        if final is None:
            return _BLOCK
        op.registered = False
        return None

    def _ff_syscall(self, op: ops.Syscall) -> Any:
        self.core.clock.advance(SYSCALL_TRAP_CYCLES)
        return self.kernel.mcp.syscalls.execute(op.name, op.args)

    _HANDLERS = {
        ops.Compute: _op_compute,
        ops.Branch: _op_branch,
        ops.Load: _op_load,
        ops.Store: _op_store,
        ops.Malloc: _op_malloc,
        ops.Free: _op_free,
        ops.Send: _op_send,
        ops.Recv: _op_recv,
        ops.Lock: _op_lock,
        ops.Unlock: _op_unlock,
        ops.BarrierWait: _op_barrier,
        ops.Spawn: _op_spawn,
        ops.Join: _op_join,
        ops.Syscall: _op_syscall,
    }

    _FF_HANDLERS = {
        ops.Compute: _ff_compute,
        ops.Branch: _ff_branch,
        ops.Load: _ff_load,
        ops.Store: _ff_store,
        ops.Malloc: _ff_malloc,
        ops.Free: _ff_free,
        ops.Send: _ff_send,
        ops.Recv: _ff_recv,
        ops.Lock: _ff_lock,
        ops.Unlock: _ff_unlock,
        ops.BarrierWait: _ff_barrier,
        ops.Spawn: _ff_spawn,
        ops.Join: _ff_join,
        ops.Syscall: _ff_syscall,
    }
