"""Ops yielded by target thread programs.

Each op corresponds to a class of event the DBT front-end would trap in
real Graphite: instruction retirement, memory references, messaging,
synchronization, thread management and system calls.  Blocking ops
(``Recv``, ``Lock``, ``BarrierWait``, ``Join``) may be re-executed by
the interpreter after a wake-up; they carry mutable progress flags so a
retry does not repeat side effects such as MCP registration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from repro.common.ids import ThreadId
from repro.core.isa import InstructionClass


@dataclass
class Compute:
    """A batch of ``count`` computational instructions of one class."""

    count: int = 1
    klass: InstructionClass = InstructionClass.GENERIC


@dataclass
class Branch:
    """A conditional branch with its dynamic outcome."""

    taken: bool
    #: Static identity of the branch for the predictor; the API layer
    #: synthesises one from the yield site when omitted.
    pc: Optional[int] = None


@dataclass
class Load:
    """Read ``size`` bytes of target memory; yields the bytes back."""

    address: int
    size: int


@dataclass
class Store:
    """Write bytes to target memory."""

    address: int
    data: bytes


@dataclass
class Malloc:
    """Allocate target heap memory; yields the address back."""

    size: int
    align: int = 8


@dataclass
class Free:
    """Release a Malloc'd block."""

    address: int


@dataclass
class Send:
    """Send a user-level message to another thread (paper §3.3)."""

    dst: ThreadId
    payload: bytes
    tag: Optional[int] = None


@dataclass
class Recv:
    """Receive a user-level message; blocks until one matches.

    Yields back ``(src_thread, payload)``.
    """

    src: Optional[ThreadId] = None
    tag: Optional[int] = None


@dataclass
class Lock:
    """Acquire the mutex whose lock word lives at ``address``."""

    address: int


@dataclass
class Unlock:
    """Release the mutex at ``address``."""

    address: int


@dataclass
class BarrierWait:
    """Wait on the application barrier at ``address``.

    ``participants`` is the total number of threads that must arrive.
    """

    address: int
    participants: int
    #: Interpreter progress flag: arrival already registered at the MCP.
    registered: bool = field(default=False, compare=False)


@dataclass
class Spawn:
    """Create a new application thread; yields back its ThreadId.

    ``program`` is a generator function ``program(ctx, *args)``.
    """

    program: Callable[..., Any]
    args: Tuple = ()


@dataclass
class Join:
    """Wait for another thread to finish."""

    thread: ThreadId
    #: Interpreter progress flag: joiner registered with the MCP.
    registered: bool = field(default=False, compare=False)


@dataclass
class Syscall:
    """An intercepted system call, forwarded to the MCP."""

    name: str
    args: Tuple = ()
