"""Trace capture and replay: trace-driven simulation mode.

The front-end's producer-consumer split (paper §3.1) means the back-end
does not care *who* produces the op stream.  This module records the
per-thread op streams of a live run and replays them later — the
classic trace-driven mode: capture a workload once, then re-simulate it
under different target architectures without re-executing the program
logic.

Semantics of replay: the recorded ops are re-issued verbatim (same
addresses, same data, same synchronization), and yielded results are
discarded — control flow was already resolved at capture time.  Replay
therefore produces identical functional state and instruction counts,
while timing responds to whatever architecture the replay runs on.

``Spawn`` ops cannot serialize a program callable; the recorder instead
notes the spawned thread's id, and the replayer substitutes a replay
program for that thread's recorded trace.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.common.errors import SimulationError
from repro.common.ids import ThreadId
from repro.core.isa import InstructionClass
from repro.frontend import ops

#: Op-type registry for (de)serialisation.
_OP_TYPES = {
    "compute": ops.Compute,
    "branch": ops.Branch,
    "load": ops.Load,
    "store": ops.Store,
    "malloc": ops.Malloc,
    "free": ops.Free,
    "send": ops.Send,
    "recv": ops.Recv,
    "lock": ops.Lock,
    "unlock": ops.Unlock,
    "barrier": ops.BarrierWait,
    "spawn": ops.Spawn,
    "join": ops.Join,
    "syscall": ops.Syscall,
}
_OP_NAMES = {cls: name for name, cls in _OP_TYPES.items()}


def _encode_op(op: Any, spawned_thread: Optional[int] = None) -> Dict:
    """One op -> a JSON-compatible record."""
    name = _OP_NAMES.get(type(op))
    if name is None:
        raise SimulationError(f"cannot trace op {op!r}")
    record: Dict[str, Any] = {"op": name}
    if isinstance(op, ops.Compute):
        record.update(count=op.count, klass=op.klass.value)
    elif isinstance(op, ops.Branch):
        record.update(taken=op.taken, pc=op.pc)
    elif isinstance(op, ops.Load):
        record.update(address=op.address, size=op.size)
    elif isinstance(op, ops.Store):
        record.update(address=op.address, data=op.data.hex())
    elif isinstance(op, ops.Malloc):
        record.update(size=op.size, align=op.align)
    elif isinstance(op, ops.Free):
        record.update(address=op.address)
    elif isinstance(op, ops.Send):
        record.update(dst=int(op.dst), payload=op.payload.hex(),
                      tag=op.tag)
    elif isinstance(op, ops.Recv):
        record.update(src=None if op.src is None else int(op.src),
                      tag=op.tag)
    elif isinstance(op, (ops.Lock, ops.Unlock)):
        record.update(address=op.address)
    elif isinstance(op, ops.BarrierWait):
        record.update(address=op.address, participants=op.participants)
    elif isinstance(op, ops.Spawn):
        record.update(child=spawned_thread)
    elif isinstance(op, ops.Join):
        record.update(thread=int(op.thread))
    elif isinstance(op, ops.Syscall):
        encoded = [{"b": a.hex()} if isinstance(a, bytes) else a
                   for a in op.args]
        record.update(name=op.name, args=encoded)
    return record


def _decode_op(record: Dict,
               spawn_factory: Callable[[int], Any]) -> Any:
    """A JSON record -> an op instance (Spawn via the factory)."""
    kind = record["op"]
    if kind == "compute":
        return ops.Compute(record["count"],
                           InstructionClass(record["klass"]))
    if kind == "branch":
        return ops.Branch(record["taken"], record["pc"])
    if kind == "load":
        return ops.Load(record["address"], record["size"])
    if kind == "store":
        return ops.Store(record["address"], bytes.fromhex(record["data"]))
    if kind == "malloc":
        return ops.Malloc(record["size"], record["align"])
    if kind == "free":
        return ops.Free(record["address"])
    if kind == "send":
        return ops.Send(ThreadId(record["dst"]),
                        bytes.fromhex(record["payload"]), record["tag"])
    if kind == "recv":
        src = record["src"]
        return ops.Recv(None if src is None else ThreadId(src),
                        record["tag"])
    if kind == "lock":
        return ops.Lock(record["address"])
    if kind == "unlock":
        return ops.Unlock(record["address"])
    if kind == "barrier":
        return ops.BarrierWait(record["address"],
                               record["participants"])
    if kind == "spawn":
        return spawn_factory(record["child"])
    if kind == "join":
        return ops.Join(ThreadId(record["thread"]))
    if kind == "syscall":
        args = tuple(bytes.fromhex(a["b"])
                     if isinstance(a, dict) and "b" in a else a
                     for a in record["args"])
        return ops.Syscall(record["name"], args)
    raise SimulationError(f"unknown traced op kind {kind!r}")


class Trace:
    """A captured multi-thread op trace."""

    def __init__(self) -> None:
        #: thread id -> list of op records.
        self.threads: Dict[int, List[Dict]] = {}

    def to_json(self) -> str:
        return json.dumps({"threads": {str(t): records for t, records
                                       in self.threads.items()}})

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        trace = cls()
        data = json.loads(text)
        trace.threads = {int(t): records
                         for t, records in data["threads"].items()}
        return trace

    @property
    def total_ops(self) -> int:
        return sum(len(records) for records in self.threads.values())


class TraceRecorder:
    """Wraps programs so every yielded op is logged per thread."""

    def __init__(self) -> None:
        self.trace = Trace()

    def wrap(self, program: Callable[..., Generator]) -> Callable:
        """A program factory whose threads log their op streams."""

        recorder = self

        def traced_program(ctx, *args):
            thread = int(ctx.thread_id)
            log = recorder.trace.threads.setdefault(thread, [])
            generator = program(ctx, *args)
            reply = None
            while True:
                try:
                    op = generator.send(reply)
                except StopIteration as stop:
                    return stop.value
                if isinstance(op, ops.Spawn):
                    wrapped = ops.Spawn(recorder.wrap(op.program),
                                        op.args)
                    child = yield wrapped
                    log.append(_encode_op(op,
                                          spawned_thread=int(child)))
                    reply = child
                else:
                    reply = yield op
                    log.append(_encode_op(op))

        return traced_program


def replay_program(trace: Trace, thread: int = 0) -> Callable:
    """Build a program that replays one thread's trace.

    Spawn records substitute replay programs of the recorded children,
    so replaying thread 0 reproduces the whole simulation.  Replay
    requires the spawned tile assignment to be reproducible (it is: the
    MCP allocates the lowest free tile deterministically).
    """

    records = trace.threads.get(thread)
    if records is None:
        raise SimulationError(f"trace has no thread {thread}")

    def spawn_factory(child: int) -> ops.Spawn:
        return ops.Spawn(replay_program(trace, child), ())

    def program(ctx, *args):
        for record in records:
            op = _decode_op(record, spawn_factory)
            result = yield op
            if record["op"] == "spawn" and int(result) != record["child"]:
                raise SimulationError(
                    "replay divergence: spawn landed on tile "
                    f"{int(result)}, trace recorded {record['child']}")

    return program
