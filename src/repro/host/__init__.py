"""The simulated host platform (paper Figure 1).

Graphite distributes one simulation across host processes on a cluster;
each process runs one host thread per simulated tile, plus control
threads (MCP/LCP).  This package models that platform: the cluster
layout (machines, cores, processes, tile striping), the per-event host
cost model that substitutes for the paper's real Xeon cluster, and the
scheduler that multiplexes tile threads onto simulated host cores and
derives wall-clock time as a parallel makespan.
"""

from repro.host.cluster import ClusterLayout, Locality
from repro.host.costmodel import HostCostModel

__all__ = ["ClusterLayout", "HostCostModel", "Locality"]
