"""Host cluster layout: machines, cores, processes, and tile placement.

The mapping between tiles and processes is implemented "by simply
striping the tiles across the processes" (paper §3.5); processes are
spread evenly across machines, and each process's tile threads share the
cores of its machine.
"""

from __future__ import annotations

import enum
from typing import List

from repro.common.config import HostConfig
from repro.common.errors import ConfigError
from repro.common.ids import CoreId, ProcessId, TileId


class Locality(enum.Enum):
    """How far apart two tiles are on the host platform."""

    SAME_PROCESS = "same_process"
    SAME_MACHINE = "same_machine"
    CROSS_MACHINE = "cross_machine"


class ClusterLayout:
    """Static placement of tiles onto processes, machines and cores."""

    def __init__(self, num_tiles: int, host: HostConfig) -> None:
        if num_tiles < 1:
            raise ConfigError("cluster: need at least one tile")
        host.validate()
        self.num_tiles = num_tiles
        self.host = host
        self.num_processes = host.resolved_processes()
        self.num_machines = host.num_machines
        self.cores_per_machine = host.cores_per_machine
        if self.num_processes < self.num_machines:
            raise ConfigError("cluster: fewer processes than machines")
        # Precompute hot lookups: tile -> machine and tile -> host core.
        self._machine_of_tile: List[int] = []
        self._core_of_tile: List[CoreId] = []
        per_machine_count = [0] * self.num_machines
        for t in range(num_tiles):
            machine = (t % self.num_processes) % self.num_machines
            slot = per_machine_count[machine] % self.cores_per_machine
            per_machine_count[machine] += 1
            self._machine_of_tile.append(machine)
            self._core_of_tile.append(
                CoreId(machine * self.cores_per_machine + slot))

    # -- placement ----------------------------------------------------------

    def process_of_tile(self, tile: TileId) -> ProcessId:
        """Tile → host process, by striping (paper §3.5)."""
        return ProcessId(int(tile) % self.num_processes)

    def machine_of_process(self, process: ProcessId) -> int:
        """Processes are distributed round-robin across machines."""
        return int(process) % self.num_machines

    def machine_of_tile(self, tile: TileId) -> int:
        return self._machine_of_tile[int(tile)]

    def tiles_of_process(self, process: ProcessId) -> List[TileId]:
        return [TileId(t) for t in range(int(process), self.num_tiles,
                                         self.num_processes)]

    def shards(self) -> List[List[TileId]]:
        """Tile shard of every host process, indexed by process id.

        The distributed backend forks one OS worker per entry and hands
        it exactly this tile list (paper §3.5: tiles striped across
        processes).
        """
        return [self.tiles_of_process(ProcessId(p))
                for p in range(self.num_processes)]

    def core_of_tile(self, tile: TileId) -> CoreId:
        """Host core a tile's thread is scheduled on.

        Tiles of one machine share that machine's cores round-robin; the
        host OS would migrate threads, but a static assignment gives the
        same aggregate load while staying deterministic.
        """
        return self._core_of_tile[int(tile)]

    def tiles_on_machine(self, machine: int) -> List[TileId]:
        return [TileId(t) for t in range(self.num_tiles)
                if self.machine_of_tile(TileId(t)) == machine]

    @property
    def total_cores(self) -> int:
        return self.num_machines * self.cores_per_machine

    def cores_of_machine(self, machine: int) -> List[CoreId]:
        base = machine * self.cores_per_machine
        return [CoreId(base + i) for i in range(self.cores_per_machine)]

    # -- locality -----------------------------------------------------------

    def locality(self, a: TileId, b: TileId) -> Locality:
        """Communication distance class between two tiles."""
        pa, pb = self.process_of_tile(a), self.process_of_tile(b)
        if pa == pb:
            return Locality.SAME_PROCESS
        if self.machine_of_process(pa) == self.machine_of_process(pb):
            return Locality.SAME_MACHINE
        return Locality.CROSS_MACHINE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ClusterLayout(tiles={self.num_tiles}, "
                f"procs={self.num_processes}, "
                f"machines={self.num_machines}x{self.cores_per_machine})")
