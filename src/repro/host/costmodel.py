"""Per-event host-time cost model.

This is the substitute for the paper's physical testbed (§4.1: dual
quad-core Xeon X5460 machines on Gigabit ethernet).  Every simulation
event is charged a host cost; the scheduler accumulates these per host
core and reports wall-clock time as the parallel makespan.  Costs carry
multiplicative seeded jitter modelling OS noise — the source of
run-to-run variation that the paper's Table 3 quantifies as CoV.

The constants live in :class:`repro.common.config.HostConfig`; this
module only combines them.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.common.config import HostConfig
from repro.host.cluster import Locality


class HostCostModel:
    """Computes host seconds consumed by each class of simulation event."""

    def __init__(self, config: HostConfig,
                 rng: Optional[random.Random] = None) -> None:
        config.validate()
        self.config = config
        self._rng = rng
        self._instr_cost = (config.native_instruction_cost
                            * config.instrumentation_overhead)
        self._message_cost = {
            Locality.SAME_PROCESS: config.intra_process_message_cost,
            Locality.SAME_MACHINE: config.inter_process_message_cost,
            Locality.CROSS_MACHINE: config.inter_machine_message_cost,
        }
        self._message_latency = {
            Locality.SAME_PROCESS: config.intra_process_message_latency,
            Locality.SAME_MACHINE: config.inter_process_message_latency,
            Locality.CROSS_MACHINE: config.inter_machine_message_latency,
        }

    # -- jitter ---------------------------------------------------------

    def _jittered(self, cost: float) -> float:
        if self._rng is None or self.config.jitter == 0.0:
            return cost
        return cost * (1.0 + self._rng.gauss(0.0, self.config.jitter))

    # -- event costs ------------------------------------------------------

    def instructions(self, count: int) -> float:
        """Host cost of executing ``count`` instrumented instructions."""
        return self._jittered(count * self._instr_cost)

    def native_instructions(self, count: int) -> float:
        """Host cost of ``count`` instructions run natively (no DBT)."""
        return count * self.config.native_instruction_cost

    def model_trap(self) -> float:
        """Host cost of one trap into a back-end model."""
        return self._jittered(self.config.model_trap_cost)

    def memory_access(self) -> float:
        """Host cost of servicing one memory-hierarchy model access."""
        return self._jittered(self.config.memory_model_cost)

    def message(self, locality: Locality, size_bytes: int) -> float:
        """Host *CPU* cost of one one-way message (consumes the core)."""
        del size_bytes  # copies are cheap; the wire time is latency
        return self._jittered(self._message_cost[locality])

    def message_latency(self, locality: Locality,
                        size_bytes: int) -> float:
        """Wire/stack latency: the sender-side thread is blocked, but
        its host core is free to run other tile threads meanwhile."""
        latency = self._message_latency[locality]
        if locality is Locality.CROSS_MACHINE:
            latency += size_bytes * self.config.inter_machine_byte_cost
        return self._jittered(latency)

    def process_startup(self, num_processes: int) -> float:
        """Sequential start-up cost for all host processes.

        Initialization "must be done sequentially for each process"
        (paper §4.2), which bounds scaling at high machine counts.
        """
        return num_processes * self.config.process_startup_cost

    def sleep_quantum(self) -> float:
        """Granularity of a LaxP2P host sleep (timer resolution)."""
        return 100e-6
