"""The simulation engine: multiplexes tile threads onto host cores.

Graphite runs one host thread per simulated tile, distributed over the
processes of the cluster, and lets the host OS schedule them (paper §2).
This module substitutes a deterministic scheduler for the host OS: each
simulated host core owns a run queue of tile threads (placement from
:class:`~repro.host.cluster.ClusterLayout`); the engine repeatedly picks
the host core with the least accumulated host time — i.e. the one whose
next event happens earliest in real time — and runs one *quantum* of its
next thread.  Host costs of every simulation event are charged through
:meth:`Scheduler.charge`; wall-clock time falls out as the parallel
makespan over cores.

Seeded jitter in the cost model plus quantum-granular interleaving give
run-to-run variation, standing in for OS noise on the paper's cluster —
the phenomenon behind the CoV columns of Table 3.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.common.errors import DeadlockError, SimulationError
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.host.cluster import ClusterLayout
from repro.host.costmodel import HostCostModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sync.model import SynchronizationModel
    from repro.telemetry.bus import TelemetryBus


class ThreadState(enum.Enum):
    """Lifecycle of a tile thread inside the scheduler."""

    RUNNABLE = "runnable"
    RUNNING = "running"
    #: Blocked on application synchronization (futex, recv, join); wakes
    #: via :meth:`Scheduler.wake`.
    BLOCKED = "blocked"
    #: Asleep in host time (LaxP2P slack enforcement); wakes when its
    #: core's clock reaches ``wake_host_time``.
    SLEEPING = "sleeping"
    #: Waiting on the LaxBarrier quantum barrier.
    BARRIER_WAIT = "barrier_wait"
    DONE = "done"


class QuantumStatus(enum.Enum):
    """Why a thread's quantum ended."""

    RAN = "ran"          # budget exhausted; still runnable
    BLOCKED = "blocked"  # thread blocked on application sync
    DONE = "done"        # thread finished its program


@dataclass
class QuantumResult:
    """Outcome of one quantum of execution."""

    status: QuantumStatus
    instructions: int = 0


class ThreadTask(abc.ABC):
    """What the scheduler runs: one tile thread's execution driver."""

    #: Tile this thread is mapped to.
    tile: TileId

    @abc.abstractmethod
    def run(self, budget_instructions: int,
            cycle_limit: Optional[int] = None) -> QuantumResult:
        """Execute until the budget, the cycle limit, a block, or the end.

        ``cycle_limit`` is an absolute local-clock bound used by sync
        models (a LaxBarrier thread must stop at its epoch boundary).
        """

    @property
    @abc.abstractmethod
    def cycles(self) -> int:
        """Current local clock of this thread's tile."""


@dataclass
class ScheduledThread:
    """Scheduler bookkeeping wrapped around a task."""

    task: ThreadTask
    state: ThreadState = ThreadState.RUNNABLE
    #: Earliest host time this thread may next run (set on wake).
    ready_host_time: float = 0.0
    #: Host time a SLEEPING thread wakes (LaxP2P).
    wake_host_time: float = 0.0
    quanta: int = 0

    @property
    def tile(self) -> TileId:
        return self.task.tile


@dataclass
class SchedulerReport:
    """Summary of one engine run."""

    wall_clock_seconds: float
    core_busy_seconds: Dict[int, float]
    total_quanta: int
    total_instructions: int
    #: Sum of simulated cycles across all threads at completion.
    total_simulated_cycles: int

    @property
    def busy_seconds(self) -> float:
        return sum(self.core_busy_seconds.values())


class Scheduler:
    """Runs tile threads on simulated host cores to completion."""

    def __init__(self, layout: ClusterLayout, cost_model: HostCostModel,
                 sync_model: "SynchronizationModel",
                 stats: StatGroup,
                 quantum_instructions: int = 2000,
                 rng=None,
                 telemetry: Optional["TelemetryBus"] = None) -> None:
        self.layout = layout
        self.cost_model = cost_model
        self.sync_model = sync_model
        self.stats = stats
        self.quantum_instructions = quantum_instructions
        #: Optional RNG: randomizes dispatch quantum lengths, modelling
        #: host OS scheduling variability (the run-to-run nondeterminism
        #: behind the paper's CoV measurements).
        self._rng = rng
        self.threads: Dict[TileId, ScheduledThread] = {}
        num_cores = layout.total_cores
        #: Accumulated host time per core (the makespan components).
        self.core_time: List[float] = [0.0] * num_cores
        self.core_busy: List[float] = [0.0] * num_cores
        self._core_queues: List[List[ScheduledThread]] = [
            [] for _ in range(num_cores)]
        self._quantum_charge = 0.0
        self._quantum_blocking = 0.0
        #: Functional fast-forward (:mod:`repro.sample`): bypass the
        #: sync model's pacing (no cycle limits, no quantum-end
        #: arrivals) while keeping the thread lifecycle callbacks.
        #: Flipped only between quanta by the sample controller.
        self.functional = False
        self._running: Optional[ScheduledThread] = None
        self._running_core: int = 0
        self._turns = 0
        self._total_instructions = 0
        self._skew_samplers: List[Callable[["Scheduler"], None]] = []
        self.skew_sample_period = 0
        self._periodic_hooks: List[
            Tuple[Callable[["Scheduler"], None], int]] = []
        self._tele_quantum = None
        if telemetry is not None:
            from repro.telemetry.events import EventCategory
            self._tele_quantum = telemetry.channel(EventCategory.QUANTUM)
        sync_model.attach(self)

    # -- thread management ----------------------------------------------------

    def add_thread(self, task: ThreadTask,
                   start_host_time: float = 0.0) -> ScheduledThread:
        """Register a new tile thread (initial main or a later spawn)."""
        if task.tile in self.threads and \
                self.threads[task.tile].state is not ThreadState.DONE:
            raise SimulationError(
                f"tile {int(task.tile)} already has a live thread")
        thread = ScheduledThread(task=task, ready_host_time=start_host_time)
        self.threads[task.tile] = thread
        core = int(self.layout.core_of_tile(task.tile))
        self._core_queues[core].append(thread)
        self.sync_model.on_thread_added(thread)
        return thread

    def live_threads(self) -> List[ScheduledThread]:
        """Threads that have not finished."""
        return [t for t in self.threads.values()
                if t.state is not ThreadState.DONE]

    # -- host-time plumbing ---------------------------------------------------

    def charge(self, seconds: float) -> None:
        """Charge host time to the quantum currently executing.

        Called by the interpreter, memory system and transport hooks for
        every simulation event.  Outside a quantum (e.g. during set-up)
        the charge is folded into core 0's time.
        """
        if seconds < 0:
            raise SimulationError("cannot charge negative host time")
        if self._running is not None:
            self._quantum_charge += seconds
        else:
            self.core_time[0] += seconds
            self.core_busy[0] += seconds

    def charge_blocking(self, seconds: float) -> None:
        """Charge host time the running thread spends *blocked*.

        Wire latency of remote messages blocks the waiting host thread
        without occupying its core: the core is free to run other tile
        threads.  Accumulated blocking defers the thread's next
        dispatch instead of advancing the core clock — the overlap that
        lets oversubscribed host cores hide communication stalls.
        """
        if seconds < 0:
            raise SimulationError("cannot charge negative blocking time")
        if self._running is not None:
            self._quantum_blocking += seconds
        else:
            self.core_time[0] += seconds

    def charge_core_of(self, thread: ScheduledThread,
                       seconds: float) -> None:
        """Charge host time directly to a thread's core.

        Used by sync models for costs incurred outside any quantum
        (barrier gather/release messages, P2P check round trips).
        """
        core = int(self.layout.core_of_tile(thread.tile))
        self.core_time[core] += seconds
        self.core_busy[core] += seconds

    def current_host_time(self) -> float:
        """Best estimate of 'now' in host time at the running core."""
        if self._running is not None:
            return self.core_time[self._running_core] + self._quantum_charge
        return max(self.core_time) if self.core_time else 0.0

    # -- blocking and waking ----------------------------------------------------

    def wake(self, tile: TileId) -> None:
        """Make a blocked/parked thread runnable again.

        The woken thread may not run before the waker's current host
        time (the wake travels as a message whose transfer cost has
        already been charged to the waker).
        """
        thread = self.threads.get(tile)
        if thread is None:
            raise SimulationError(f"wake of unknown tile {int(tile)}")
        if thread.state in (ThreadState.BLOCKED, ThreadState.SLEEPING,
                            ThreadState.BARRIER_WAIT):
            thread.state = ThreadState.RUNNABLE
            thread.ready_host_time = max(thread.ready_host_time,
                                         self.current_host_time())

    def sleep_thread(self, thread: ScheduledThread,
                     host_seconds: float) -> None:
        """Put a runnable thread to sleep in host time (LaxP2P)."""
        if thread.state not in (ThreadState.RUNNABLE, ThreadState.RUNNING):
            return
        thread.state = ThreadState.SLEEPING
        thread.wake_host_time = (self.current_host_time()
                                 + max(host_seconds, 0.0))

    def park_for_barrier(self, thread: ScheduledThread) -> None:
        """Park a thread on the synchronization barrier (LaxBarrier)."""
        thread.state = ThreadState.BARRIER_WAIT

    # -- skew sampling (Figure 7) ---------------------------------------------

    def add_skew_sampler(self, sampler: Callable[["Scheduler"], None],
                         period: int) -> None:
        """Invoke ``sampler(self)`` every ``period`` scheduler turns."""
        self._skew_samplers.append(sampler)
        self.skew_sample_period = period

    def add_periodic_hook(self, hook: Callable[["Scheduler"], None],
                          period: int) -> None:
        """Invoke ``hook(self)`` every ``period`` turns (metrics cadence)."""
        if period < 1:
            raise SimulationError("periodic hook period must be >= 1")
        self._periodic_hooks.append((hook, period))

    @property
    def turns(self) -> int:
        """Completed scheduler turns (quanta) so far — the checkpoint
        subsystem's notion of simulation position."""
        return self._turns

    @property
    def instructions_retired(self) -> int:
        """Target instructions retired across all threads so far.

        The sample controller reads this (with :meth:`thread_clocks`)
        at measurement-window edges to compute per-window CPI; it is
        identical on both backends because QUANTUM_DONE carries the
        same instruction counts the in-process engine produces."""
        return self._total_instructions

    def thread_clocks(self) -> List[int]:
        """Local clocks of all live threads (for skew measurement)."""
        return [t.task.cycles for t in self.threads.values()
                if t.state is not ThreadState.DONE]

    def total_cycles(self) -> int:
        """Sum of every thread's clock, finished threads included.

        Finished threads' clocks are frozen, so differencing this at
        two points measures exactly the cycles live threads progressed
        in between — the sample controller's window metric, robust to
        threads finishing mid-window."""
        return sum(t.task.cycles for t in self.threads.values())

    def active_thread_clocks(self) -> List[int]:
        """Clocks of threads that are actually progressing.

        A thread blocked on application synchronization has a stale
        clock — it will be forwarded to the wake event's timestamp — so
        including it in a skew measurement reports the *wait*, not the
        synchronization model's behaviour.
        """
        return [t.task.cycles for t in self.threads.values()
                if t.state in (ThreadState.RUNNABLE, ThreadState.RUNNING,
                               ThreadState.SLEEPING,
                               ThreadState.BARRIER_WAIT)]

    # -- the main loop -----------------------------------------------------------

    def _dispatchable(self, thread: ScheduledThread, now: float) -> bool:
        if thread.state is ThreadState.RUNNABLE:
            return True
        if thread.state is ThreadState.SLEEPING:
            return thread.wake_host_time <= now
        return False

    def _pick_core(self) -> Optional[int]:
        """Core to advance next: least host time among cores with work.

        A core whose only work is a sleeping or not-yet-ready thread is
        eligible — it will fast-forward its clock — but a core with an
        immediately dispatchable thread at an earlier effective time
        wins.
        """
        best_core = None
        best_time = None
        for core, queue in enumerate(self._core_queues):
            earliest = None
            for thread in queue:
                if thread.state is ThreadState.RUNNABLE:
                    t = max(self.core_time[core], thread.ready_host_time)
                elif thread.state is ThreadState.SLEEPING:
                    t = max(self.core_time[core], thread.wake_host_time)
                else:
                    continue
                if earliest is None or t < earliest:
                    earliest = t
            if earliest is None:
                continue
            if best_time is None or earliest < best_time:
                best_time = earliest
                best_core = core
        return best_core

    def _next_thread(self, core: int) -> Optional[ScheduledThread]:
        """Round-robin over the core's dispatchable threads."""
        queue = self._core_queues[core]
        now = self.core_time[core]
        # First preference: threads ready right now, in queue order.
        for i, thread in enumerate(queue):
            if self._dispatchable(thread, now):
                queue.append(queue.pop(i))
                return thread
        # Otherwise the thread that becomes ready soonest.
        best = None
        best_time = None
        for thread in queue:
            if thread.state is ThreadState.RUNNABLE:
                t = thread.ready_host_time
            elif thread.state is ThreadState.SLEEPING:
                t = thread.wake_host_time
            else:
                continue
            if best_time is None or t < best_time:
                best_time = t
                best = thread
        if best is not None:
            queue.remove(best)
            queue.append(best)
        return best

    def run(self, max_turns: Optional[int] = None) -> SchedulerReport:
        """Drive all threads to completion; returns the run report."""
        while True:
            if all(t.state is ThreadState.DONE
                   for t in self.threads.values()):
                break
            core = self._pick_core()
            if core is None:
                # Either the barrier can be released (progress resumes)
                # or this raises DeadlockError.
                self._diagnose_stall()
                continue
            thread = self._next_thread(core)
            assert thread is not None
            self._run_quantum(core, thread)
            self._turns += 1
            if (self.skew_sample_period
                    and self._turns % self.skew_sample_period == 0):
                for sampler in self._skew_samplers:
                    sampler(self)
            for hook, period in self._periodic_hooks:
                if self._turns % period == 0:
                    hook(self)
            if max_turns is not None and self._turns >= max_turns:
                raise SimulationError(
                    f"scheduler exceeded {max_turns} turns; "
                    "likely livelock in the simulated application")
        total_cycles = sum(t.task.cycles for t in self.threads.values())
        return SchedulerReport(
            wall_clock_seconds=max(self.core_time) if self.core_time else 0.0,
            core_busy_seconds={i: b for i, b in enumerate(self.core_busy)},
            total_quanta=self._turns,
            total_instructions=self._total_instructions,
            total_simulated_cycles=total_cycles,
        )

    def _run_quantum(self, core: int, thread: ScheduledThread) -> None:
        # Fast-forward the core past sleep/ready gaps (idle time).
        start = self.core_time[core]
        if thread.state is ThreadState.SLEEPING:
            start = max(start, thread.wake_host_time)
            thread.state = ThreadState.RUNNABLE
            self.sync_model.on_thread_woken(thread)
        start = max(start, thread.ready_host_time)
        self.core_time[core] = start

        thread.state = ThreadState.RUNNING
        self._running = thread
        self._running_core = core
        self._quantum_charge = 0.0
        self._quantum_blocking = 0.0
        # Magic sync under fast-forward: no epoch/slack pacing.  The
        # lifecycle callbacks (done/blocked/woken) still fire so the
        # sync model's membership stays correct across mode switches.
        cycle_limit = (None if self.functional
                       else self.sync_model.cycle_limit(thread))
        budget = self.quantum_instructions
        if self._rng is not None:
            # OS-like dispatch variability: quantum in [0.75x, 1.25x).
            budget = max(int(budget * (0.75 + 0.5 * self._rng.random())), 1)
        cycles_before = thread.task.cycles if self._tele_quantum else 0
        try:
            result = thread.task.run(budget, cycle_limit)
        finally:
            self._running = None
        if self._tele_quantum is not None:
            self._tele_quantum.emit(
                "quantum", int(thread.tile), cycles_before,
                {"cycles": thread.task.cycles,
                 "instructions": result.instructions,
                 "status": result.status.value})
        self.core_time[core] = start + self._quantum_charge
        self.core_busy[core] += self._quantum_charge
        if self._quantum_blocking > 0.0:
            # The thread was blocked on the wire for this long; it may
            # not run again before then, but the core stays available.
            thread.ready_host_time = max(
                thread.ready_host_time,
                self.core_time[core] + self._quantum_blocking)
        self._total_instructions += result.instructions
        thread.quanta += 1

        if result.status is QuantumStatus.DONE:
            thread.state = ThreadState.DONE
            self.sync_model.on_thread_done(thread)
        elif result.status is QuantumStatus.BLOCKED:
            # The blocking subsystem may already have woken us (e.g. the
            # wake message raced ahead); only block if still RUNNING.
            if thread.state is ThreadState.RUNNING:
                thread.state = ThreadState.BLOCKED
            self.sync_model.on_thread_blocked(thread)
        else:
            if thread.state is ThreadState.RUNNING:
                thread.state = ThreadState.RUNNABLE
            if not self.functional:
                self.sync_model.on_quantum_end(thread)

    def _diagnose_stall(self) -> None:
        states = {int(t.tile): t.state.value for t in self.threads.values()
                  if t.state is not ThreadState.DONE}
        barrier_waiters = [t for t in self.threads.values()
                           if t.state is ThreadState.BARRIER_WAIT]
        if barrier_waiters and self.sync_model.release_if_stalled():
            return
        raise DeadlockError(
            f"no dispatchable thread; remaining thread states: {states}")
