"""Memory system (paper §3.2).

Plays a dual role.  *Functionally* it maintains the single target
address space shared by all application threads — caches and DRAM hold
real bytes and the coherence protocol really moves them, so a protocol
bug breaks the simulated program rather than silently skewing numbers
(the paper leans on exactly this property to validate its protocols).
*For modeling* it computes the latency of every access: L1/L2 lookups,
directory MSI coherence (full-map, limited Dir_iNB, or LimitLESS),
network round trips, and DRAM controllers with lax-compatible queue
models.
"""

from repro.memory.address import AddressSpace, Segment
from repro.memory.allocator import DynamicMemoryManager
from repro.memory.backing import BackingStore
from repro.memory.cache import Cache, CacheLine, LineState
from repro.memory.coherence import CoherenceEngine
from repro.memory.controller import MemoryController
from repro.memory.directory import (
    Directory,
    DirectoryEntry,
    create_directory,
)
from repro.memory.dram import DramController
from repro.memory.hierarchy import CacheHierarchy
from repro.memory.miss_classifier import MissClassifier, MissType

__all__ = [
    "AddressSpace",
    "BackingStore",
    "Cache",
    "CacheHierarchy",
    "CacheLine",
    "CoherenceEngine",
    "Directory",
    "DirectoryEntry",
    "DramController",
    "DynamicMemoryManager",
    "LineState",
    "MemoryController",
    "MissClassifier",
    "MissType",
    "Segment",
    "create_directory",
]
