"""Target address-space layout and homing (paper §3.2.1, Figure 3).

The application address space is divided into segments — code, static
data, program heap, dynamically allocated (mmap) segments, thread
stacks, and reserved kernel space.  Graphite statically partitions this
space among the participating processes: each region is "homed" on one
machine, and the directory for each cache line is uniformly distributed
across all the tiles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import TargetFault
from repro.common.ids import TileId
from repro.common.units import MB


class Segment(enum.Enum):
    """Regions of the target address space (Figure 3)."""

    CODE = "code"
    STATIC_DATA = "static_data"
    HEAP = "heap"
    DYNAMIC = "dynamic"      # mmap'd segments
    STACK = "stack"
    KERNEL = "kernel_reserved"


@dataclass(frozen=True)
class SegmentRange:
    """Half-open address range [base, limit) of one segment."""

    segment: Segment
    base: int
    limit: int

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit

    @property
    def size(self) -> int:
        return self.limit - self.base


class AddressSpace:
    """The single shared target address space.

    Layout (constants chosen to keep the space compact while leaving
    every segment room to grow)::

        0x0000_0000  code
        0x0800_0000  static data
        0x1000_0000  program heap (brk)
        0x4000_0000  dynamic (mmap) segments
        0x7000_0000  thread stacks
        0xF000_0000  kernel reserved

    ``stack_bytes_per_thread`` carves one stack per target tile out of
    the stack segment, as Graphite's memory manager does at start-up.
    """

    CODE_BASE = 0x0000_0000
    STATIC_BASE = 0x0800_0000
    HEAP_BASE = 0x1000_0000
    DYNAMIC_BASE = 0x4000_0000
    STACK_BASE = 0x7000_0000
    KERNEL_BASE = 0xF000_0000
    LIMIT = 0x1_0000_0000

    def __init__(self, num_tiles: int, line_bytes: int,
                 stack_bytes_per_thread: int = 1 * MB) -> None:
        if num_tiles < 1:
            raise ValueError("address space needs at least one tile")
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a positive power of two")
        self.num_tiles = num_tiles
        self.line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        self.stack_bytes_per_thread = stack_bytes_per_thread
        if num_tiles * stack_bytes_per_thread > self.KERNEL_BASE - self.STACK_BASE:
            raise ValueError("too many tiles for the stack segment")
        self.segments = (
            SegmentRange(Segment.CODE, self.CODE_BASE, self.STATIC_BASE),
            SegmentRange(Segment.STATIC_DATA, self.STATIC_BASE,
                         self.HEAP_BASE),
            SegmentRange(Segment.HEAP, self.HEAP_BASE, self.DYNAMIC_BASE),
            SegmentRange(Segment.DYNAMIC, self.DYNAMIC_BASE,
                         self.STACK_BASE),
            SegmentRange(Segment.STACK, self.STACK_BASE, self.KERNEL_BASE),
            SegmentRange(Segment.KERNEL, self.KERNEL_BASE, self.LIMIT),
        )

    # -- classification --------------------------------------------------------

    def segment_of(self, address: int) -> Segment:
        """Which segment an address falls in; faults outside the space."""
        if not 0 <= address < self.LIMIT:
            raise TargetFault(f"address {address:#x} outside target space")
        for srange in self.segments:
            if srange.contains(address):
                return srange.segment
        raise TargetFault(f"address {address:#x} unmapped")  # pragma: no cover

    def check_access(self, address: int, size: int) -> None:
        """Fault on kernel-space or out-of-range accesses."""
        if size <= 0:
            raise TargetFault("zero- or negative-sized access")
        if not (0 <= address and address + size <= self.LIMIT):
            raise TargetFault(
                f"access {address:#x}+{size} outside target space")
        if address + size > self.KERNEL_BASE:
            raise TargetFault(
                f"access {address:#x} touches kernel-reserved space")

    # -- line arithmetic --------------------------------------------------------

    def line_of(self, address: int) -> int:
        """Line-aligned base address containing ``address``."""
        return (address >> self._line_shift) << self._line_shift

    def line_index(self, address: int) -> int:
        return address >> self._line_shift

    # -- homing -------------------------------------------------------------------

    def home_tile(self, address: int) -> TileId:
        """Directory/memory-controller home of a line.

        The directory is uniformly distributed across all the tiles
        (paper §3.2): lines interleave round-robin at line granularity.
        """
        return TileId(self.line_index(address) % self.num_tiles)

    def stack_range(self, tile: TileId) -> SegmentRange:
        """The stack carved out for the thread on ``tile``."""
        base = self.STACK_BASE + int(tile) * self.stack_bytes_per_thread
        return SegmentRange(Segment.STACK, base,
                            base + self.stack_bytes_per_thread)
