"""Dynamic memory management for the target (paper §3.2.1).

Graphite implements memory-management functions normally provided by
the OS: it intercepts ``brk``, ``mmap`` and ``munmap`` and serves them
from designated parts of the target address space, and it carves the
stack segment into per-thread stacks.  On top of the raw system calls
this module also provides the ``malloc``/``free`` pair the user API
exposes, implemented as a first-fit free-list allocator over the heap
segment so workloads exercise realistic allocation patterns.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.errors import TargetFault
from repro.common.ids import TileId
from repro.memory.address import AddressSpace

#: Allocation granularity; keeps separately allocated blocks from
#: sharing a cache line only when the caller asks for aligned blocks.
MIN_ALIGN = 8


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


class DynamicMemoryManager:
    """brk/mmap emulation plus a heap allocator for the target."""

    def __init__(self, space: AddressSpace) -> None:
        self.space = space
        self._brk = space.HEAP_BASE
        self._mmap_next = space.DYNAMIC_BASE
        self._mmap_regions: Dict[int, int] = {}  # base -> size
        #: Free list of (base, size) holes in brk'd heap space, sorted.
        self._free: List[Tuple[int, int]] = []
        self._allocated: Dict[int, int] = {}  # base -> size

    # -- system-call level ---------------------------------------------------

    def brk(self, new_break: int = 0) -> int:
        """Emulate ``brk``: move (or query) the program break."""
        if new_break == 0:
            return self._brk
        if not self.space.HEAP_BASE <= new_break < self.space.DYNAMIC_BASE:
            raise TargetFault(f"brk to {new_break:#x} outside heap segment")
        self._brk = new_break
        return self._brk

    def mmap(self, length: int) -> int:
        """Emulate anonymous ``mmap``: map a fresh dynamic region."""
        if length <= 0:
            raise TargetFault("mmap of non-positive length")
        length = _align_up(length, 4096)
        base = self._mmap_next
        if base + length > self.space.STACK_BASE:
            raise TargetFault("target dynamic segment exhausted")
        self._mmap_next = base + length
        self._mmap_regions[base] = length
        return base

    def munmap(self, base: int, length: int) -> None:
        """Emulate ``munmap`` of a region returned by :meth:`mmap`."""
        size = self._mmap_regions.get(base)
        if size is None or size != _align_up(length, 4096):
            raise TargetFault(f"munmap of unmapped region {base:#x}")
        del self._mmap_regions[base]

    # -- malloc/free ------------------------------------------------------------

    def malloc(self, size: int, align: int = MIN_ALIGN) -> int:
        """Allocate target heap memory (first fit, then grow via brk)."""
        if size <= 0:
            raise TargetFault("malloc of non-positive size")
        if align < MIN_ALIGN or align & (align - 1):
            raise TargetFault("malloc alignment must be a power of two >= 8")
        size = _align_up(size, MIN_ALIGN)
        for i, (base, hole) in enumerate(self._free):
            aligned = _align_up(base, align)
            waste = aligned - base
            if hole >= size + waste:
                remainder = hole - size - waste
                del self._free[i]
                if waste:
                    self._free.insert(i, (base, waste))
                if remainder:
                    self._free.append((aligned + size, remainder))
                    self._free.sort()
                self._allocated[aligned] = size
                return aligned
        # Grow the heap.
        aligned = _align_up(self._brk, align)
        waste = aligned - self._brk
        if waste:
            self._free.append((self._brk, waste))
            self._free.sort()
        self.brk(aligned + size)
        self._allocated[aligned] = size
        return aligned

    def free(self, address: int) -> None:
        """Release a block returned by :meth:`malloc`."""
        size = self._allocated.pop(address, None)
        if size is None:
            raise TargetFault(f"free of unallocated address {address:#x}")
        self._free.append((address, size))
        self._free.sort()
        self._coalesce()

    def _coalesce(self) -> None:
        merged: List[Tuple[int, int]] = []
        for base, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == base:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((base, size))
        self._free = merged

    # -- stacks ------------------------------------------------------------------

    def stack_top(self, tile: TileId) -> int:
        """Initial stack pointer for the thread on ``tile``."""
        return self.space.stack_range(tile).limit - MIN_ALIGN

    # -- introspection -----------------------------------------------------------

    @property
    def heap_bytes_in_use(self) -> int:
        return sum(self._allocated.values())

    @property
    def live_allocations(self) -> int:
        return len(self._allocated)
