"""The functional backing store for target memory.

Holds the authoritative bytes of every target cache line that is not
currently exclusively owned by some tile's cache.  Lines materialise
zero-filled on first touch, mirroring demand-zero pages.  In the real
Graphite this store is partitioned across host machines ("homed");
here a single structure suffices functionally, while the *cost* of
reaching a remote home is charged through the transport layer when
coherence messages travel between tiles.
"""

from __future__ import annotations

from typing import Dict


class BackingStore:
    """Line-granular byte storage for the whole target address space."""

    def __init__(self, line_bytes: int) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a positive power of two")
        self.line_bytes = line_bytes
        self._lines: Dict[int, bytearray] = {}

    def read_line(self, line_address: int) -> bytearray:
        """A *copy* of the line's bytes (zero-filled if never written)."""
        line = self._lines.get(line_address)
        if line is None:
            return bytearray(self.line_bytes)
        return bytearray(line)

    def write_line(self, line_address: int, data: bytes) -> None:
        """Replace the line's bytes (cache writeback)."""
        if len(data) != self.line_bytes:
            raise ValueError(
                f"writeback of {len(data)} bytes to a "
                f"{self.line_bytes}-byte line")
        self._lines[line_address] = bytearray(data)

    @property
    def resident_lines(self) -> int:
        """Number of lines ever written back (memory footprint proxy)."""
        return len(self._lines)
