"""A set-associative cache with LRU replacement.

Used for the L1 instruction, L1 data, and L2 caches (Table 1).  The L2
is the coherence point and stores real line data; the L1s are
timing-only tag arrays kept inclusive with the L2.  Geometry and policy
come from :class:`repro.common.config.CacheConfig`.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import List, Optional, TYPE_CHECKING

from repro.common.config import CacheConfig
from repro.common.stats import StatGroup

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import Channel


class LineState(enum.Enum):
    """Coherence state of a cached line (absence is Invalid).

    MSI uses SHARED and MODIFIED; the MESI variant adds EXCLUSIVE —
    a clean line held by exactly one cache, which may be written
    without a directory round trip.
    """

    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"


class CacheLine:
    """One resident cache line."""

    __slots__ = ("address", "state", "data")

    def __init__(self, address: int, state: LineState,
                 data: Optional[bytearray]) -> None:
        self.address = address
        self.state = state
        self.data = data

    @property
    def dirty(self) -> bool:
        return self.state is LineState.MODIFIED

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CacheLine({self.address:#x}, {self.state.value})"


class Cache:
    """Set-associative LRU cache keyed by line-aligned addresses."""

    def __init__(self, name: str, config: CacheConfig,
                 stats: StatGroup, tile: Optional[int] = None,
                 telemetry: Optional["Channel"] = None) -> None:
        config.validate(name)
        self.name = name
        self.config = config
        self.tile = tile
        #: CACHE-category telemetry channel, or ``None`` (the default:
        #: only the L2 — the coherence point — is given a channel).
        self._tele = telemetry
        self.line_bytes = config.line_bytes
        self.associativity = config.associativity
        self.num_sets = config.num_sets
        self._line_shift = config.line_bytes.bit_length() - 1
        # Each set is an OrderedDict: iteration order == LRU order
        # (oldest first); move_to_end on touch.
        self._sets: List["OrderedDict[int, CacheLine]"] = [
            OrderedDict() for _ in range(self.num_sets)]
        self.stats = stats
        self._lookups = stats.counter("lookups")
        self._hits = stats.counter("hits")
        self._evictions = stats.counter("evictions")
        self._invalidations = stats.counter("invalidations")

    def _set_of(self, line_address: int) -> "OrderedDict[int, CacheLine]":
        index = (line_address >> self._line_shift) % self.num_sets
        return self._sets[index]

    # -- operations -----------------------------------------------------------

    def lookup(self, line_address: int, touch: bool = True,
               count: bool = True) -> Optional[CacheLine]:
        """Find a resident line; ``touch`` refreshes its LRU position.

        ``count=False`` makes the probe invisible to hit/miss statistics
        (used by coherence-side probes that are not program accesses).
        """
        # ``_set_of`` inlined: lookup and peek dominate the memory
        # system's host cost on both execution modes.
        cache_set = self._sets[(line_address >> self._line_shift)
                               % self.num_sets]
        line = cache_set.get(line_address)
        if count:
            self._lookups.add()
            if line is not None:
                self._hits.add()
        if line is not None and touch:
            cache_set.move_to_end(line_address)
        return line

    def insert(self, line_address: int, state: LineState,
               data: Optional[bytearray] = None,
               timestamp: int = 0) -> Optional[CacheLine]:
        """Install a line; returns the evicted victim, if any.

        Inserting an already-resident address updates it in place and
        evicts nothing.  ``timestamp`` (target cycles) is only consumed
        by telemetry.
        """
        cache_set = self._set_of(line_address)
        existing = cache_set.get(line_address)
        if existing is not None:
            existing.state = state
            if data is not None:
                existing.data = data
            cache_set.move_to_end(line_address)
            return None
        victim = None
        if len(cache_set) >= self.associativity:
            _, victim = cache_set.popitem(last=False)  # LRU
            self._evictions.add()
        cache_set[line_address] = CacheLine(line_address, state, data)
        if self._tele is not None:
            self._tele.emit("fill", self.tile, timestamp,
                            {"line": line_address, "state": state.value})
            if victim is not None:
                self._tele.emit("evict", self.tile, timestamp,
                                {"line": victim.address,
                                 "dirty": victim.dirty})
        return victim

    def remove(self, line_address: int,
               timestamp: int = 0) -> Optional[CacheLine]:
        """Invalidate a line (coherence); returns it if it was resident."""
        line = self._set_of(line_address).pop(line_address, None)
        if line is not None:
            self._invalidations.add()
            if self._tele is not None:
                self._tele.emit("invalidate", self.tile, timestamp,
                                {"line": line_address,
                                 "state": line.state.value})
        return line

    def peek(self, line_address: int) -> Optional[CacheLine]:
        """Lookup without LRU update or statistics."""
        return self._sets[(line_address >> self._line_shift)
                          % self.num_sets].get(line_address)

    # -- introspection -------------------------------------------------------

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        n = self._lookups.value
        return self._hits.value / n if n else 0.0

    @property
    def miss_count(self) -> int:
        return self._lookups.value - self._hits.value

    def __iter__(self):
        """Iterate over all resident lines (tests, invariant checks)."""
        for cache_set in self._sets:
            yield from cache_set.values()
