"""The directory-based MSI cache-coherence engine (paper §3.2).

Cache coherence is maintained using a directory-based MSI protocol in
which the directory is uniformly distributed across all the tiles.  The
engine unifies the *functional* and *modeling* roles: the software
structures that keep the target address space consistent are organised
like the target memory architecture, so each application memory request
generates exactly one set of protocol actions that both move real bytes
and accumulate modelled latency.  This mirrors the paper's key design
point — correct simulated execution doubles as verification of the
coherence protocol.

All protocol messages are serviced synchronously ("the network forwards
messages immediately"), with simulated time carried by timestamps:
each leg adds the memory network model's latency, directories add their
lookup latency, and DRAM adds queue-model delay computed against the
windowed global-progress estimate.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.common.config import MemoryConfig
from repro.common.errors import ProtocolError
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.memory.address import AddressSpace
from repro.memory.backing import BackingStore
from repro.memory.cache import CacheLine, LineState
from repro.memory.directory import Directory, DirState, create_directory
from repro.memory.dram import DramController
from repro.memory.hierarchy import CacheHierarchy
from repro.memory.miss_classifier import MissClassifier
from repro.network.interface import NetworkFabric
from repro.sync.progress import ProgressEstimator
from repro.transport.message import MessageKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import TelemetryBus

#: Size of a coherence control message (request, inv, ack) on the wire.
CONTROL_BYTES = 8
#: Header added to a data-carrying coherence message.
HEADER_BYTES = 8


class CoherenceEngine:
    """Global protocol engine owning all per-tile memory structures."""

    def __init__(self, num_tiles: int, config: MemoryConfig,
                 space: AddressSpace, backing: BackingStore,
                 fabric: NetworkFabric, clock_hz: int,
                 stats: StatGroup,
                 classifier: Optional[MissClassifier] = None,
                 telemetry: Optional["TelemetryBus"] = None) -> None:
        config.validate()
        self.num_tiles = num_tiles
        self.config = config
        self.space = space
        self.backing = backing
        self.fabric = fabric
        self.classifier = classifier
        self.line_bytes = config.l2.line_bytes
        self.stats = stats
        self._tele_cache = None
        tele_dir = None
        tele_dram = None
        if telemetry is not None:
            from repro.telemetry.events import EventCategory
            self._tele_cache = telemetry.channel(EventCategory.CACHE)
            tele_dir = telemetry.channel(EventCategory.DIRECTORY)
            tele_dram = telemetry.channel(EventCategory.DRAM)
        #: Functional fast-forward (:mod:`repro.sample`): when set, the
        #: protocol still performs every state transition — directory,
        #: caches, backing store — through the one shared code path,
        #: but network legs and DRAM timing are bypassed.  Flipped by
        #: :meth:`repro.sim.simulator.Simulator.set_execution_mode`.
        self.functional = False
        window = max(num_tiles * config.dram.progress_window_factor, 8)
        self.progress = ProgressEstimator(window)
        self.hierarchies: List[CacheHierarchy] = [
            CacheHierarchy(TileId(t), config, stats.child(f"tile{t}"),
                           telemetry=self._tele_cache)
            for t in range(num_tiles)]
        self.directories: List[Directory] = [
            create_directory(TileId(t), config,
                             stats.child(f"dir{t}"), telemetry=tele_dir)
            for t in range(num_tiles)]
        self.drams: List[DramController] = [
            DramController(TileId(t), config.dram, num_tiles, clock_hz,
                           self.progress, stats.child(f"dram{t}"),
                           telemetry=tele_dram)
            for t in range(num_tiles)]
        self._read_misses = stats.counter("read_misses")
        self._write_misses = stats.counter("write_misses")
        self._upgrades = stats.counter("upgrades")

    # -- network helper -----------------------------------------------------------

    def _transfer(self, src: TileId, dst: TileId, size_bytes: int,
                  timestamp: int) -> int:
        if self.functional:
            return 0
        return self.fabric.transfer(src, dst, MessageKind.MEMORY,
                                    size_bytes, timestamp)

    # -- DRAM timing helpers (bypassed under fast-forward) -------------------

    def _dram_read(self, home: TileId, now: int) -> int:
        if self.functional:
            return 0
        return self.drams[int(home)].read(now, self.line_bytes)

    def _dram_post_write(self, home: TileId, now: int) -> None:
        if self.functional:
            return
        self.drams[int(home)].post_write(now, self.line_bytes)

    # -- public protocol operations --------------------------------------------------

    def read_access(self, tile: TileId, address: int, size: int,
                    timestamp: int) -> "tuple[CacheLine, int]":
        """Ensure a readable (S or M) copy at ``tile``; returns latency.

        ``address``/``size`` must lie within one cache line (the memory
        controller splits larger accesses).
        """
        line_address = self.space.line_of(address)
        hierarchy = self.hierarchies[int(tile)]
        latency = self.config.l2.access_latency
        line = hierarchy.l2_line(line_address)
        if line is not None:
            return line, latency
        self._read_misses.add()
        if self.classifier is not None:
            self.classifier.classify(tile, address, size)
        home = self.space.home_tile(line_address)
        directory = self.directories[int(home)]
        now = timestamp + latency
        now += self._transfer(tile, home, CONTROL_BYTES, now)
        now += self.config.directory_latency
        entry = directory.entry(line_address)

        data_forwarded = False
        # MESI: an uncontended miss returns the line *exclusively*, so
        # a later store by this tile needs no upgrade round trip.
        grant_exclusive = (self.config.protocol == "mesi"
                           and entry.state is DirState.UNCACHED)
        if entry.state is DirState.MODIFIED:
            owner = entry.owner
            if owner == tile:
                raise ProtocolError(
                    f"tile {int(tile)} missed on a line the directory "
                    f"says it owns ({line_address:#x})")
            # Recall the dirty line: home -> owner -> home, then the
            # owner keeps a shared copy (M -> S downgrade).
            now += self._transfer(home, owner, CONTROL_BYTES, now)
            owner_line = self.hierarchies[int(owner)].downgrade(line_address)
            if owner_line is None or owner_line.data is None:
                raise ProtocolError(
                    f"directory owner {int(owner)} does not hold "
                    f"{line_address:#x}")
            self.backing.write_line(line_address, owner_line.data)
            now += self._transfer(owner, home,
                                  self.line_bytes + HEADER_BYTES, now)
            self._dram_post_write(home, now)
            entry.state = DirState.SHARED
        elif entry.state is DirState.SHARED and entry.sharers \
                and self.config.forward_shared_reads:
            # Clean-shared data is forwarded cache-to-cache from an
            # existing sharer (home -> sharer control, sharer ->
            # requester data), sparing the DRAM controller: without
            # forwarding, widely read-shared lines serialize every new
            # sharer behind one controller's bandwidth slice.
            forwarder = next(iter(entry.sharers))
            now += self._transfer(home, forwarder, CONTROL_BYTES, now)
            now += self._transfer(forwarder, tile,
                                  self.line_bytes + HEADER_BYTES, now)
            data_forwarded = True
        elif entry.state is not DirState.MODIFIED:
            # Data comes from the home memory controller.
            now += self._dram_read(home, now)

        result = directory.add_sharer(entry, tile, timestamp=now)
        now += result.extra_latency
        for victim_tile in result.evict:
            now += self._invalidate_one(home, victim_tile, line_address,
                                        now, due_to_write=False)
        # An exclusive grant is recorded as directory-owned: the holder
        # may silently dirty the line, so recalls must go through it.
        entry.state = DirState.MODIFIED if grant_exclusive \
            else DirState.SHARED
        if data_forwarded:
            # Completion acknowledgement only; the data already arrived.
            now += self._transfer(home, tile, CONTROL_BYTES, now)
        else:
            now += self._transfer(home, tile,
                                  self.line_bytes + HEADER_BYTES, now)
        data = self.backing.read_line(line_address)
        fill_state = LineState.EXCLUSIVE if grant_exclusive \
            else LineState.SHARED
        line = self._install(tile, line_address, fill_state, data, now)
        if self._tele_cache is not None:
            self._tele_cache.emit("read_miss", int(tile), timestamp,
                                  {"line": line_address,
                                   "latency": now - timestamp,
                                   "forwarded": data_forwarded})
        return line, now - timestamp

    def write_access(self, tile: TileId, address: int, size: int,
                     timestamp: int) -> "tuple[CacheLine, int]":
        """Ensure an exclusive (M) copy at ``tile``; returns latency."""
        line_address = self.space.line_of(address)
        hierarchy = self.hierarchies[int(tile)]
        latency = self.config.l2.access_latency
        line = hierarchy.l2_line(line_address)
        if line is not None and line.state is LineState.MODIFIED:
            return line, latency
        if line is not None and line.state is LineState.EXCLUSIVE:
            # MESI's payoff: the directory already records this tile as
            # the owner, so dirtying the line is a silent transition.
            line.state = LineState.MODIFIED
            return line, latency

        home = self.space.home_tile(line_address)
        directory = self.directories[int(home)]
        now = timestamp + latency

        if line is not None:
            # Upgrade: we hold S; invalidate the other sharers.
            self._upgrades.add()
            now += self._transfer(tile, home, CONTROL_BYTES, now)
            now += self.config.directory_latency
            entry = directory.entry(line_address)
            now += directory.invalidation_latency(entry)
            now += self._invalidate_sharers(home, entry.sharer_list(),
                                            line_address, now,
                                            exclude=tile)
            entry.sharers.clear()
            entry.sharers[tile] = None
            entry.state = DirState.MODIFIED
            now += self._transfer(home, tile, CONTROL_BYTES, now)
            line.state = LineState.MODIFIED
            if self._tele_cache is not None:
                self._tele_cache.emit("upgrade", int(tile), timestamp,
                                      {"line": line_address,
                                       "latency": now - timestamp})
            return line, now - timestamp

        # Write miss.
        self._write_misses.add()
        if self.classifier is not None:
            self.classifier.classify(tile, address, size)
        now += self._transfer(tile, home, CONTROL_BYTES, now)
        now += self.config.directory_latency
        entry = directory.entry(line_address)

        if entry.state is DirState.MODIFIED:
            owner = entry.owner
            if owner == tile:
                raise ProtocolError(
                    f"tile {int(tile)} write-missed on a line the "
                    f"directory says it owns ({line_address:#x})")
            now += self._transfer(home, owner, CONTROL_BYTES, now)
            owner_line = self.hierarchies[int(owner)].invalidate(
                line_address, timestamp=now)
            if owner_line is None or owner_line.data is None:
                raise ProtocolError(
                    f"directory owner {int(owner)} does not hold "
                    f"{line_address:#x}")
            self.backing.write_line(line_address, owner_line.data)
            if self.classifier is not None:
                self.classifier.note_invalidation(owner, line_address,
                                                  due_to_write=True)
            now += self._transfer(owner, home,
                                  self.line_bytes + HEADER_BYTES, now)
            self._dram_post_write(home, now)
            entry.sharers.clear()
        elif entry.state is DirState.SHARED:
            now += directory.invalidation_latency(entry)
            now += self._invalidate_sharers(home, entry.sharer_list(),
                                            line_address, now,
                                            exclude=None)
            entry.sharers.clear()
            now += self._dram_read(home, now)
        else:
            now += self._dram_read(home, now)

        result = directory.add_sharer(entry, tile, timestamp=now)
        now += result.extra_latency
        entry.state = DirState.MODIFIED
        now += self._transfer(home, tile,
                              self.line_bytes + HEADER_BYTES, now)
        data = self.backing.read_line(line_address)
        line = self._install(tile, line_address, LineState.MODIFIED,
                             data, now)
        if self._tele_cache is not None:
            self._tele_cache.emit("write_miss", int(tile), timestamp,
                                  {"line": line_address,
                                   "latency": now - timestamp})
        return line, now - timestamp

    # -- invalidations -----------------------------------------------------------------

    def _invalidate_sharers(self, home: TileId, sharers: List[TileId],
                            line_address: int, timestamp: int,
                            exclude: Optional[TileId]) -> int:
        """Invalidate all sharers in parallel; latency is the worst leg."""
        worst = 0
        for sharer in sharers:
            if exclude is not None and sharer == exclude:
                continue
            worst = max(worst, self._invalidate_one(
                home, sharer, line_address, timestamp, due_to_write=True))
        return worst

    def _invalidate_one(self, home: TileId, sharer: TileId,
                        line_address: int, timestamp: int,
                        due_to_write: bool) -> int:
        leg = self._transfer(home, sharer, CONTROL_BYTES, timestamp)
        removed = self.hierarchies[int(sharer)].invalidate(
            line_address, timestamp=timestamp + leg)
        if removed is None:
            raise ProtocolError(
                f"invalidation of {line_address:#x} at tile {int(sharer)}"
                " which does not hold it")
        if removed.state is LineState.MODIFIED:
            raise ProtocolError(
                "shared-state invalidation found a dirty line at tile "
                f"{int(sharer)} for {line_address:#x}")
        if self.classifier is not None:
            self.classifier.note_invalidation(sharer, line_address,
                                              due_to_write)
        leg += self._transfer(sharer, home, CONTROL_BYTES,
                              timestamp + leg)
        return leg

    # -- fills and evictions ---------------------------------------------------------------

    def _install(self, tile: TileId, line_address: int, state: LineState,
                 data: bytearray, timestamp: int) -> CacheLine:
        hierarchy = self.hierarchies[int(tile)]
        victim = hierarchy.fill_l2(line_address, state, data,
                                   timestamp=timestamp)
        if victim is not None:
            self._handle_victim(tile, victim, timestamp)
        if self.classifier is not None:
            self.classifier.note_fill(tile, line_address)
        line = hierarchy.l2.peek(line_address)
        assert line is not None
        return line

    def _handle_victim(self, tile: TileId, victim: CacheLine,
                       timestamp: int) -> None:
        """Writeback or evict-notify for an L2 replacement victim.

        Posted off the critical path: the requester does not wait, but
        bandwidth and host transfer costs are consumed.
        """
        victim_home = self.space.home_tile(victim.address)
        directory = self.directories[int(victim_home)]
        entry = directory.entry(victim.address)
        if victim.state is LineState.MODIFIED:
            if victim.data is None:
                raise ProtocolError("dirty victim with no data")
            self._transfer(tile, victim_home,
                           self.line_bytes + HEADER_BYTES, timestamp)
            self.backing.write_line(victim.address, victim.data)
            self._dram_post_write(victim_home, timestamp)
        else:
            # Evict notice keeps the full-map sharer list precise.
            self._transfer(tile, victim_home, CONTROL_BYTES, timestamp)
        directory.remove_sharer(entry, tile, timestamp=timestamp)
        if self.classifier is not None:
            self.classifier.note_eviction(tile, victim.address)

    # -- invariant checking (tests) ----------------------------------------------------------

    def check_coherence_invariants(self) -> None:
        """Raise ProtocolError on any directory/cache inconsistency."""
        for home, directory in enumerate(self.directories):
            for line_address, entry in directory.entries.items():
                if self.space.home_tile(line_address) != home:
                    raise ProtocolError(
                        f"{line_address:#x} homed at wrong tile {home}")
                if entry.state is DirState.MODIFIED:
                    owner = entry.owner
                    line = self.hierarchies[int(owner)].l2.peek(line_address)
                    owned_states = (LineState.MODIFIED,
                                    LineState.EXCLUSIVE)
                    if line is None or line.state not in owned_states:
                        raise ProtocolError(
                            f"owner {int(owner)} of {line_address:#x} "
                            "does not hold it exclusively")
                    if line.state is LineState.EXCLUSIVE \
                            and self.config.protocol != "mesi":
                        raise ProtocolError(
                            "EXCLUSIVE line under the MSI protocol")
                elif entry.state is DirState.SHARED:
                    if not entry.sharers:
                        raise ProtocolError(
                            "SHARED entry with no sharers "
                            f"({line_address:#x})")
                    for sharer in entry.sharers:
                        line = self.hierarchies[int(sharer)].l2.peek(
                            line_address)
                        if line is None or \
                                line.state is not LineState.SHARED:
                            raise ProtocolError(
                                f"sharer {int(sharer)} of "
                                f"{line_address:#x} inconsistent")
                else:
                    if entry.sharers:
                        raise ProtocolError(
                            "UNCACHED entry with sharers "
                            f"({line_address:#x})")
        # No line may be cached anywhere without a directory record.
        for t, hierarchy in enumerate(self.hierarchies):
            for line in hierarchy.resident_l2_lines():
                home = self.space.home_tile(line.address)
                entry = self.directories[int(home)].entries.get(line.address)
                if entry is None or TileId(t) not in entry.sharers:
                    raise ProtocolError(
                        f"tile {t} caches {line.address:#x} without a "
                        "directory record")
            if not hierarchy.check_inclusion():
                raise ProtocolError(f"inclusion violated at tile {t}")
