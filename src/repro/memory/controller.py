"""Per-tile memory controller — the "MMU" of Figure 2b.

The front-end redirects every application memory reference here.  The
controller is the boundary between the interpreter and the memory
system: it validates addresses, splits accesses that straddle cache
lines, models the L1s (timing-only tag arrays), delegates line
ownership to the coherence engine, moves the actual bytes, and charges
the host cost of each model invocation.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.common.errors import ProtocolError
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.memory.cache import LineState
from repro.memory.coherence import CoherenceEngine

#: Charges the host cost of one memory-model access (wired through the
#: scheduler and host cost model by the simulator).
ChargeFn = Callable[[], None]


class MemoryController:
    """One tile's entry point into the memory system."""

    def __init__(self, tile: TileId, engine: CoherenceEngine,
                 charge_memory_access: ChargeFn,
                 stats: StatGroup) -> None:
        self.tile = tile
        self.engine = engine
        self.space = engine.space
        self.hierarchy = engine.hierarchies[int(tile)]
        self.line_bytes = engine.line_bytes
        self._charge_fn = charge_memory_access
        self._loads = stats.counter("loads")
        self._stores = stats.counter("stores")
        self._fetches = stats.counter("fetches")
        l1d = engine.config.l1d
        l1i = engine.config.l1i
        self._l1d_latency = l1d.access_latency if l1d.enabled else 0
        self._l1i_latency = l1i.access_latency if l1i.enabled else 0

    def _charge(self) -> None:
        # Host-cost accounting is timing bookkeeping; fast-forward
        # (:mod:`repro.sample`) skips it along with the rest of the
        # memory timing model.
        if not self.engine.functional:
            self._charge_fn()

    # -- splitting ---------------------------------------------------------------

    def _split(self, address: int, size: int) -> List[Tuple[int, int, int]]:
        """Break [address, address+size) into per-line (addr, off, n)."""
        pieces: List[Tuple[int, int, int]] = []
        remaining = size
        cursor = address
        while remaining > 0:
            line = self.space.line_of(cursor)
            offset = cursor - line
            chunk = min(self.line_bytes - offset, remaining)
            pieces.append((cursor, offset, chunk))
            cursor += chunk
            remaining -= chunk
        return pieces

    # -- data accesses ---------------------------------------------------------------

    def load(self, address: int, size: int, timestamp: int
             ) -> Tuple[bytes, int]:
        """Read target memory; returns (bytes, modelled latency)."""
        self.space.check_access(address, size)
        self._loads.add()
        line_address = self.space.line_of(address)
        offset = address - line_address
        if offset + size <= self.line_bytes:
            # Fast path: the overwhelmingly common single-line access
            # skips the split loop and the result buffer.  Same probes,
            # same counters, same state transitions as the loop below.
            self._charge()
            if self.hierarchy.l1d_hit(line_address):
                line = self.hierarchy.l2.peek(line_address)
                if line is None:
                    raise ProtocolError(
                        f"L1 holds {line_address:#x} but L2 does not "
                        f"(tile {int(self.tile)})")
                latency = self._l1d_latency
            else:
                line, miss_latency = self.engine.read_access(
                    self.tile, address, size, timestamp)
                self.hierarchy.fill_l1d(line_address)
                latency = self._l1d_latency + miss_latency
            assert line.data is not None
            return bytes(line.data[offset:offset + size]), latency
        out = bytearray()
        latency = 0
        for piece_address, offset, chunk in self._split(address, size):
            self._charge()
            line_address = piece_address - offset
            if self.hierarchy.l1d_hit(line_address):
                line = self.hierarchy.l2.peek(line_address)
                if line is None:
                    raise ProtocolError(
                        f"L1 holds {line_address:#x} but L2 does not "
                        f"(tile {int(self.tile)})")
                piece_latency = self._l1d_latency
            else:
                line, miss_latency = self.engine.read_access(
                    self.tile, piece_address, chunk, timestamp + latency)
                self.hierarchy.fill_l1d(line_address)
                piece_latency = self._l1d_latency + miss_latency
            assert line.data is not None
            out += line.data[offset:offset + chunk]
            latency += piece_latency
        return bytes(out), latency

    def store(self, address: int, data: bytes, timestamp: int) -> int:
        """Write target memory; returns the modelled latency."""
        size = len(data)
        self.space.check_access(address, size)
        self._stores.add()
        line_address = self.space.line_of(address)
        offset = address - line_address
        if offset + size <= self.line_bytes:
            # Fast path mirroring :meth:`load`'s single-line case.
            self._charge()
            resident = self.hierarchy.l2.peek(line_address)
            if (self.hierarchy.l1d_hit(line_address)
                    and resident is not None
                    and resident.state is LineState.MODIFIED):
                line = resident
                latency = self._l1d_latency
            else:
                line, miss_latency = self.engine.write_access(
                    self.tile, address, size, timestamp)
                self.hierarchy.fill_l1d(line_address)
                latency = self._l1d_latency + miss_latency
            assert line.data is not None
            line.data[offset:offset + size] = data
            if self.engine.classifier is not None:
                self.engine.classifier.note_store(self.tile, address,
                                                  size)
            return latency
        latency = 0
        consumed = 0
        for piece_address, offset, chunk in self._split(address, size):
            self._charge()
            line_address = piece_address - offset
            resident = self.hierarchy.l2.peek(line_address)
            if (self.hierarchy.l1d_hit(line_address) and resident is not None
                    and resident.state is LineState.MODIFIED):
                line = resident
                piece_latency = self._l1d_latency
            else:
                line, miss_latency = self.engine.write_access(
                    self.tile, piece_address, chunk, timestamp + latency)
                self.hierarchy.fill_l1d(line_address)
                piece_latency = self._l1d_latency + miss_latency
            assert line.data is not None
            line.data[offset:offset + chunk] = \
                data[consumed:consumed + chunk]
            if self.engine.classifier is not None:
                self.engine.classifier.note_store(
                    self.tile, piece_address, chunk)
            consumed += chunk
            latency += piece_latency
        return latency

    def fetch(self, pc: int, timestamp: int) -> int:
        """Model an instruction fetch at ``pc``; returns the latency.

        Code lines are read-shared and flow through the same coherence
        path as data (they are simply never written).
        """
        self._fetches.add()
        self._charge()
        line_address = self.space.line_of(pc)
        if self.hierarchy.l1i_hit(line_address):
            return self._l1i_latency
        _, miss_latency = self.engine.read_access(
            self.tile, pc, 4, timestamp)
        self.hierarchy.fill_l1i(line_address)
        return self._l1i_latency + miss_latency
