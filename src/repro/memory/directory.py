"""Directory organisations for cache coherence (paper §4.4).

Graphite supports a limited directory MSI protocol with ``i`` sharers,
denoted Dir_iNB [Agarwal et al., ISCA'88], as the baseline, plus
full-map directories and the LimitLESS protocol [Chaiken et al.,
ASPLOS'91].  In LimitLESS a limited number of hardware pointers exist
for the first ``i`` sharers, and additional requests to shared data are
handled by a software trap, preventing the need to evict existing
sharers.

The directory for each line is physically distributed: every tile holds
the slice for the lines it homes (uniform interleaving).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.common.config import MemoryConfig
from repro.common.errors import ConfigError, ProtocolError
from repro.common.ids import TileId
from repro.common.stats import StatGroup

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import Channel


class DirState(enum.Enum):
    """Directory-visible state of one line."""

    UNCACHED = "U"
    SHARED = "S"
    MODIFIED = "M"


@dataclass
class DirectoryEntry:
    """Directory knowledge about one line."""

    state: DirState = DirState.UNCACHED
    #: Sharer tiles in insertion order (dict used as an ordered set).
    sharers: Dict[TileId, None] = field(default_factory=dict)

    @property
    def owner(self) -> Optional[TileId]:
        """Owning tile when MODIFIED (exactly one sharer)."""
        if self.state is not DirState.MODIFIED:
            return None
        if len(self.sharers) != 1:
            raise ProtocolError(
                f"MODIFIED entry with {len(self.sharers)} sharers")
        return next(iter(self.sharers))

    def sharer_list(self) -> List[TileId]:
        return list(self.sharers)


@dataclass
class AddResult:
    """Outcome of registering a sharer with a directory organisation."""

    #: Sharers that must be invalidated to make room (Dir_iNB eviction).
    evict: List[TileId] = field(default_factory=list)
    #: Extra latency charged (LimitLESS software trap).
    extra_latency: int = 0


class Directory:
    """One tile's directory slice under a pluggable organisation."""

    kind = "full_map"

    def __init__(self, home: TileId, config: MemoryConfig,
                 stats: StatGroup,
                 telemetry: Optional["Channel"] = None) -> None:
        self.home = home
        self.config = config
        self.entries: Dict[int, DirectoryEntry] = {}
        self.stats = stats
        #: DIRECTORY-category telemetry channel, or ``None``.
        self._tele = telemetry
        self._lookups = stats.counter("lookups")

    def entry(self, line_address: int) -> DirectoryEntry:
        """Fetch (or create) the entry for a line homed here."""
        e = self.entries.get(line_address)
        if e is None:
            e = DirectoryEntry()
            self.entries[line_address] = e
        self._lookups.add()
        return e

    def add_sharer(self, entry: DirectoryEntry, tile: TileId,
                   timestamp: int = 0) -> AddResult:
        """Register ``tile`` as a sharer; organisation-specific limits."""
        entry.sharers[tile] = None
        if self._tele is not None:
            self._tele.emit("sharer_add", int(self.home), timestamp,
                            {"sharer": int(tile),
                             "sharers": len(entry.sharers)})
        return AddResult()

    def remove_sharer(self, entry: DirectoryEntry, tile: TileId,
                      timestamp: int = 0) -> None:
        entry.sharers.pop(tile, None)
        if not entry.sharers:
            entry.state = DirState.UNCACHED
        if self._tele is not None:
            self._tele.emit("sharer_remove", int(self.home), timestamp,
                            {"sharer": int(tile),
                             "sharers": len(entry.sharers)})

    def invalidation_latency(self, entry: DirectoryEntry) -> int:
        """Extra directory-side latency for invalidating all sharers."""
        return 0


class FullMapDirectory(Directory):
    """Unbounded sharer bit-vector: never evicts, never traps."""

    kind = "full_map"


class LimitedDirectory(Directory):
    """Dir_iNB: at most ``i`` sharer pointers, no broadcast.

    When an ``i+1``-th sharer arrives, an existing sharer is evicted
    (invalidated) to free a pointer.  Heavily shared read data therefore
    thrashes: this is the protocol whose scaling collapses in Figure 9.
    """

    kind = "limited"

    def __init__(self, home: TileId, config: MemoryConfig,
                 stats: StatGroup,
                 telemetry: Optional["Channel"] = None) -> None:
        super().__init__(home, config, stats, telemetry)
        self.max_sharers = config.directory_max_sharers
        self._pointer_evictions = stats.counter("pointer_evictions")

    def add_sharer(self, entry: DirectoryEntry, tile: TileId,
                   timestamp: int = 0) -> AddResult:
        result = AddResult()
        if tile not in entry.sharers:
            while len(entry.sharers) >= self.max_sharers:
                victim = next(iter(entry.sharers))  # oldest pointer
                del entry.sharers[victim]
                result.evict.append(victim)
                self._pointer_evictions.add()
                if self._tele is not None:
                    self._tele.emit("pointer_evict", int(self.home),
                                    timestamp, {"victim": int(victim),
                                                "for": int(tile)})
        entry.sharers[tile] = None
        if self._tele is not None:
            self._tele.emit("sharer_add", int(self.home), timestamp,
                            {"sharer": int(tile),
                             "sharers": len(entry.sharers)})
        return result


class LimitLessDirectory(Directory):
    """LimitLESS(i): hardware pointers for ``i`` sharers, software beyond.

    Overflowing sharers are retained (no eviction); instead, directory
    operations touching the overflowed entry pay a software-trap latency.
    Once read-only data is cached everywhere, LimitLESS behaves like
    full-map (paper §4.4) — the trap cost is paid only while the sharer
    set is still growing or on invalidation.
    """

    kind = "limitless"

    def __init__(self, home: TileId, config: MemoryConfig,
                 stats: StatGroup,
                 telemetry: Optional["Channel"] = None) -> None:
        super().__init__(home, config, stats, telemetry)
        self.hw_pointers = config.directory_max_sharers
        self.trap_latency = config.limitless_trap_latency
        self._traps = stats.counter("software_traps")

    def add_sharer(self, entry: DirectoryEntry, tile: TileId,
                   timestamp: int = 0) -> AddResult:
        result = AddResult()
        if tile not in entry.sharers and \
                len(entry.sharers) >= self.hw_pointers:
            result.extra_latency = self.trap_latency
            self._traps.add()
            if self._tele is not None:
                self._tele.emit("trap", int(self.home), timestamp,
                                {"sharer": int(tile),
                                 "sharers": len(entry.sharers)})
        entry.sharers[tile] = None
        if self._tele is not None:
            self._tele.emit("sharer_add", int(self.home), timestamp,
                            {"sharer": int(tile),
                             "sharers": len(entry.sharers)})
        return result

    def invalidation_latency(self, entry: DirectoryEntry) -> int:
        if len(entry.sharers) > self.hw_pointers:
            self._traps.add()
            return self.trap_latency
        return 0


def create_directory(home: TileId, config: MemoryConfig,
                     stats: StatGroup,
                     telemetry: Optional["Channel"] = None) -> Directory:
    """Instantiate the configured directory organisation for one tile."""
    if config.directory_type == "full_map":
        return FullMapDirectory(home, config, stats, telemetry)
    if config.directory_type == "limited":
        return LimitedDirectory(home, config, stats, telemetry)
    if config.directory_type == "limitless":
        return LimitLessDirectory(home, config, stats, telemetry)
    raise ConfigError(f"unknown directory type {config.directory_type!r}")
