"""DRAM controller model.

The default target architecture places a memory controller at every
tile, evenly splitting total off-chip bandwidth (paper §4.4): with
``n`` tiles each controller serves ``total_bandwidth / n``.  As the
tile count grows, per-controller bandwidth shrinks and the service time
of each request grows — one of the two effects behind the flattening
speedup curves of Figure 9 (the other being network distance).

Queueing delay is modelled with the lax-compatible queue model of
§3.6.1: an independent queue clock compared against the windowed
global-progress estimate.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.common.config import DramConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.sync.progress import ProgressEstimator
from repro.sync.queue_model import LaxQueueModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import Channel


class DramController:
    """One tile's slice of the off-chip memory interface."""

    def __init__(self, tile: TileId, config: DramConfig, num_tiles: int,
                 clock_hz: int, progress: ProgressEstimator,
                 stats: StatGroup,
                 telemetry: Optional["Channel"] = None) -> None:
        config.validate()
        self.tile = tile
        self.config = config
        #: Bytes per target cycle this controller can move — the static
        #: partition of total off-chip bandwidth.
        self.bytes_per_cycle = (config.total_bandwidth_bytes_per_s
                                / clock_hz / num_tiles)
        self.queue = LaxQueueModel(progress, stats)
        #: DRAM-category telemetry channel, or ``None``.
        self._tele = telemetry
        self._reads = stats.counter("reads")
        self._writes = stats.counter("writes")
        self._read_latency = stats.counter("read_latency_cycles")

    def service_cycles(self, size_bytes: int) -> int:
        """Cycles the channel is busy transferring ``size_bytes``."""
        return max(int(round(size_bytes / self.bytes_per_cycle)), 1)

    def read(self, timestamp: int, size_bytes: int) -> int:
        """Latency of a read: fixed access latency + queue + transfer."""
        occupancy = self.queue.access(timestamp, self.service_cycles(size_bytes))
        latency = self.config.access_latency + occupancy
        self._reads.add()
        self._read_latency.add(latency)
        if self._tele is not None:
            self._tele.emit("read", int(self.tile), timestamp,
                            {"occupancy": occupancy, "latency": latency,
                             "bytes": size_bytes})
        return latency

    def post_write(self, timestamp: int, size_bytes: int) -> None:
        """A posted write(back): consumes bandwidth, off the critical path."""
        occupancy = self.queue.access(timestamp,
                                      self.service_cycles(size_bytes))
        self._writes.add()
        if self._tele is not None:
            self._tele.emit("write", int(self.tile), timestamp,
                            {"occupancy": occupancy, "bytes": size_bytes})
