"""Per-tile cache hierarchy: L1I + L1D + private L2.

The L2 is the coherence point and holds real line data; the L1s are
timing-only tag arrays kept *inclusive* with the L2 (an L2 eviction or
invalidation removes the line from both L1s).  Graphite's target
memory architecture is exactly this: private L1 data and instruction
caches with local unified L2 caches (paper §3.2); Figure 8 disables the
L1s via ``CacheConfig.enabled``.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.common.config import MemoryConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.memory.cache import Cache, CacheLine, LineState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import Channel


class CacheHierarchy:
    """One tile's caches plus inclusion maintenance."""

    def __init__(self, tile: TileId, config: MemoryConfig,
                 stats: StatGroup,
                 telemetry: Optional["Channel"] = None) -> None:
        self.tile = tile
        self.config = config
        self.l1i: Optional[Cache] = (
            Cache("l1i", config.l1i, stats.child("l1i"))
            if config.l1i.enabled else None)
        self.l1d: Optional[Cache] = (
            Cache("l1d", config.l1d, stats.child("l1d"))
            if config.l1d.enabled else None)
        # Only the coherence point is traced; the timing-only L1 tag
        # arrays would triple event volume without adding information.
        self.l2 = Cache("l2", config.l2, stats.child("l2"),
                        tile=int(tile), telemetry=telemetry)

    # -- L1 timing-side -----------------------------------------------------------

    def l1d_hit(self, line_address: int) -> bool:
        """Probe the L1D (counts as an access); False when disabled."""
        if self.l1d is None:
            return False
        return self.l1d.lookup(line_address) is not None

    def l1i_hit(self, line_address: int) -> bool:
        if self.l1i is None:
            return False
        return self.l1i.lookup(line_address) is not None

    def fill_l1d(self, line_address: int) -> None:
        """Install the tag in the L1D after an L1 miss (no data)."""
        if self.l1d is not None:
            self.l1d.insert(line_address, LineState.SHARED, None)

    def fill_l1i(self, line_address: int) -> None:
        if self.l1i is not None:
            self.l1i.insert(line_address, LineState.SHARED, None)

    # -- L2 / coherence side ---------------------------------------------------------

    def l2_line(self, line_address: int, count: bool = True
                ) -> Optional[CacheLine]:
        """The L2's resident line, refreshing LRU."""
        return self.l2.lookup(line_address, count=count)

    def fill_l2(self, line_address: int, state: LineState,
                data: bytearray,
                timestamp: int = 0) -> Optional[CacheLine]:
        """Install a line in the L2; returns the victim if one fell out.

        Inclusion: the caller is responsible for handing the victim to
        the coherence engine; this method removes it from the L1s.
        """
        victim = self.l2.insert(line_address, state, data,
                                timestamp=timestamp)
        if victim is not None:
            self._purge_l1(victim.address)
        return victim

    def invalidate(self, line_address: int,
                   timestamp: int = 0) -> Optional[CacheLine]:
        """Coherence invalidation: drop the line from every level."""
        self._purge_l1(line_address)
        return self.l2.remove(line_address, timestamp=timestamp)

    def downgrade(self, line_address: int) -> Optional[CacheLine]:
        """M -> S transition on a remote read (data stays resident)."""
        line = self.l2.peek(line_address)
        if line is not None:
            line.state = LineState.SHARED
        return line

    def _purge_l1(self, line_address: int) -> None:
        if self.l1d is not None:
            self.l1d.remove(line_address)
        if self.l1i is not None:
            self.l1i.remove(line_address)

    # -- invariants (used by tests) ---------------------------------------------------

    def resident_l2_lines(self) -> List[CacheLine]:
        return list(self.l2)

    def check_inclusion(self) -> bool:
        """Every L1-resident tag must be L2-resident (inclusion)."""
        for l1 in (self.l1i, self.l1d):
            if l1 is None:
                continue
            for line in l1:
                if self.l2.peek(line.address) is None:
                    return False
        return True
