"""Cache-miss classification: cold / capacity / true / false sharing.

Figure 8 of the paper reproduces the SPLASH-2 characterisation of miss
*types* as the line size varies, so the memory system must attribute
every miss to a cause.  We use the standard at-miss-time taxonomy:

* **cold** — the tile never held the line before;
* **capacity** — the line was last removed by this tile's own
  replacement policy;
* **true sharing** — the line was invalidated by a remote writer, and a
  word written remotely since then is among the words this access
  touches;
* **false sharing** — the line was invalidated by a remote writer, but
  the remotely written words are disjoint from the words touched now;
* **coherence** — the line was invalidated for a non-write reason
  (a Dir_iNB pointer eviction).

Tracking is word-granular (4-byte words, the SPLASH-2 convention) using
a global write-version counter, so classification needs no future
knowledge and costs O(words-per-line) per miss.
"""

from __future__ import annotations

import enum
from typing import Dict, Set, Tuple

from repro.common.ids import TileId
from repro.common.stats import StatGroup

WORD_BYTES = 4


class MissType(enum.Enum):
    COLD = "cold"
    CAPACITY = "capacity"
    TRUE_SHARING = "true_sharing"
    FALSE_SHARING = "false_sharing"
    COHERENCE = "coherence"


class _Removal:
    """Why and when a tile lost a line."""

    __slots__ = ("reason", "version")
    EVICT = 0
    INVAL_WRITE = 1
    INVAL_OTHER = 2

    def __init__(self, reason: int, version: int) -> None:
        self.reason = reason
        self.version = version


class MissClassifier:
    """Attributes every miss of every tile to a :class:`MissType`."""

    def __init__(self, num_tiles: int, line_bytes: int,
                 stats: StatGroup) -> None:
        self.num_tiles = num_tiles
        self.line_bytes = line_bytes
        self.stats = stats
        self._version = 0
        #: line address -> {absolute word index -> last write version}.
        self._line_writes: Dict[int, Dict[int, int]] = {}
        #: per tile: lines ever held.
        self._seen: Tuple[Set[int], ...] = tuple(
            set() for _ in range(num_tiles))
        #: per tile: line -> removal record.
        self._removed: Tuple[Dict[int, _Removal], ...] = tuple(
            {} for _ in range(num_tiles))
        self._counts = {t: stats.counter(f"miss_{t.value}")
                        for t in MissType}

    # -- events reported by the memory system ---------------------------------

    def note_store(self, tile: TileId, address: int, size: int) -> None:
        """A store committed: bump write versions of the covered words."""
        del tile  # the writer's identity is implicit in invalidations
        self._version += 1
        line = address - (address % self.line_bytes)
        words = self._line_writes.setdefault(line, {})
        first = address // WORD_BYTES
        last = (address + size - 1) // WORD_BYTES
        for w in range(first, last + 1):
            words[w] = self._version

    def note_fill(self, tile: TileId, line_address: int) -> None:
        """A line became resident at ``tile``."""
        self._seen[int(tile)].add(line_address)
        self._removed[int(tile)].pop(line_address, None)

    def note_eviction(self, tile: TileId, line_address: int) -> None:
        """``tile`` lost the line to its own replacement policy."""
        self._removed[int(tile)][line_address] = _Removal(
            _Removal.EVICT, self._version)

    def note_invalidation(self, tile: TileId, line_address: int,
                          due_to_write: bool) -> None:
        """``tile`` lost the line to a coherence invalidation."""
        reason = _Removal.INVAL_WRITE if due_to_write else _Removal.INVAL_OTHER
        self._removed[int(tile)][line_address] = _Removal(
            reason, self._version)

    # -- classification -----------------------------------------------------------

    def classify(self, tile: TileId, address: int, size: int) -> MissType:
        """Classify a miss by ``tile`` accessing [address, address+size)."""
        line = address - (address % self.line_bytes)
        t = int(tile)
        if line not in self._seen[t]:
            kind = MissType.COLD
        else:
            removal = self._removed[t].get(line)
            if removal is None or removal.reason == _Removal.EVICT:
                kind = MissType.CAPACITY
            elif removal.reason == _Removal.INVAL_OTHER:
                kind = MissType.COHERENCE
            else:
                kind = self._sharing_kind(line, address, size,
                                          removal.version)
        self._counts[kind].add()
        return kind

    def _sharing_kind(self, line: int, address: int, size: int,
                      since_version: int) -> MissType:
        accessed_first = address // WORD_BYTES
        accessed_last = (address + size - 1) // WORD_BYTES
        words = self._line_writes.get(line, {})
        for w, version in words.items():
            if version > since_version and \
                    accessed_first <= w <= accessed_last:
                return MissType.TRUE_SHARING
        return MissType.FALSE_SHARING

    # -- reporting -------------------------------------------------------------------

    def counts(self) -> Dict[MissType, int]:
        return {t: c.value for t, c in self._counts.items()}

    @property
    def total_misses(self) -> int:
        return sum(c.value for c in self._counts.values())
