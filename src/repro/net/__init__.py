"""Multi-host networking for the distributed backend.

``repro.net`` is the layer that lets one simulation span machines
(ROADMAP item 2; Graphite §3.5 runs one target across host processes
*on different hosts*).  It is deliberately thin: the coordinator/worker
wire (:mod:`repro.distrib.wire`) is unchanged, and this package only
supplies the byte pipes it travels over plus the membership machinery
around them:

* :mod:`repro.net.channel` — the :class:`~repro.net.channel.Channel`
  abstraction the cluster speaks agnostically, with a multiprocessing
  pipe implementation and a TCP implementation over the
  length-prefixed framing of :mod:`repro.transport.frames`.
* :mod:`repro.net.handshake` — the JSON hello/welcome exchange that
  fails version- or config-mismatched peers loudly before any pickle
  crosses the socket.
* :mod:`repro.net.listener` — the coordinator-side accept loop remote
  workers dial into (``repro worker --connect host:port``).
* :mod:`repro.net.rebalance` — the policy that picks which worker to
  drain from observed per-worker ``quantum.run`` self-time.

Placement of tiles onto workers is host-side bookkeeping only: every
modelled cost reads the simulated :class:`~repro.host.cluster.
ClusterLayout`, never the executor map, so joins, leaves and live
shard migrations cannot perturb simulated metrics.
"""

from repro.net.channel import (
    Channel,
    ChannelClosedError,
    ChannelError,
    PipeChannel,
    TcpChannel,
)
from repro.net.handshake import HandshakeError, Hello, Welcome
from repro.net.listener import NetListener, connect_worker

__all__ = [
    "Channel",
    "ChannelClosedError",
    "ChannelError",
    "PipeChannel",
    "TcpChannel",
    "HandshakeError",
    "Hello",
    "Welcome",
    "NetListener",
    "connect_worker",
]
