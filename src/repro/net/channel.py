"""Channel: the byte pipe a coordinator/worker pair speaks over.

The cluster logic (:mod:`repro.distrib.coordinator`) is written
against this small surface — blocking framed send/recv, a bounded
poll, best-effort liveness — so the same code drives a forked child
over a multiprocessing pipe and a remote worker over TCP.  A channel
moves opaque ``bytes``; the versioned pickle wire on top
(:mod:`repro.distrib.wire`) neither knows nor cares which transport
carried it, which is what keeps the two paths byte-identical.

Close/crash semantics are normalized: any "the peer is gone" condition
(EOF, broken pipe, reset) surfaces as :class:`ChannelClosedError`, so
callers distinguish *dead peer* from *malformed traffic*
(:class:`~repro.transport.frames.FrameError`) without transport-
specific except clauses.
"""

from __future__ import annotations

import select
import socket
from typing import Optional

from repro.common.errors import TransportError
from repro.transport.frames import (
    ConnectionClosed,
    FrameError,
    recv_frame,
    send_frame,
)


class ChannelError(TransportError):
    """A channel operation failed below the wire format."""


class ChannelClosedError(ChannelError):
    """The peer end of the channel is gone (EOF, broken pipe, reset)."""


class Channel:
    """One framed, bidirectional byte pipe to a single peer.

    ``proc`` is the locally-spawned process behind the channel when
    there is one (forked pipe workers, self-dialed TCP workers) and
    ``None`` for remote peers — liveness then rests on the socket.
    """

    kind = "base"
    proc = None

    def send_bytes(self, blob: bytes) -> None:
        raise NotImplementedError

    def recv_bytes(self) -> bytes:
        raise NotImplementedError

    def poll(self, timeout: float = 0.0) -> bool:
        """True when a frame (or EOF) is ready to be received."""
        raise NotImplementedError

    def alive(self) -> bool:
        """Best-effort: could the peer still send us a frame?"""
        raise NotImplementedError

    def exitcode(self) -> Optional[int]:
        """Exit code of the peer process, when one is attached."""
        proc = self.proc
        return proc.exitcode if proc is not None else None

    def describe(self) -> str:
        return self.kind

    def close(self) -> None:
        raise NotImplementedError


class PipeChannel(Channel):
    """A duplex multiprocessing pipe, optionally owning the child."""

    kind = "pipe"

    def __init__(self, conn, proc=None) -> None:
        self.conn = conn
        self.proc = proc

    def send_bytes(self, blob: bytes) -> None:
        try:
            self.conn.send_bytes(blob)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ChannelClosedError(f"pipe closed: {exc}") from exc

    def recv_bytes(self) -> bytes:
        try:
            return self.conn.recv_bytes()
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ChannelClosedError(f"pipe closed: {exc}") from exc

    def poll(self, timeout: float = 0.0) -> bool:
        try:
            return self.conn.poll(timeout)
        except (BrokenPipeError, EOFError, OSError):
            return True  # EOF is "ready": recv will raise closed

    def alive(self) -> bool:
        if self.proc is not None:
            return self.proc.is_alive()
        return not self.conn.closed

    def describe(self) -> str:
        if self.proc is not None:
            return f"pipe pid {self.proc.pid}"
        return "pipe"

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


class TcpChannel(Channel):
    """A connected stream socket under length-prefixed framing."""

    kind = "tcp"

    def __init__(self, sock: socket.socket, peer: str = "",
                 proc=None) -> None:
        self.sock = sock
        self.proc = proc
        self._closed = False
        self._eof = False
        if not peer:
            try:
                host, port = sock.getpeername()[:2]
                peer = f"{host}:{port}"
            except OSError:
                peer = "?"
        self.peer = peer

    def send_bytes(self, blob: bytes) -> None:
        try:
            send_frame(self.sock, blob)
        except FrameError:
            raise
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            self._eof = True
            raise ChannelClosedError(
                f"tcp peer {self.peer} gone: {exc}") from exc

    def recv_bytes(self) -> bytes:
        try:
            return recv_frame(self.sock)
        except ConnectionClosed as exc:
            self._eof = True
            raise ChannelClosedError(
                f"tcp peer {self.peer} closed: {exc}") from exc
        except FrameError:
            raise  # protocol violation, not a dead peer
        except (ConnectionError, OSError) as exc:
            self._eof = True
            raise ChannelClosedError(
                f"tcp peer {self.peer} gone: {exc}") from exc

    def poll(self, timeout: float = 0.0) -> bool:
        if self._closed or self._eof:
            return True
        try:
            ready, _, _ = select.select([self.sock], [], [], timeout)
        except OSError:
            return True
        return bool(ready)

    def alive(self) -> bool:
        """Liveness without consuming data: peek one byte nonblocking."""
        if self._closed or self._eof:
            return False
        if self.proc is not None and not self.proc.is_alive():
            # The process died; unread frames may still sit in the
            # socket buffer, so EOF detection below stays the arbiter
            # only when nothing is buffered.
            pass
        try:
            chunk = self.sock.recv(1, socket.MSG_PEEK | socket.MSG_DONTWAIT)
        except (BlockingIOError, InterruptedError):
            return True
        except OSError:
            self._eof = True
            return False
        if chunk == b"":
            self._eof = True
            return False
        return True

    def describe(self) -> str:
        return f"tcp {self.peer}"

    def close(self) -> None:
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
