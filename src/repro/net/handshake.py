"""The hello/welcome exchange that opens every TCP channel.

Before a single pickle crosses a socket, the two ends exchange one
JSON frame each (over the :mod:`repro.transport.frames` framing):

* the dialer sends a :class:`Hello` carrying its net-protocol version,
  its :data:`repro.distrib.wire.WIRE_VERSION`, and which role it wants
  to play;
* the listener answers with a :class:`Welcome` carrying its own
  versions, its role (``coordinator`` for a simulation, ``serve`` for
  a job daemon), and — for a coordinator — the config fingerprint
  (:meth:`~repro.common.config.SimulationConfig.content_hash`) of the
  run the worker is joining, or a :class:`Reject` naming why not.

Any version skew fails both ends loudly with :class:`HandshakeError`
at connect time, instead of desyncing mid-run when the first
incompatible pickle frame arrives.  JSON (not pickle) keeps the
exchange safe to run against an untrusted or mismatched peer.

The frame schema below is covered by the W001 wire lint like the
distrib and serve wires: bump :data:`WIRE_VERSION` on any incompatible
change and re-accept the manifest.
"""

from __future__ import annotations

import json
import socket
from dataclasses import asdict, dataclass
from typing import Union

from repro.common.errors import TransportError
from repro.transport.frames import FrameError, recv_frame, send_frame

#: Version of the handshake/membership exchange itself (independent of
#: the pickle wire version it reports).  v1: hello/welcome/reject.
#: v2: Welcome carries the coordinator's ``trace`` span context so a
#: dialing worker joins the job's span tree (:mod:`repro.obs`).
#: v3: Welcome carries the run's current execution ``mode`` so a
#: worker that joins mid-fast-forward starts functional
#: (:mod:`repro.sample`).
WIRE_VERSION = 3


class HandshakeError(TransportError):
    """The peer spoke a different protocol, version, or config.

    Based on :class:`~repro.common.errors.TransportError` (not the
    distrib hierarchy): :mod:`repro.net` sits below both consumers —
    the mp coordinator and the serve daemon — and must import
    neither.
    """


@dataclass(frozen=True)
class Hello:
    """Dialer's opening frame: who am I, which protocol do I speak."""

    role: str
    net_version: int
    wire_version: int
    pid: int
    host: str


@dataclass(frozen=True)
class Welcome:
    """Listener's acceptance: its versions, role and run fingerprint.

    ``trace`` is the listener's distributed-trace ID (empty when the
    run is untraced): a worker that joins mid-run tags its own
    telemetry with it so the merged timeline stays one span tree.

    ``mode`` is the run's current execution mode (``detailed`` or
    ``functional``): a worker joining during a fast-forward stretch
    starts its interpreters functional instead of waiting for the
    first SET_MODE frame (:mod:`repro.sample`).
    """

    role: str
    net_version: int
    wire_version: int
    config_fingerprint: str
    trace: str = ""
    mode: str = "detailed"


@dataclass(frozen=True)
class Reject:
    """Listener's refusal, with a human-readable reason."""

    reason: str


_KINDS = {"hello": Hello, "welcome": Welcome, "reject": Reject}
_NAMES = {cls: kind for kind, cls in _KINDS.items()}

HandshakeFrame = Union[Hello, Welcome, Reject]


def encode_handshake(message: HandshakeFrame) -> bytes:
    body = {"kind": _NAMES[type(message)]}
    body.update(asdict(message))
    return json.dumps(body, sort_keys=True).encode("utf-8")


def decode_handshake(blob: bytes) -> HandshakeFrame:
    try:
        body = json.loads(blob.decode("utf-8"))
        cls = _KINDS[body.pop("kind")]
        return cls(**body)
    except (ValueError, KeyError, TypeError) as exc:
        raise HandshakeError(
            f"peer sent an undecodable handshake frame: {exc}") from exc


def _recv_handshake(sock: socket.socket) -> HandshakeFrame:
    try:
        return decode_handshake(recv_frame(sock))
    except FrameError as exc:
        raise HandshakeError(
            f"peer hung up during the handshake: {exc}") from exc


def _send_handshake(sock: socket.socket, frame: HandshakeFrame) -> None:
    try:
        send_frame(sock, encode_handshake(frame))
    except OSError as exc:
        raise HandshakeError(
            f"peer hung up during the handshake: {exc}") from exc


def greet_listener(sock: socket.socket, wire_version: int,
                   role: str = "worker") -> Welcome:
    """Dialer side: send Hello, validate the Welcome (or Reject)."""
    _send_handshake(sock, Hello(
        role=role, net_version=WIRE_VERSION, wire_version=wire_version,
        pid=_own_pid(), host=socket.gethostname()))
    reply = _recv_handshake(sock)
    if isinstance(reply, Reject):
        raise HandshakeError(f"listener rejected us: {reply.reason}")
    if not isinstance(reply, Welcome):
        raise HandshakeError(
            f"expected welcome, got {type(reply).__name__}")
    if reply.net_version != WIRE_VERSION:
        raise HandshakeError(
            f"net protocol mismatch: peer speaks v{reply.net_version}, "
            f"we speak v{WIRE_VERSION}")
    if reply.wire_version != wire_version:
        raise HandshakeError(
            f"pickle wire mismatch: peer speaks v{reply.wire_version}, "
            f"we speak v{wire_version}")
    return reply


def greet_dialer(sock: socket.socket, role: str, wire_version: int,
                 config_fingerprint: str, trace: str = "",
                 mode: str = "detailed") -> Hello:
    """Listener side: validate the Hello, answer Welcome or Reject."""
    hello = _recv_handshake(sock)
    if not isinstance(hello, Hello):
        raise HandshakeError(
            f"expected hello, got {type(hello).__name__}")
    reason = None
    if hello.net_version != WIRE_VERSION:
        reason = (f"net protocol mismatch: you speak "
                  f"v{hello.net_version}, we speak v{WIRE_VERSION}")
    elif hello.wire_version != wire_version:
        reason = (f"pickle wire mismatch: you speak "
                  f"v{hello.wire_version}, we speak v{wire_version}")
    if reason is not None:
        try:
            send_frame(sock, encode_handshake(Reject(reason=reason)))
        except OSError:
            pass
        raise HandshakeError(
            f"rejected {hello.role} {hello.host}/{hello.pid}: {reason}")
    _send_handshake(sock, Welcome(
        role=role, net_version=WIRE_VERSION, wire_version=wire_version,
        config_fingerprint=config_fingerprint, trace=trace, mode=mode))
    return hello


def _own_pid() -> int:
    import os
    return os.getpid()
