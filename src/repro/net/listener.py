"""Coordinator-side TCP accept loop and the worker-side dialer.

A listener owns one bound TCP socket that remote workers dial into
(``repro worker --connect host:port``).  Each accepted connection runs
the :mod:`repro.net.handshake` exchange before it becomes a
:class:`~repro.net.channel.TcpChannel`; a peer with mismatched
versions is rejected on the spot and never touches the pickle wire.

Accepting is deliberately pull-based — :meth:`NetListener.accept` with
an explicit timeout — because membership changes only at quantum
boundaries: the coordinator polls for dial-ins from its scheduler
hook, so a join can never interleave with a running quantum.
"""

from __future__ import annotations

import socket
from typing import Optional, Tuple

from repro.net.channel import TcpChannel
from repro.net.handshake import (
    HandshakeError,
    Hello,
    Welcome,
    greet_dialer,
    greet_listener,
)

#: Seconds a half-open handshake may stall the accept loop.
_HANDSHAKE_TIMEOUT = 10.0


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``host:port`` (host may be empty for wildcard bind)."""
    host, _, port = address.rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise ValueError(
            f"bad address {address!r}; expected host:port") from None


class NetListener:
    """A bound, listening socket that hands out handshaken channels."""

    def __init__(self, address: str, role: str, wire_version: int,
                 config_fingerprint: str = "", trace: str = "") -> None:
        self.role = role
        self.wire_version = wire_version
        self.config_fingerprint = config_fingerprint
        self.trace = trace
        #: Execution mode advertised in the Welcome (net wire v3);
        #: updated live by the coordinator's SET_MODE broadcast so a
        #: mid-fast-forward joiner starts functional.
        self.mode = "detailed"
        host, port = parse_address(address)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(64)

    @property
    def address(self) -> str:
        host, port = self._sock.getsockname()[:2]
        return f"{host}:{port}"

    def accept(self, timeout: float = 0.0
               ) -> Optional[Tuple[TcpChannel, Hello]]:
        """Accept and handshake one dial-in; ``None`` on timeout.

        Raises :class:`~repro.net.handshake.HandshakeError` when the
        peer connected but spoke the wrong protocol — the caller
        decides whether that is fatal (cluster formation) or merely
        reportable (a bad mid-run join attempt).
        """
        self._sock.settimeout(timeout if timeout > 0 else 0.000001)
        try:
            conn, addr = self._sock.accept()
        except (socket.timeout, BlockingIOError):
            return None
        finally:
            self._sock.settimeout(None)
        conn.settimeout(_HANDSHAKE_TIMEOUT)
        try:
            hello = greet_dialer(conn, self.role, self.wire_version,
                                 self.config_fingerprint,
                                 trace=self.trace, mode=self.mode)
        except HandshakeError:
            conn.close()
            raise
        except OSError as exc:
            conn.close()
            raise HandshakeError(
                f"handshake with {addr!r} failed: {exc}") from exc
        conn.settimeout(None)
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return TcpChannel(conn, peer=f"{addr[0]}:{addr[1]}"), hello

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


#: Seconds between dial retries while a coordinator is still binding.
_DIAL_RETRY = 0.1


def connect_worker(address: str, wire_version: int,
                   timeout: float = 30.0,
                   role: str = "worker") -> Tuple[TcpChannel, Welcome]:
    """Dial a listener and handshake; the worker side of a join.

    ``timeout`` bounds the whole dial, retries included: workers and
    coordinator are launched independently (often by the same script,
    on different hosts), so a connection refused before the deadline
    means "not bound *yet*", not "wrong address".
    """
    import time
    host, port = parse_address(address)
    deadline = time.monotonic() + timeout
    while True:
        remaining = max(deadline - time.monotonic(), 0.001)
        try:
            sock = socket.create_connection((host, port),
                                            timeout=remaining)
            break
        except OSError as exc:
            if time.monotonic() + _DIAL_RETRY >= deadline:
                raise HandshakeError(
                    f"cannot reach coordinator at {address}: "
                    f"{exc}") from exc
            time.sleep(_DIAL_RETRY)
    sock.settimeout(_HANDSHAKE_TIMEOUT)
    try:
        welcome = greet_listener(sock, wire_version, role=role)
    except HandshakeError:
        sock.close()
        raise
    except OSError as exc:
        sock.close()
        raise HandshakeError(
            f"handshake with {address} failed: {exc}") from exc
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return TcpChannel(sock, peer=address), welcome
