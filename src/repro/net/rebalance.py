"""Rebalance policy: which worker to drain, decided from host time.

The signal is the per-worker ``quantum.run`` self-time exported by the
worker-side host profiler (:mod:`repro.profile.timers`) — the seconds
a worker's host CPU actually spent interpreting target ops, the same
quantity the paper's slowdown analysis attributes (§4.2).  A worker
whose *interval* busy time exceeds the fastest worker's by more than
``threshold``× is declared slow — its host is oversubscribed or just
weaker — and its whole shard is drained to the least busy worker via
the checkpoint-migration path.

The policy is purely observational: it reads host time and moves
*placement*, never simulated state, so any (or no) rebalance decision
leaves simulated metrics untouched.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple


class SlowestWorkerPolicy:
    """Drain the slowest worker when imbalance crosses a threshold.

    ``observe`` is fed cumulative per-worker ``quantum.run`` self-time
    (nanoseconds) at every policy interval; decisions use the delta
    since the previous interval so one historically slow quantum does
    not dominate forever.
    """

    def __init__(self, threshold: float = 4.0,
                 min_busy_ns: int = 1_000_000) -> None:
        self.threshold = threshold
        #: Intervals where even the slowest worker stayed under this
        #: are noise (startup, tiny workloads) and never trigger.
        self.min_busy_ns = min_busy_ns
        self._previous: Dict[int, int] = {}

    def observe(self, busy_ns: Dict[int, int],
                loaded: Iterable[int],
                idle: Iterable[int]) -> Optional[Tuple[int, int]]:
        """Return ``(src, dst)`` to migrate, or ``None`` to hold.

        ``loaded`` are candidate sources (workers owning tiles);
        ``idle`` are preferred destinations (tile-less joiners); when
        no idle worker exists the least busy loaded worker is the
        destination.
        """
        deltas = {}
        for worker, total in busy_ns.items():
            deltas[worker] = total - self._previous.get(worker, 0)
            self._previous[worker] = total
        sources = [w for w in loaded if w in deltas]
        if len(sources) < 1:
            return None
        src = max(sources, key=lambda w: (deltas[w], w))
        if deltas[src] < self.min_busy_ns:
            return None
        idle = list(idle)
        if idle:
            dst = min(idle)
            # An idle joiner absorbs the slowest shard unconditionally
            # once the source shows real load: the whole point of
            # dialing in a fresh host is to take work.
            return (src, dst)
        if len(sources) < 2:
            return None
        dst = min(sources, key=lambda w: (deltas[w], -w))
        if dst == src:
            return None
        if deltas[src] < self.threshold * max(deltas[dst], 1):
            return None
        return (src, dst)


def create_policy(config) -> Optional[SlowestWorkerPolicy]:
    """Build the policy named by ``config.distrib.rebalance``."""
    if config.distrib.rebalance == "slowest":
        return SlowestWorkerPolicy(
            threshold=config.distrib.rebalance_threshold)
    return None
