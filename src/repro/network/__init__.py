"""On-chip network component (paper §3.3).

Provides high-level messaging between tiles on top of the physical
transport layer.  Several *network models* coexist, keyed by traffic
class: system traffic always uses the zero-delay model so it cannot
perturb results; application and memory traffic default to separate
mesh models, as in tiled multicore chips.  Models are swappable behind
a common interface — they route packets and update timestamps, while
the network component handles functionality (multiplexing, delivery,
the application messaging API).
"""

from repro.network.interface import NetworkInterface, NetworkFabric
from repro.network.model import NetworkModel, create_network_model
from repro.network.routing import MeshGeometry

__all__ = [
    "MeshGeometry",
    "NetworkFabric",
    "NetworkInterface",
    "NetworkModel",
    "create_network_model",
]
