"""The network component: multiplexing, delivery, per-tile interfaces.

The network separates *functionality* from *modeling* (paper §3.3): this
module provides the common functionality — packet bundling, multiplexing
of traffic classes, the high-level interface to the rest of the system,
and the internal interface to the transport layer — while the network
models (selected per traffic class) compute timestamps.  Regardless of a
packet's timestamp, it is forwarded immediately and delivered in the
order received; packets may therefore arrive "early" in simulated time.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.common.config import NetworkConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.network.model import NetworkModel, create_network_model
from repro.transport.message import Message, MessageKind
from repro.transport.transport import Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import TelemetryBus


class NetworkFabric:
    """All network models plus the shared transport, for one simulation."""

    def __init__(self, num_tiles: int, config: NetworkConfig,
                 transport: Transport, stats: StatGroup,
                 telemetry: Optional["TelemetryBus"] = None) -> None:
        config.validate()
        self.num_tiles = num_tiles
        self.config = config
        self.transport = transport
        self.stats = stats
        self._tele = None
        if telemetry is not None:
            from repro.telemetry.events import EventCategory
            self._tele = telemetry.channel(EventCategory.NETWORK)
        #: Functional fast-forward (:mod:`repro.sample`): packets still
        #: deliver through the transport (functionality), but the
        #: network models are bypassed — zero latency, no contention
        #: state, no bandwidth accounting (modeling).
        self.functional = False
        model_names = {
            MessageKind.USER: config.user_model,
            MessageKind.MEMORY: config.memory_model,
            MessageKind.SYSTEM: config.system_model,
        }
        # Each traffic class gets its own independently configured model
        # instance — separate models for application and memory traffic,
        # as commonly done in multicore chips (paper §3.3).
        self.models: Dict[MessageKind, NetworkModel] = {
            kind: create_network_model(
                name, num_tiles, config, stats.child(f"{kind.value}_net"))
            for kind, name in model_names.items()
        }
        for model in self.models.values():
            model.telemetry = self._tele

    def send(self, src: TileId, dst: TileId, kind: MessageKind,
             payload: Any = None, size_bytes: int = 8, timestamp: int = 0,
             tag: Optional[int] = None) -> Message:
        """Route, timestamp and deliver one packet; returns the message."""
        if self.functional:
            message = Message(src=src, dst=dst, kind=kind, payload=payload,
                              size_bytes=size_bytes, timestamp=timestamp,
                              arrival_time=timestamp, tag=tag)
            self.transport.send(message)
            return message
        latency = self.models[kind].route(src, dst, size_bytes, timestamp)
        message = Message(src=src, dst=dst, kind=kind, payload=payload,
                          size_bytes=size_bytes, timestamp=timestamp,
                          arrival_time=timestamp + latency, tag=tag)
        if self._tele is not None:
            self._tele.emit("msg", int(src), timestamp,
                            {"src": int(src), "dst": int(dst),
                             "kind": kind.value, "bytes": size_bytes,
                             "latency": latency})
        self.transport.send(message)
        return message

    def transfer(self, src: TileId, dst: TileId, kind: MessageKind,
                 size_bytes: int, timestamp: int) -> int:
        """Model a transfer that the engine services synchronously.

        Returns the modelled network latency in cycles.  Used for
        coherence protocol legs and system control traffic, which are
        functionally processed inline at the destination rather than
        queued (paper §3.3: messages are forwarded immediately).  All
        statistics and host-cost accounting still apply.
        """
        if self.functional:
            return 0
        latency = self.models[kind].route(src, dst, size_bytes, timestamp)
        if self._tele is not None:
            self._tele.emit("msg", int(src), timestamp,
                            {"src": int(src), "dst": int(dst),
                             "kind": kind.value, "bytes": size_bytes,
                             "latency": latency})
        self.transport.account(src, dst, kind, size_bytes)
        return latency

    def interface(self, tile: TileId) -> "NetworkInterface":
        """Per-tile endpoint view of the fabric."""
        return NetworkInterface(tile, self)


class NetworkInterface:
    """One tile's endpoint: send plus receive-side polling."""

    __slots__ = ("tile", "fabric")

    def __init__(self, tile: TileId, fabric: NetworkFabric) -> None:
        self.tile = tile
        self.fabric = fabric

    def send(self, dst: TileId, payload: Any = None,
             kind: MessageKind = MessageKind.USER, size_bytes: int = 8,
             timestamp: int = 0, tag: Optional[int] = None) -> Message:
        return self.fabric.send(self.tile, dst, kind, payload, size_bytes,
                                timestamp, tag)

    def poll(self, kind: MessageKind) -> Optional[Message]:
        return self.fabric.transport.poll(self.tile, kind)

    def poll_match(self, kind: MessageKind, src: Optional[TileId] = None,
                   tag: Optional[int] = None) -> Optional[Message]:
        return self.fabric.transport.poll_match(self.tile, kind, src, tag)

    def pending(self, kind: MessageKind) -> int:
        return self.fabric.transport.pending(self.tile, kind)
