"""The zero-delay ("magic") network model.

Forwards packets with no modelled delay.  Used for system traffic so
that simulator-internal messages (MCP/LCP control, syscall forwarding)
have no impact on simulation results (paper §3.3).
"""

from __future__ import annotations

from repro.common.config import NetworkConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.network.model import NetworkModel, register_model


@register_model("magic")
class MagicNetworkModel(NetworkModel):
    """All packets arrive with zero latency."""

    def __init__(self, num_tiles: int, config: NetworkConfig,
                 stats: StatGroup) -> None:
        super().__init__("magic", stats)
        del num_tiles, config  # geometry-independent

    def _latency_of(self, src: TileId, dst: TileId, size_bytes: int,
                    timestamp: int) -> int:
        return 0
