"""Contention-free mesh model.

Latency is determined purely by the number of network hops plus
serialization over the configured link width (paper §3.3: "a mesh model
that uses the number of network hops to determine latency").
"""

from __future__ import annotations

from repro.common.config import NetworkConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.network.model import NetworkModel, register_model
from repro.network.routing import MeshGeometry


def serialization_cycles(size_bytes: int, link_bytes_per_cycle: int) -> int:
    """Cycles to push a packet of ``size_bytes`` onto one link."""
    if size_bytes <= 0:
        return 0
    return -(-size_bytes // link_bytes_per_cycle)  # ceil division


@register_model("mesh")
class MeshNetworkModel(NetworkModel):
    """Hop-count mesh: fixed per-hop latency, no contention."""

    def __init__(self, num_tiles: int, config: NetworkConfig,
                 stats: StatGroup) -> None:
        super().__init__("mesh", stats)
        self.geometry = MeshGeometry(num_tiles)
        self.hop_latency = config.hop_latency
        self.link_bytes_per_cycle = config.link_bytes_per_cycle
        self.endpoint_latency = config.endpoint_latency

    def _latency_of(self, src: TileId, dst: TileId, size_bytes: int,
                    timestamp: int) -> int:
        hops = self.geometry.distance(src, dst)
        serial = serialization_cycles(size_bytes, self.link_bytes_per_cycle)
        latency = (2 * self.endpoint_latency + hops * self.hop_latency
                   + serial)
        if self.telemetry is not None:
            self.telemetry.emit("route", int(src), timestamp,
                                {"dst": int(dst), "hops": hops,
                                 "serialization": serial,
                                 "latency": latency})
        return latency
