"""Mesh model with analytical contention.

"Another mesh model ... tracks global network utilization to determine
latency using an analytical contention model" (paper §3.3).  Each
directed link owns an independent queue clock following the lax queueing
model of §3.6.1: a packet's contention delay on a link is the difference
between the link's queue clock and the windowed global-progress
estimate, and the queue clock then advances by the packet's
serialization time.  Because packets are modelled out of simulated-time
order the per-packet delay is approximate, but aggregate utilization —
and therefore aggregate latency — is preserved.
"""

from __future__ import annotations

from typing import Dict

from repro.common.config import NetworkConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.network.mesh import serialization_cycles
from repro.network.model import NetworkModel, register_model
from repro.network.routing import MeshGeometry
from repro.sync.progress import ProgressEstimator
from repro.sync.queue_model import LaxQueueModel


@register_model("mesh_contention")
class ContentionMeshNetworkModel(NetworkModel):
    """Mesh with per-link lax queue clocks modelling contention."""

    def __init__(self, num_tiles: int, config: NetworkConfig,
                 stats: StatGroup) -> None:
        super().__init__("mesh_contention", stats)
        self.geometry = MeshGeometry(num_tiles)
        self.hop_latency = config.hop_latency
        self.link_bytes_per_cycle = config.link_bytes_per_cycle
        self.endpoint_latency = config.endpoint_latency
        window = max(num_tiles * config.progress_window_factor, 8)
        self.progress = ProgressEstimator(window)
        self._queue_stats = stats.child("links")
        self._links: Dict[int, LaxQueueModel] = {}
        self._contention = stats.counter("contention_cycles")

    def _link(self, link_id: int) -> LaxQueueModel:
        model = self._links.get(link_id)
        if model is None:
            model = LaxQueueModel(self.progress, self._queue_stats)
            self._links[link_id] = model
        return model

    def _latency_of(self, src: TileId, dst: TileId, size_bytes: int,
                    timestamp: int) -> int:
        serial = serialization_cycles(size_bytes, self.link_bytes_per_cycle)
        latency = 2 * self.endpoint_latency
        time = timestamp + latency
        hops = 0
        total_contention = 0
        for link_id in self.geometry.route(src, dst):
            occupancy = self._link(link_id).access(time, serial)
            contention = occupancy - serial
            latency += self.hop_latency + occupancy
            time += self.hop_latency + occupancy
            hops += 1
            if contention > 0:
                self._contention.add(contention)
                total_contention += contention
        # Same-tile traffic (src == dst) has no links; charge endpoints only.
        if self.telemetry is not None:
            self.telemetry.emit("route", int(src), timestamp,
                                {"dst": int(dst), "hops": hops,
                                 "contention": total_contention,
                                 "latency": latency})
        return latency
