"""Abstract network model interface and registry.

"Each network model shares a common interface.  Therefore, network model
implementations are swappable, and it is simple to develop new network
models" (paper §3.3).  A model's single job is to compute the modelled
latency of a packet — routing plus contention — given its source,
destination, size and timestamp.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict

from repro.common.config import NetworkConfig
from repro.common.errors import ConfigError
from repro.common.ids import TileId
from repro.common.stats import StatGroup


class NetworkModel(abc.ABC):
    """Computes modelled packet latency for one traffic class."""

    def __init__(self, name: str, stats: StatGroup) -> None:
        self.name = name
        self.stats = stats
        #: NETWORK-category telemetry channel; the owning fabric sets
        #: this after construction (``None`` = tracing disabled).
        self.telemetry = None
        self._packets = stats.counter("packets")
        self._bytes = stats.counter("bytes")
        self._latency = stats.counter("total_latency_cycles")

    def route(self, src: TileId, dst: TileId, size_bytes: int,
              timestamp: int) -> int:
        """Return the packet's modelled latency in cycles."""
        latency = self._latency_of(src, dst, size_bytes, timestamp)
        self._packets.add()
        self._bytes.add(size_bytes)
        self._latency.add(latency)
        return latency

    @abc.abstractmethod
    def _latency_of(self, src: TileId, dst: TileId, size_bytes: int,
                    timestamp: int) -> int:
        """Model-specific latency computation."""

    @property
    def mean_latency(self) -> float:
        n = self._packets.value
        return self._latency.value / n if n else 0.0


#: Model constructors: (num_tiles, config, stats) -> NetworkModel.
ModelFactory = Callable[[int, NetworkConfig, StatGroup], NetworkModel]

_REGISTRY: Dict[str, ModelFactory] = {}


def register_model(name: str) -> Callable[[ModelFactory], ModelFactory]:
    """Class decorator registering a network model under ``name``."""

    def decorate(factory: ModelFactory) -> ModelFactory:
        _REGISTRY[name] = factory
        return factory

    return decorate


def create_network_model(name: str, num_tiles: int, config: NetworkConfig,
                         stats: StatGroup) -> NetworkModel:
    """Instantiate a registered network model by name."""
    # Import implementations lazily so registration happens on demand
    # without import cycles.
    from repro.network import (  # noqa: F401
        magic,
        mesh,
        mesh_contention,
        ring,
    )

    factory = _REGISTRY.get(name)
    if factory is None:
        raise ConfigError(f"unknown network model {name!r}; "
                          f"known: {sorted(_REGISTRY)}")
    return factory(num_tiles, config, stats)
