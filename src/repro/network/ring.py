"""Ring and torus network models.

Paper §2: "Any network topology can be modeled as long as each tile
contains an endpoint."  These two additional topologies demonstrate the
swappable-model interface beyond the mesh family:

* ``ring`` — a 1D bidirectional ring; packets take the shorter
  direction.  Cheap switches, O(N) worst-case distance.
* ``torus`` — the mesh with wrap-around links in both dimensions;
  halves the average hop count at equal degree.
"""

from __future__ import annotations

from repro.common.config import NetworkConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.network.mesh import serialization_cycles
from repro.network.model import NetworkModel, register_model
from repro.network.routing import MeshGeometry


@register_model("ring")
class RingNetworkModel(NetworkModel):
    """Bidirectional 1D ring, shortest-direction routing."""

    def __init__(self, num_tiles: int, config: NetworkConfig,
                 stats: StatGroup) -> None:
        super().__init__("ring", stats)
        self.num_tiles = num_tiles
        self.hop_latency = config.hop_latency
        self.link_bytes_per_cycle = config.link_bytes_per_cycle
        self.endpoint_latency = config.endpoint_latency

    def distance(self, src: TileId, dst: TileId) -> int:
        direct = abs(int(src) - int(dst))
        return min(direct, self.num_tiles - direct)

    def _latency_of(self, src: TileId, dst: TileId, size_bytes: int,
                    timestamp: int) -> int:
        hops = self.distance(src, dst)
        serial = serialization_cycles(size_bytes,
                                      self.link_bytes_per_cycle)
        return 2 * self.endpoint_latency + hops * self.hop_latency \
            + serial


@register_model("torus")
class TorusNetworkModel(NetworkModel):
    """2D torus: the mesh grid with wrap-around in both dimensions."""

    def __init__(self, num_tiles: int, config: NetworkConfig,
                 stats: StatGroup) -> None:
        super().__init__("torus", stats)
        self.geometry = MeshGeometry(num_tiles)
        self.hop_latency = config.hop_latency
        self.link_bytes_per_cycle = config.link_bytes_per_cycle
        self.endpoint_latency = config.endpoint_latency

    def distance(self, src: TileId, dst: TileId) -> int:
        sx, sy = self.geometry.coordinates(src)
        dx, dy = self.geometry.coordinates(dst)
        width, height = self.geometry.width, self.geometry.height
        step_x = min(abs(sx - dx), width - abs(sx - dx))
        step_y = min(abs(sy - dy), height - abs(sy - dy))
        return step_x + step_y

    def _latency_of(self, src: TileId, dst: TileId, size_bytes: int,
                    timestamp: int) -> int:
        hops = self.distance(src, dst)
        serial = serialization_cycles(size_bytes,
                                      self.link_bytes_per_cycle)
        return 2 * self.endpoint_latency + hops * self.hop_latency \
            + serial
