"""Mesh geometry and dimension-ordered (XY) routing.

Tiles are arranged in a near-square 2D grid; any network topology can be
modelled as long as each tile is an endpoint (paper §2), and the mesh is
the default (Table 1).  Links are directed and identified by small
integers so contention models can index per-link state cheaply.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

from repro.common.ids import TileId


class MeshGeometry:
    """A ``width x height`` mesh holding ``num_tiles`` endpoints.

    The grid is the smallest near-square rectangle with at least
    ``num_tiles`` slots; tiles are numbered row-major.
    """

    def __init__(self, num_tiles: int) -> None:
        if num_tiles < 1:
            raise ValueError("mesh needs at least one tile")
        self.num_tiles = num_tiles
        self.width = int(math.ceil(math.sqrt(num_tiles)))
        self.height = int(math.ceil(num_tiles / self.width))

    def coordinates(self, tile: TileId) -> Tuple[int, int]:
        """Tile id → (x, y) grid position."""
        t = int(tile)
        if not 0 <= t < self.num_tiles:
            raise ValueError(f"tile {t} out of range")
        return t % self.width, t // self.width

    def distance(self, src: TileId, dst: TileId) -> int:
        """Manhattan hop count between two tiles."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    # -- link identification -------------------------------------------------

    def _link_id(self, x: int, y: int, direction: int) -> int:
        """Directed link leaving node (x, y); direction in {0:E,1:W,2:N,3:S}."""
        return (y * self.width + x) * 4 + direction

    @property
    def num_links(self) -> int:
        return self.width * self.height * 4

    def route(self, src: TileId, dst: TileId) -> List[int]:
        """XY route as a list of directed link ids (X first, then Y)."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        links: List[int] = []
        x, y = sx, sy
        while x != dx:
            if dx > x:
                links.append(self._link_id(x, y, 0))
                x += 1
            else:
                links.append(self._link_id(x, y, 1))
                x -= 1
        while y != dy:
            if dy > y:
                links.append(self._link_id(x, y, 3))
                y += 1
            else:
                links.append(self._link_id(x, y, 2))
                y -= 1
        return links

    def neighbors(self, tile: TileId) -> Iterator[TileId]:
        """Adjacent tiles in the mesh (for workloads doing neighbor comms)."""
        x, y = self.coordinates(tile)
        for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
            if 0 <= nx < self.width and 0 <= ny < self.height:
                t = ny * self.width + nx
                if t < self.num_tiles:
                    yield TileId(t)
