"""repro.obs: distributed tracing, fleet metrics and flight recording.

The observability layer on top of :mod:`repro.telemetry` (which stays
the low-level event bus).  Three pieces, all zero-overhead when off:

* :mod:`repro.obs.spans` — deterministic trace/span identifiers and a
  :class:`~repro.obs.spans.SpanEmitter` that turns a job's lifecycle
  (submit → queue → run → preempt → resume → done) into one
  causally-linked span tree on the ``obs`` event category.
* :mod:`repro.obs.prom` — Prometheus text exposition rendering for the
  serve daemon's ``metrics`` endpoint, and :mod:`repro.obs.top` — the
  ``repro top`` console view over it.
* :mod:`repro.obs.flight` — a bounded ring buffer of recent telemetry
  events and wire-frame summaries, dumped as a forensics bundle when a
  worker crashes or a protocol error kills a connection.
* :mod:`repro.obs.watchdog` — the straggler watchdog that WARNs when a
  worker's interval ``quantum.run`` rate falls below a fraction of the
  fleet median (the same signal ``SlowestWorkerPolicy`` rebalances on).

Everything here is host-side and purely observational: span events,
metrics scrapes and flight dumps never touch simulated state, so
``SimulationResult`` is byte-identical with obs enabled or disabled.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.spans import (
    SpanEmitter,
    build_span_tree,
    mint_trace_id,
    orphan_spans,
    span_id,
)
from repro.obs.watchdog import StragglerWatchdog

__all__ = [
    "FlightRecorder",
    "SpanEmitter",
    "StragglerWatchdog",
    "build_span_tree",
    "mint_trace_id",
    "orphan_spans",
    "span_id",
]
