"""Crash flight recorder: a bounded ring of recent telemetry events.

Aircraft-style forensics for distributed runs: every process can keep
the last N telemetry events (and the last wire-frame summaries it sent
or received) in a fixed-size ring, costing nothing when disabled and
O(capacity) memory when on.  When a worker crashes, a handshake fails
or a protocol error kills a connection, the recovery path dumps the
ring as a JSON bundle — the events leading up to the failure, the
frames in flight, and optionally a host-profile snapshot — into
``telemetry.flight_dir``.

The recorder attaches to the telemetry bus as an *observer*
(:meth:`~repro.telemetry.bus.TelemetryBus.observe`), the same
mechanism the runtime sanitizers use: observed events are not
recorded by the bus unless their category is also in the trace mask,
so flight recording changes neither the exported trace nor — being
purely host-side — any simulated result.
"""

from __future__ import annotations

import json
import os
import socket
import time
from collections import deque
from typing import Any, Dict, List, Optional

#: On-disk bundle format tag, bumped with any layout change.
FLIGHT_FORMAT = "repro.flight/1"


def event_to_dict(event: Any) -> dict:
    """JSON-ready form of a telemetry event (mirrors JsonlTraceSink)."""
    return {"cat": event.category_name, "name": event.name,
            "tile": event.tile, "t": event.t, "args": event.args,
            "seq": event.seq, "origin": event.origin}


class FlightRecorder:
    """Fixed-capacity ring of recent events and wire-frame summaries."""

    def __init__(self, capacity: int = 256,
                 frame_capacity: int = 64) -> None:
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.frames: deque = deque(maxlen=frame_capacity)
        #: Paths of bundles written by this recorder, oldest first.
        self.dumped: List[str] = []

    # -- feeds ---------------------------------------------------------------

    def on_event(self, event: Any) -> None:
        """Bus observer: every emitted/absorbed event lands here."""
        self.events.append(event)

    def note_frame(self, direction: str, peer: Any, kind: Any,
                   size: int) -> None:
        """Record one wire frame summary (never the payload)."""
        self.frames.append({"dir": direction, "peer": str(peer),
                            "kind": str(kind), "bytes": int(size)})

    # -- dumping -------------------------------------------------------------

    def bundle(self, reason: str, detail: str = "",
               extra: Optional[dict] = None,
               host_profile: Optional[dict] = None) -> dict:
        return {
            "format": FLIGHT_FORMAT,
            "reason": reason,
            "detail": detail,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "unix_time": time.time(),
            "events": [event_to_dict(e) for e in self.events],
            "frames": list(self.frames),
            "extra": dict(extra or {}),
            "host_profile": host_profile,
        }

    def dump(self, directory: str, reason: str, detail: str = "",
             extra: Optional[dict] = None,
             host_profile: Optional[dict] = None) -> str:
        """Write one bundle into ``directory``; returns its path.

        File names carry the pid and a per-recorder counter so
        concurrent processes dumping into a shared flight directory
        never collide.  The write is atomic (tmp + rename): a crash
        mid-dump must not leave a truncated bundle that chokes the
        post-mortem tooling.
        """
        os.makedirs(directory, exist_ok=True)
        name = f"flight-{os.getpid()}-{len(self.dumped):03d}.json"
        path = os.path.join(directory, name)
        payload = self.bundle(reason, detail, extra, host_profile)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True,
                      default=str)
            handle.write("\n")
        os.replace(tmp, path)
        self.dumped.append(path)
        return path


def load_bundles(directory: str) -> List[Dict[str, Any]]:
    """Read every flight bundle under ``directory``, sorted by name."""
    bundles = []
    if not os.path.isdir(directory):
        return bundles
    for name in sorted(os.listdir(directory)):
        if name.startswith("flight-") and name.endswith(".json"):
            with open(os.path.join(directory, name),
                      encoding="utf-8") as handle:
                bundles.append(json.load(handle))
    return bundles
