"""Prometheus text exposition rendering for the fleet metrics endpoint.

The serve daemon answers a ``metrics`` request with both a structured
fields dict (for ``repro top`` and tests) and this module's rendering
of it — Prometheus text exposition format 0.0.4, the de-facto lingua
franca of scrapers.  Pure formatting: no sockets, no wall clocks; the
daemon supplies every value.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

#: One metric family: name, type, help, and (labels, value) samples.
Family = Dict[str, Any]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _format_sample(name: str, labels: Dict[str, Any], value: Any) -> str:
    if labels:
        body = ",".join(
            f'{key}="{_escape_label(str(labels[key]))}"'
            for key in sorted(labels))
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def render_prometheus(families: Iterable[Family]) -> str:
    """Render metric families to exposition text (trailing newline)."""
    lines: List[str] = []
    for family in families:
        name = family["name"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family.get('type', 'gauge')}")
        for labels, value in family.get("samples", []):
            lines.append(_format_sample(name, labels, value))
    return "\n".join(lines) + "\n"


def _samples(mapping: Dict[Any, Any], label: str) -> List[Tuple[dict, Any]]:
    return [({label: key}, mapping[key]) for key in sorted(mapping)]


def fleet_families(fields: Dict[str, Any]) -> List[Family]:
    """Map the daemon's ``metrics_fields()`` dict to metric families."""
    workers = fields.get("workers", {})
    waits = fields.get("wait_seconds", {})
    families: List[Family] = [
        {"name": "repro_serve_uptime_seconds", "type": "gauge",
         "help": "Seconds since the serve daemon started.",
         "samples": [({}, fields.get("uptime_seconds", 0.0))]},
        {"name": "repro_serve_queue_depth", "type": "gauge",
         "help": "Jobs waiting in the priority queue.",
         "samples": [({}, fields.get("queue_depth", 0))]},
        {"name": "repro_serve_jobs", "type": "gauge",
         "help": "Jobs by lifecycle state.",
         "samples": _samples(fields.get("jobs", {}), "state")},
        {"name": "repro_serve_submitted_total", "type": "counter",
         "help": "Jobs ever submitted.",
         "samples": [({}, fields.get("submitted", 0))]},
        {"name": "repro_serve_cache_hits_total", "type": "counter",
         "help": "Submissions answered from the result cache.",
         "samples": [({}, fields.get("cache_hits", 0))]},
        {"name": "repro_serve_preemptions_total", "type": "counter",
         "help": "Checkpoint preemptions performed.",
         "samples": [({}, fields.get("preemptions", 0))]},
        {"name": "repro_serve_worker_deaths_total", "type": "counter",
         "help": "Fleet worker deaths observed.",
         "samples": [({}, fields.get("worker_deaths", 0))]},
        {"name": "repro_serve_workers", "type": "gauge",
         "help": "Fleet workers by occupancy.",
         "samples": [({"state": "busy"}, workers.get("busy", 0)),
                     ({"state": "idle"}, workers.get("idle", 0))]},
        {"name": "repro_serve_wait_seconds_total", "type": "counter",
         "help": "Cumulative queue wait time by priority.",
         "samples": [({"priority": p},
                      waits[p].get("total", 0.0))
                     for p in sorted(waits)]},
        {"name": "repro_serve_wait_jobs_total", "type": "counter",
         "help": "Jobs that left the queue, by priority.",
         "samples": [({"priority": p},
                      waits[p].get("count", 0))
                     for p in sorted(waits)]},
        {"name": "repro_serve_worker_busy_seconds_total",
         "type": "counter",
         "help": "Cumulative busy time per fleet worker slot.",
         "samples": _samples(fields.get("worker_busy_seconds", {}),
                             "worker")},
        {"name": "repro_serve_worker_jobs_total", "type": "counter",
         "help": "Assignments completed per fleet worker slot.",
         "samples": _samples(fields.get("worker_jobs", {}), "worker")},
    ]
    return families


def render_fleet_metrics(fields: Dict[str, Any]) -> str:
    return render_prometheus(fleet_families(fields))
