"""Deterministic trace/span identifiers and the span event shape.

A *trace* is one job's whole causal history; a *span* is one phase of
it (queued, running on worker 2, resumed after preemption, ...).  Both
identifiers are minted by hashing stable inputs — the job id, the
operation name, a per-emitter serial — so the same submission produces
the same ids on every host and every run: no wall clocks, no
randomness, nothing the determinism lints (D001/D002) would reject.

Span context rides ordinary telemetry events on the ``obs`` category:

``span.begin``
    ``{"trace": tid, "span": sid, "parent": psid, "op": name, ...}``
``span.end``
    ``{"trace": tid, "span": sid, "op": name, "outcome": ..., ...}``
``span.note``
    an instant annotation attached to an open span.

Because spans are plain events, they batch, merge and export exactly
like every other category: the serve daemon's ops stream, a worker's
local trace and the Chrome exporter all see the same records, and
:func:`build_span_tree` / :func:`orphan_spans` reconstruct the tree
from any of them (live :class:`~repro.telemetry.events.Event` objects
or decoded JSONL dicts alike).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Optional

#: Joiner for hashed id parts; cannot appear in job ids or op names.
_SEP = "\x1f"

#: Hex digits kept from the sha256 digest (64-bit ids, like Chrome's).
_ID_WIDTH = 16


def mint_trace_id(*parts: Any) -> str:
    """Deterministic trace id from stable parts (job id, cache key...)."""
    text = _SEP.join(str(part) for part in parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:_ID_WIDTH]


def span_id(trace_id: str, op: str, serial: int) -> str:
    """Deterministic span id: unique per (trace, op, emitter serial)."""
    text = f"{trace_id}{_SEP}{op}{_SEP}{serial}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:_ID_WIDTH]


class SpanEmitter:
    """Mints span ids and publishes span events for one trace.

    ``channel`` may be ``None`` (telemetry off): ids are still minted —
    identically, since the serial advances either way — so callers can
    propagate span context without caring whether events are recorded.
    """

    def __init__(self, channel: Any, trace_id: str,
                 parent: str = "") -> None:
        self.channel = channel
        self.trace_id = trace_id
        #: Default parent for top-level ``begin`` calls: the span id
        #: propagated from the submitting process, or "" for a root.
        self.parent = parent
        self._serial = 0

    def begin(self, op: str, parent: Optional[str] = None, t: int = 0,
              **args: Any) -> str:
        """Open a span; returns its id (parent defaults to the
        emitter-level parent, "" meaning a trace root)."""
        self._serial += 1
        sid = span_id(self.trace_id, op, self._serial)
        if self.channel is not None:
            payload = {"trace": self.trace_id, "span": sid,
                       "parent": self.parent if parent is None else parent,
                       "op": op}
            payload.update(args)
            self.channel.emit("span.begin", None, t, payload)
        return sid

    def end(self, span: str, op: str, t: int = 0, **args: Any) -> None:
        if self.channel is not None:
            payload = {"trace": self.trace_id, "span": span, "op": op}
            payload.update(args)
            self.channel.emit("span.end", None, t, payload)

    def note(self, span: str, name: str, t: int = 0,
             **args: Any) -> None:
        """Instant annotation inside an open span (preempt signal...)."""
        if self.channel is not None:
            payload = {"trace": self.trace_id, "span": span,
                       "note": name}
            payload.update(args)
            self.channel.emit("span.note", None, t, payload)


# -- reconstruction ----------------------------------------------------------


def _fields(event: Any) -> tuple:
    """(name, args) of an event record, live object or decoded dict."""
    if isinstance(event, dict):
        return event.get("name"), event.get("args") or {}
    return getattr(event, "name", None), getattr(event, "args", None) or {}


def span_records(events: Iterable[Any]) -> Dict[str, dict]:
    """Fold span events into one record per span, in begin order."""
    spans: Dict[str, dict] = {}
    for event in events:
        name, args = _fields(event)
        if name == "span.begin":
            spans[args["span"]] = {
                "span": args["span"],
                "trace": args.get("trace", ""),
                "parent": args.get("parent", ""),
                "op": args.get("op", ""),
                "ended": False,
                "outcome": None,
                "args": dict(args),
            }
        elif name == "span.end":
            record = spans.get(args.get("span"))
            if record is not None:
                record["ended"] = True
                record["outcome"] = args.get("outcome")
        elif name == "span.note":
            record = spans.get(args.get("span"))
            if record is not None:
                record.setdefault("notes", []).append(dict(args))
    return spans


def build_span_tree(events: Iterable[Any]) -> dict:
    """``{"spans", "children", "roots", "traces"}`` from span events.

    ``roots`` are spans with no (present) parent; ``traces`` the sorted
    distinct trace ids.  A connected single-job tree has exactly one
    root and one trace id, and :func:`orphan_spans` is empty.
    """
    spans = span_records(events)
    children: Dict[str, List[str]] = {sid: [] for sid in spans}
    roots: List[str] = []
    for sid, record in spans.items():
        parent = record["parent"]
        if parent and parent in spans:
            children[parent].append(sid)
        else:
            roots.append(sid)
    traces = sorted({record["trace"] for record in spans.values()})
    return {"spans": spans, "children": children, "roots": roots,
            "traces": traces}


def orphan_spans(events: Iterable[Any]) -> List[str]:
    """Spans claiming a parent that never began — broken causality."""
    spans = span_records(events)
    return [sid for sid, record in spans.items()
            if record["parent"] and record["parent"] not in spans]
