"""``repro top``: a refreshing console view of a live serve daemon.

Polls the daemon's ``metrics`` endpoint (the same structured fields
the Prometheus rendering exposes) and paints a small fleet dashboard:
queue depth, job states, cache hit rate, per-priority wait times and
per-worker utilization.  ``--once`` prints a single snapshot and
exits — the mode CI and tests use.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, IO, Optional


def _rate(hits: int, total: int) -> str:
    if total <= 0:
        return "-"
    return f"{100.0 * hits / total:.0f}%"


def render_fields(fields: Dict[str, Any]) -> str:
    """One dashboard frame from the daemon's metrics fields."""
    workers = fields.get("workers", {})
    jobs = fields.get("jobs", {})
    lines = [
        "repro serve fleet"
        f" · up {fields.get('uptime_seconds', 0.0):.0f}s"
        f" · workers {workers.get('busy', 0)} busy"
        f" / {workers.get('idle', 0)} idle",
        f"queue depth {fields.get('queue_depth', 0)}"
        f" · submitted {fields.get('submitted', 0)}"
        f" · cache hits {fields.get('cache_hits', 0)}"
        f" ({_rate(fields.get('cache_hits', 0), fields.get('submitted', 0))})"
        f" · preemptions {fields.get('preemptions', 0)}"
        f" · worker deaths {fields.get('worker_deaths', 0)}",
    ]
    if jobs:
        states = "  ".join(f"{state}={jobs[state]}"
                           for state in sorted(jobs))
        lines.append(f"jobs: {states}")
    waits = fields.get("wait_seconds", {})
    if waits:
        lines.append("queue wait by priority:")
        for priority in sorted(waits):
            entry = waits[priority]
            count = entry.get("count", 0)
            total = entry.get("total", 0.0)
            mean = total / count if count else 0.0
            lines.append(f"  prio {priority}: {count} jobs,"
                         f" mean wait {mean:.2f}s")
    busy = fields.get("worker_busy_seconds", {})
    done = fields.get("worker_jobs", {})
    if busy or done:
        lines.append("per-worker:")
        for worker in sorted(set(busy) | set(done)):
            lines.append(
                f"  worker {worker}: {done.get(worker, 0)} jobs,"
                f" busy {busy.get(worker, 0.0):.1f}s")
    return "\n".join(lines)


def run_top(socket_path: str, interval: float = 2.0,
            once: bool = False, out: Optional[IO[str]] = None) -> int:
    """Poll the daemon and repaint; returns a process exit code."""
    from repro.serve.client import ServeClient, ServeError
    stream = sys.stdout if out is None else out
    client = ServeClient(socket_path)
    while True:
        try:
            payload = client.metrics()
        except (ServeError, OSError) as exc:
            print(f"repro top: {exc}", file=stream)
            return 1
        frame = render_fields(payload.get("fields", {}))
        if once:
            print(frame, file=stream)
            return 0
        # Cursor-home + clear-to-end keeps the repaint flicker-free.
        print("\x1b[H\x1b[J" + frame, file=stream, flush=True)
        time.sleep(interval)
