"""Straggler watchdog: WARN when one worker falls behind the fleet.

Feeds on the same signal :class:`~repro.net.rebalance.SlowestWorkerPolicy`
rebalances on — cumulative per-worker ``quantum.run`` self-time — and
applies the same interval-delta discipline: each observation compares
the busy time accrued *since the previous observation*, so a worker
that was slow an hour ago but has recovered stops warning.

A worker whose interval busy time exceeds ``1/fraction`` times the
fleet median (equivalently: whose rate falls below ``fraction`` of the
median rate) is flagged with a ``straggler.warn`` telemetry event.
Workers seen for the first time only establish a baseline — a joiner
absorbing its first shard is not a straggler — and intervals below the
noise floor are ignored, mirroring the rebalance policy, so elastic
membership (joins, drains, migrations mid-run) never produces spurious
warnings.  Purely observational: the watchdog emits events and nothing
else.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


def _median(values: List[int]) -> int:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


class StragglerWatchdog:
    """Flags workers whose interval rate drops below ``fraction`` of
    the fleet median rate."""

    def __init__(self, channel: Any, fraction: float,
                 min_busy_ns: int = 1_000_000) -> None:
        self._channel = channel
        self.fraction = fraction
        self.min_busy_ns = min_busy_ns
        #: Cumulative busy-ns per worker at the previous observation.
        self._previous: Dict[int, int] = {}
        #: Every warning raised, for tests and post-mortems.
        self.warnings: List[dict] = []

    def observe(self, busy_ns: Dict[int, int],
                turn: Optional[int] = None) -> List[int]:
        """Compare interval deltas to the fleet median; returns the
        workers flagged this observation."""
        deltas: Dict[int, int] = {}
        for worker in sorted(busy_ns):
            total = busy_ns[worker]
            if worker in self._previous:
                deltas[worker] = total - self._previous[worker]
            self._previous[worker] = total
        measured = [d for d in deltas.values() if d >= self.min_busy_ns]
        if len(measured) < 2:
            return []
        median = _median(measured)
        flagged: List[int] = []
        for worker in sorted(deltas):
            delta = deltas[worker]
            # rate below fraction*median  <=>  busy above median/fraction
            if delta >= self.min_busy_ns and \
                    median < self.fraction * delta:
                flagged.append(worker)
                record = {"worker": worker, "busy_ns": delta,
                          "median_ns": median,
                          "fraction": self.fraction, "level": "warn"}
                if turn is not None:
                    record["turn"] = turn
                self.warnings.append(record)
                if self._channel is not None:
                    self._channel.emit("straggler.warn", None, 0,
                                       dict(record))
        return flagged
