"""Host-performance observability: where does *wall* time go?

The target-side story lives in :mod:`repro.telemetry` (simulated
events on simulated clocks); this package watches the *simulator
itself* — scoped host timers with per-subsystem attribution,
simulation-rate gauges (cycles and instructions per host second,
achieved slowdown vs the modeled native time), distributed collection
from mp workers over wire-v3 ``HOST_STATS`` frames, and the
``python -m repro bench`` trajectory runner behind
``BENCH_host_profile.json``.

Profiling is zero-overhead when disabled (no profiler object exists;
call sites keep their original methods) and purely observational when
enabled: simulation metrics are byte-identical either way.
"""

from repro.profile.report import (
    PROFILE_SCHEMA,
    build_profile,
    render_profile,
    summarize_worker,
    top_subsystems,
)
from repro.profile.timers import HostProfiler, ScopeStats, create_profiler

__all__ = [
    "PROFILE_SCHEMA",
    "HostProfiler",
    "ScopeStats",
    "build_profile",
    "create_profiler",
    "render_profile",
    "summarize_worker",
    "top_subsystems",
]
