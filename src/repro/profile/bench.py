"""``python -m repro bench``: the machine-readable bench trajectory.

Runs the paper benchmarks under host profiling and writes a
schema-versioned ``BENCH_host_profile.json`` at the repo root — one
record per benchmark with measured host wall time, simulation-rate
gauges (target cycles and instructions per host second, achieved
slowdown) and the top-N subsystem self-times.  The committed file is
the perf baseline future PRs are compared against:

- ``--quick`` runs the 5-benchmark subset CI's ``perf-smoke`` job uses,
- ``--check-baseline`` compares the fresh run against the committed
  baseline and exits nonzero when any benchmark's
  ``cycles_per_host_second`` regressed by more than the tolerance
  factor (default 3x — deliberately loose, because CI machines and
  laptops differ in absolute speed; the guard catches order-of-
  magnitude regressions, not noise),
- ``--accept-baseline`` refreshes the committed baseline in place,
- ``--sampling`` runs the checkpoint-accelerated sampling comparison
  (full detail vs library-sampled; docs/sampling.md) and writes its
  own ``BENCH_sampling.json`` trajectory instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

#: Version of the emitted trajectory file.
BENCH_SCHEMA = "repro.bench_host_profile/1"

#: Rate-regression tolerance factor (documented in docs/profiling.md).
DEFAULT_TOLERANCE = 3.0

#: Default trajectory path (the repo-root file CI uploads).
DEFAULT_OUT = "BENCH_host_profile.json"

#: The bench set: (workload, scale) at 8 tiles / 8 threads — large
#: enough that rates are stable, small enough that the full set runs in
#: seconds.  The first QUICK_COUNT entries form the ``--quick`` subset.
BENCHMARKS = (
    ("fft", 1.0),
    ("fmm", 1.0),
    ("radix", 1.0),
    ("lu_cont", 1.0),
    ("blackscholes", 1.0),
    ("ocean_cont", 1.0),
    ("water_nsquared", 1.0),
    ("cholesky", 1.0),
)
QUICK_COUNT = 5

#: Subsystem rows recorded per benchmark.
_TOP_N = 5

#: The ``--sampling`` set: (workload, scale, (ff_until, period, detail,
#: warmup)) at 8 tiles.  Geometries are tuned so the library-warm
#: sampled run is several times faster than full detail while the
#: extrapolated cycle count's confidence interval still covers the
#: full-detail truth (benchmarks/bench_sampling.py asserts both).
SAMPLING_BENCHMARKS = (
    ("fft", 2.0, (50_000, 25_000, 7_000, 6_000)),
    ("lu_cont", 2.0, (400_000, 60_000, 12_000, 10_000)),
)


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help=f"run only the first {QUICK_COUNT} "
                             "benchmarks (the CI perf-smoke subset)")
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="PATH",
                        help="trajectory output file "
                             f"(default {DEFAULT_OUT})")
    parser.add_argument("--baseline", default=DEFAULT_OUT,
                        metavar="PATH",
                        help="committed baseline to compare/refresh "
                             f"(default {DEFAULT_OUT})")
    parser.add_argument("--check-baseline", action="store_true",
                        help="exit nonzero if any benchmark's "
                             "cycles/host-second regressed by more "
                             "than the tolerance vs the baseline")
    parser.add_argument("--accept-baseline", action="store_true",
                        help="write this run's results to the baseline "
                             "path (refresh after an intentional perf "
                             "change)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="rate-regression factor tolerated by "
                             "--check-baseline (default "
                             f"{DEFAULT_TOLERANCE:g}x)")
    parser.add_argument("--tiles", type=int, default=8,
                        help="target tiles per benchmark (default 8)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiplier on every benchmark's problem "
                             "scale (default 1.0)")
    parser.add_argument("--backend", default="inproc",
                        choices=("inproc", "mp"),
                        help="execution backend (default inproc)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--sampling", action="store_true",
                        help="run the checkpoint-accelerated sampling "
                             "comparison (full detail vs library-"
                             "sampled) instead of the host-profile set")
    parser.add_argument("--json", action="store_true",
                        help="print the trajectory JSON to stdout too")


def run_benchmark(workload: str, scale: float, tiles: int,
                  backend: str = "inproc",
                  seed: int = 42) -> Dict[str, Any]:
    """Run one bench workload under profiling; return its record."""
    from repro.common.config import SimulationConfig
    from repro.distrib.wire import WorkloadRef
    from repro.profile.report import top_subsystems
    from repro.sim.runner import create_simulator

    config = SimulationConfig(num_tiles=tiles, seed=seed)
    config.distrib.backend = backend
    config.profile.enabled = True
    config.validate()
    simulator = create_simulator(config)
    simulator.run(WorkloadRef(workload, tiles, scale))
    profile = simulator.host_profile
    assert profile is not None
    rates = profile["rates"]
    return {
        "workload": workload,
        "tiles": tiles,
        "threads": tiles,
        "scale": scale,
        "backend": backend,
        "host_wall_seconds": profile["host_wall_seconds"],
        "cycles_per_host_second": rates["cycles_per_host_second"],
        "instructions_per_host_second":
            rates["instructions_per_host_second"],
        "achieved_slowdown": rates["achieved_slowdown"],
        "modeled_slowdown": rates["modeled_slowdown"],
        "simulated_cycles": rates["simulated_cycles"],
        "instructions": rates["instructions"],
        "top_subsystems": top_subsystems(profile["subsystems"], _TOP_N),
    }


def run_sampling_benchmark(workload: str, scale: float,
                           geometry: "tuple[int, int, int, int]",
                           tiles: int = 8, seed: int = 42,
                           library: Optional[str] = None,
                           backend: str = "inproc") -> Dict[str, Any]:
    """Full-detail vs library-sampled comparison for one workload.

    Runs the workload three ways: full detail (the truth), a cold
    sampled run that primes the snapshot library, and a warm sampled
    run that forks from it.  Host times take the best of two
    repetitions on both sides of each ratio, since single runs of
    sub-second workloads are dominated by host noise.  Returns a
    record with the speedups, the extrapolation error against the
    full-detail cycle count, and whether the confidence interval
    covers it.
    """
    import tempfile
    import time

    from repro.common.config import SimulationConfig
    from repro.distrib.wire import WorkloadRef
    from repro.sample.library import (SnapshotLibrary, roi_metrics,
                                      run_with_library)
    from repro.sim.runner import create_simulator

    ff_until, period, detail, warmup = geometry

    def make_config(sampled: bool) -> SimulationConfig:
        config = SimulationConfig(num_tiles=tiles, seed=seed)
        config.distrib.backend = backend
        if sampled:
            config.sample.ff_until = ff_until
            config.sample.period = period
            config.sample.detail = detail
            config.sample.warmup = warmup
        config.validate()
        return config

    def best_of(fn, reps: int = 2):
        result, best = None, float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return result, best

    program = WorkloadRef(workload, tiles, scale)
    full, full_seconds = best_of(
        lambda: create_simulator(make_config(False)).run(program))

    with tempfile.TemporaryDirectory() as scratch:
        root = library if library is not None else scratch
        snapshots = SnapshotLibrary(root)
        cold, cold_seconds = best_of(
            lambda: run_with_library(make_config(True), program,
                                     library=snapshots), reps=1)
        warm, warm_seconds = best_of(
            lambda: run_with_library(make_config(True), program,
                                     library=snapshots))

    extrapolation = warm.sample["extrapolation"]
    truth = full.simulated_cycles
    estimate = extrapolation["cycles"]
    return {
        "workload": workload,
        "tiles": tiles,
        "scale": scale,
        "backend": backend,
        "geometry": {"ff_until": ff_until, "period": period,
                     "detail": detail, "warmup": warmup},
        "full_cycles": truth,
        "full_host_seconds": full_seconds,
        "cold_host_seconds": cold_seconds,
        "warm_host_seconds": warm_seconds,
        "cold_speedup": full_seconds / cold_seconds,
        "warm_speedup": full_seconds / warm_seconds,
        "windows": extrapolation["windows"],
        "estimated_cycles": estimate,
        "cycles_low": extrapolation["cycles_low"],
        "cycles_high": extrapolation["cycles_high"],
        "error_percent": (estimate - truth) / truth * 100.0,
        "ci_covers_truth": (extrapolation["cycles_low"] <= truth
                            <= extrapolation["cycles_high"]),
        "roi_identical": roi_metrics(cold) == roi_metrics(warm),
    }


def build_trajectory(mode: str, records: Mapping[str, Dict[str, Any]],
                     tolerance: float = DEFAULT_TOLERANCE
                     ) -> Dict[str, Any]:
    return {
        "schema": BENCH_SCHEMA,
        "mode": mode,
        "tolerance_factor": tolerance,
        "python": "%d.%d" % sys.version_info[:2],
        "benchmarks": dict(records),
    }


def check_baseline(baseline: Mapping[str, Any],
                   fresh: Mapping[str, Any],
                   tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Regression messages for benchmarks common to both trajectories.

    A regression is a fresh ``cycles_per_host_second`` lower than the
    baseline's by more than ``tolerance``x.  Speed-ups never fail.
    """
    if baseline.get("schema") != BENCH_SCHEMA:
        return [f"baseline schema {baseline.get('schema')!r} does not "
                f"match {BENCH_SCHEMA!r}; refresh with "
                "`python -m repro bench --accept-baseline`"]
    problems = []
    base_rows = baseline.get("benchmarks", {})
    for name, row in fresh.get("benchmarks", {}).items():
        base = base_rows.get(name)
        if base is None:
            continue
        base_rate = base.get("cycles_per_host_second", 0.0)
        rate = row.get("cycles_per_host_second", 0.0)
        if base_rate > 0 and rate * tolerance < base_rate:
            problems.append(
                f"{name}: {rate:,.0f} cycles/host-second is "
                f"{base_rate / rate:.1f}x slower than the baseline's "
                f"{base_rate:,.0f} (tolerance {tolerance:g}x)")
    return problems


def run_sampling_bench(args: argparse.Namespace) -> int:
    """``repro bench --sampling``: the sampled-vs-detail comparison."""
    records: Dict[str, Dict[str, Any]] = {}
    for workload, scale, geometry in SAMPLING_BENCHMARKS:
        record = run_sampling_benchmark(
            workload, scale * args.scale, geometry, tiles=args.tiles,
            seed=args.seed, backend=args.backend)
        records[workload] = record
        print(f"bench {workload}: full {record['full_host_seconds']:.2f}s, "
              f"sampled cold {record['cold_host_seconds']:.2f}s "
              f"({record['cold_speedup']:.1f}x) / warm "
              f"{record['warm_host_seconds']:.2f}s "
              f"({record['warm_speedup']:.1f}x), "
              f"error {record['error_percent']:+.1f}%, "
              f"CI covers truth: {record['ci_covers_truth']}")

    trajectory = build_trajectory("sampling", records, args.tolerance)
    payload = json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
    # Never clobber the committed host-profile baseline with the
    # sampling trajectory: they share a schema, not a meaning.
    out_path = Path("BENCH_sampling.json" if args.out == DEFAULT_OUT
                    else args.out)
    out_path.write_text(payload, encoding="utf-8")
    print(f"bench: {len(records)} sampling comparison(s) -> {out_path}")
    if args.json:
        print(payload, end="")
    return 0


def run_bench(args: argparse.Namespace) -> int:
    if args.sampling:
        return run_sampling_bench(args)
    selected = BENCHMARKS[:QUICK_COUNT] if args.quick else BENCHMARKS
    mode = "quick" if args.quick else "full"

    baseline: Optional[Dict[str, Any]] = None
    baseline_path = Path(args.baseline)
    if args.check_baseline and not args.accept_baseline:
        if not baseline_path.exists():
            print(f"bench: no baseline at {baseline_path}; record one "
                  "with `python -m repro bench --accept-baseline`",
                  file=sys.stderr)
            return 1
        baseline = json.loads(baseline_path.read_text())

    records: Dict[str, Dict[str, Any]] = {}
    for workload, scale in selected:
        record = run_benchmark(workload, scale * args.scale, args.tiles,
                               backend=args.backend, seed=args.seed)
        records[workload] = record
        print(f"bench {workload}: "
              f"{record['host_wall_seconds']:.2f}s host, "
              f"{record['cycles_per_host_second']:,.0f} cycles/s, "
              f"slowdown {record['achieved_slowdown']:,.0f}x")

    trajectory = build_trajectory(mode, records, args.tolerance)
    payload = json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
    out_path = Path(args.out)
    out_path.write_text(payload, encoding="utf-8")
    print(f"bench: {len(records)} benchmark(s) -> {out_path}")
    if args.accept_baseline and baseline_path != out_path:
        baseline_path.write_text(payload, encoding="utf-8")
        print(f"bench: baseline refreshed at {baseline_path}")
    if args.json:
        print(payload, end="")

    if baseline is not None:
        problems = check_baseline(baseline, trajectory, args.tolerance)
        for problem in problems:
            print(f"bench: REGRESSION {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"bench: rates within {args.tolerance:g}x of the "
              f"baseline ({len(records)} checked)")
    return 0
