"""``python -m repro profile``: profile one benchmark run.

Runs a workload with host profiling enabled and emits the
:data:`~repro.profile.report.PROFILE_SCHEMA` report — as readable text
by default, as JSON with ``--json`` / ``--out``, and optionally as a
Chrome trace (``--trace-out``) where host wall-time tracks render next
to the simulated-time tracks on one Perfetto timeline.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.common.config import (
    EXECUTION_BACKENDS,
    SYNC_MODELS,
    SimulationConfig,
)


def add_profile_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", help="workload to profile "
                        "(see `python -m repro list-workloads`)")
    parser.add_argument("--tiles", type=int, default=32,
                        help="target tiles (default 32)")
    parser.add_argument("--threads", type=int, default=0,
                        help="application threads (default: = tiles)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="problem-size multiplier (default 1.0)")
    parser.add_argument("--machines", type=int, default=1,
                        help="host machines (default 1)")
    parser.add_argument("--cores", type=int, default=8,
                        help="host cores per machine (default 8)")
    parser.add_argument("--backend", choices=EXECUTION_BACKENDS,
                        default="inproc",
                        help="execution backend (default inproc); mp "
                             "adds per-worker busy/idle/serialization "
                             "tracks to the report")
    parser.add_argument("--sync", choices=SYNC_MODELS, default="lax")
    parser.add_argument("--quantum", type=int, default=0,
                        help="scheduler quantum in instructions")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--top", type=int, default=12,
                        help="subsystem rows in the report (default 12)")
    parser.add_argument("--json", action="store_true",
                        help="print the JSON report instead of text")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the JSON report to PATH")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="also write a Chrome trace (host + target "
                             "timelines; load in Perfetto)")


def _profile_config(args: argparse.Namespace) -> SimulationConfig:
    config = SimulationConfig(num_tiles=args.tiles, seed=args.seed)
    config.host.num_machines = args.machines
    config.host.cores_per_machine = args.cores
    config.sync.model = args.sync
    config.distrib.backend = args.backend
    config.profile.enabled = True
    config.profile.top_n = args.top
    if args.quantum:
        config.host.quantum_instructions = args.quantum
    if args.trace_out:
        config.telemetry.enabled = True
        config.telemetry.events = ["all"]
        config.telemetry.trace_path = args.trace_out
    config.validate()
    return config


def run_profile(args: argparse.Namespace) -> int:
    from repro.distrib.wire import WorkloadRef
    from repro.profile.report import render_profile
    from repro.sim.runner import create_simulator
    from repro.workloads import get_workload

    get_workload(args.workload)  # fail fast on unknown names
    config = _profile_config(args)
    threads = args.threads or args.tiles
    simulator = create_simulator(config)
    simulator.run(WorkloadRef(args.workload, threads, args.scale))
    profile: Optional[dict] = simulator.host_profile
    if profile is None:  # pragma: no cover - profiling is forced on
        print("profile: no host profile was collected", file=sys.stderr)
        return 1
    profile["workload"] = args.workload

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(profile, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(profile, indent=2, sort_keys=True))
    else:
        print(render_profile(profile))
        if args.out:
            print(f"report:  {args.out}")
        if args.trace_out:
            print(f"trace:   {args.trace_out}")
    return 0
