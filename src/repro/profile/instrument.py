"""Attach the host profiler to a built simulator.

Instrumentation works by rebinding *instance* attributes to timed
wrappers after the simulator is fully wired — no model module is
edited, no subclass exists, and with profiling off nothing here runs,
so the disabled path costs literally zero (the classes keep their
original, unwrapped methods).

Scope names form the per-subsystem attribution the reports aggregate:

======================  ====================================================
``scheduler.quantum``   one scheduler turn (dispatch + the quantum body)
``frontend.interpret``  op-stream interpretation (inproc tile threads)
``core.model``          the core performance model (timing of instructions)
``memory.controller``   per-tile memory controller (load/store/fetch)
``memory.coherence``    the directory coherence engine
``memory.dram``         DRAM controller queue/service models
``network.fabric``      network model send/transfer
``sync.model``          synchronization-model callbacks
``mp.quantum_service``  coordinator servicing one remote quantum
``mp.wire.*``           wire encode/decode/send on the coordinator side
``mp.idle.wait``        coordinator blocked on a worker pipe
======================  ====================================================

Nested scopes subtract correctly: ``memory.controller`` calls into
``memory.coherence`` which calls ``memory.dram`` and ``network.fabric``,
and each layer's *self* time excludes its callees.
"""

from __future__ import annotations

from typing import Any

from repro.frontend.interpreter import ThreadInterpreter

#: Core-model methods timed under ``core.model``.
_CORE_METHODS = ("execute", "execute_branch", "execute_memory",
                 "execute_pseudo", "drain")

#: Sync-model callbacks timed under ``sync.model``.
_SYNC_METHODS = ("on_thread_added", "on_thread_done", "on_thread_blocked",
                 "on_thread_woken", "on_quantum_end", "cycle_limit",
                 "release_if_stalled")


def instrument_simulator(sim: Any) -> None:
    """Wrap the hot subsystem entry points of ``sim`` with timed scopes.

    Requires ``sim.profiler`` to be a live
    :class:`~repro.profile.timers.HostProfiler`.  Works for both the
    in-process simulator and the mp coordinator (whose tile tasks are
    RemoteTask stubs — their ``run`` is the quantum service loop).
    """
    profiler = sim.profiler
    wrap = profiler.wrap

    for controller in sim.controllers:
        controller.load = wrap("memory.controller", controller.load)
        controller.store = wrap("memory.controller", controller.store)
        controller.fetch = wrap("memory.controller", controller.fetch)

    engine = sim.engine
    engine.read_access = wrap("memory.coherence", engine.read_access)
    engine.write_access = wrap("memory.coherence", engine.write_access)
    for dram in engine.drams:
        dram.read = wrap("memory.dram", dram.read)
        dram.post_write = wrap("memory.dram", dram.post_write)

    fabric = sim.fabric
    fabric.send = wrap("network.fabric", fabric.send)
    fabric.transfer = wrap("network.fabric", fabric.transfer)

    sync_model = sim.sync_model
    for name in _SYNC_METHODS:
        setattr(sync_model, name, wrap("sync.model",
                                       getattr(sync_model, name)))

    scheduler = sim.scheduler
    scheduler._run_quantum = wrap("scheduler.quantum",
                                  scheduler._run_quantum)

    # Interpreters appear as threads spawn; hook the spawn path so each
    # new task's quantum body (and, inproc, its core model) is timed.
    original_spawn = sim.spawn_thread

    def profiled_spawn(program, args, parent_tile, parent_clock):
        thread_id = original_spawn(program, args, parent_tile,
                                   parent_clock)
        # interpreters is keyed by TileId; the returned ThreadId shares
        # its integer value (TileId subclasses int, so lookup matches).
        task = sim.interpreters.get(thread_id)
        if task is not None and not getattr(task, "_profiled", False):
            _instrument_task(profiler, task)
        return thread_id

    sim.spawn_thread = profiled_spawn


def _instrument_task(profiler: Any, task: Any) -> None:
    """Time one tile task: the interpreter body and its core model."""
    task._profiled = True
    if isinstance(task, ThreadInterpreter):
        task.run = profiler.wrap("frontend.interpret", task.run)
        core = task.core
        for name in _CORE_METHODS:
            if hasattr(core, name):
                setattr(core, name,
                        profiler.wrap("core.model", getattr(core, name)))
    else:
        # A RemoteTask stub: its run() is the coordinator's quantum
        # service loop (wire + RPC dispatch for one remote quantum).
        task.run = profiler.wrap("mp.quantum_service", task.run)
