"""HostProfile reports: aggregation, merging and rendering.

A *host profile* is a plain, schema-versioned dict (JSON-ready) built
from one run's :class:`~repro.profile.timers.HostProfiler` plus the
:class:`~repro.sim.results.SimulationResult` it observed:

- per-subsystem attribution (calls, cumulative and self seconds),
- simulation-rate gauges — target cycles per host second, instructions
  per host second, and the *achieved* slowdown (measured host wall time
  over the modeled native time, the measured counterpart of the
  paper's Table 2 modeled slowdown),
- under ``backend=mp``: one section per worker (busy/idle/serialization
  time, utilization) merged from wire-v3 ``HOST_STATS`` frames, plus
  the busy-time skew across workers.

The report deliberately lives *next to* the simulation result rather
than inside it: ``SimulationResult`` stays byte-identical with
profiling on or off.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

#: Version every emitted host profile carries.
PROFILE_SCHEMA = "repro.host_profile/1"

#: Worker-side scope names with dedicated roles in the merged report.
WORKER_IDLE_SCOPE = "idle.wait"
WORKER_SERIALIZE_SCOPES = ("wire.encode", "wire.decode", "wire.send")


def _seconds(ns: int) -> float:
    return ns / 1e9


def summarize_worker(scopes: Mapping[str, Mapping[str, int]]
                     ) -> Dict[str, Any]:
    """Busy/idle/serialization split of one worker's scope export.

    Self times partition the instrumented time, so *busy* is everything
    that is not the blocked-on-the-pipe idle scope; serialization is
    called out separately (it is part of busy — the worker's CPU is
    doing pickle work).
    """
    idle_ns = 0
    busy_ns = 0
    serialize_ns = 0
    for name, row in scopes.items():
        if name == WORKER_IDLE_SCOPE:
            idle_ns += row["self_ns"]
        else:
            busy_ns += row["self_ns"]
        if name in WORKER_SERIALIZE_SCOPES:
            serialize_ns += row["self_ns"]
    total_ns = busy_ns + idle_ns
    return {
        "busy_seconds": _seconds(busy_ns),
        "idle_seconds": _seconds(idle_ns),
        "serialize_seconds": _seconds(serialize_ns),
        "utilization": (busy_ns / total_ns) if total_ns else 0.0,
        "scopes": {name: dict(row) for name, row in sorted(scopes.items())},
    }


def build_profile(profiler: Any, result: Any, backend: str,
                  worker_scopes: Optional[
                      Mapping[int, Mapping[str, Mapping[str, int]]]] = None,
                  top_n: int = 12) -> Dict[str, Any]:
    """Assemble the host profile dict for one finished run."""
    wall_seconds = _seconds(profiler.run_ns)
    instrumented = _seconds(profiler.instrumented_ns())
    subsystems = {
        name: {"calls": stats.calls,
               "cum_seconds": _seconds(stats.cum_ns),
               "self_seconds": _seconds(stats.self_ns)}
        for name, stats in sorted(profiler.scopes.items())}

    native = result.native_seconds
    profile: Dict[str, Any] = {
        "schema": PROFILE_SCHEMA,
        "backend": backend,
        "host_wall_seconds": wall_seconds,
        "instrumented_seconds": instrumented,
        "untracked_seconds": max(wall_seconds - instrumented, 0.0),
        "rates": {
            "simulated_cycles": result.simulated_cycles,
            "instructions": result.total_instructions,
            "cycles_per_host_second": (
                result.simulated_cycles / wall_seconds
                if wall_seconds > 0 else 0.0),
            "instructions_per_host_second": (
                result.total_instructions / wall_seconds
                if wall_seconds > 0 else 0.0),
            "native_seconds_model": native,
            "modeled_slowdown": result.slowdown,
            "achieved_slowdown": (wall_seconds / native
                                  if native > 0 else 0.0),
        },
        "subsystems": subsystems,
        "top_subsystems": top_subsystems(subsystems, top_n),
    }

    if worker_scopes is not None:
        workers = {str(index): summarize_worker(scopes)
                   for index, scopes in sorted(worker_scopes.items())}
        profile["workers"] = workers
        busy = [w["busy_seconds"] for w in workers.values()]
        if busy:
            profile["worker_skew"] = {
                "max_busy_seconds": max(busy),
                "min_busy_seconds": min(busy),
                "skew_ratio": (max(busy) / min(busy)
                               if min(busy) > 0 else 0.0),
            }
    return profile


def top_subsystems(subsystems: Mapping[str, Mapping[str, float]],
                   top_n: int) -> List[Dict[str, Any]]:
    """The ``top_n`` scopes by self time, largest first."""
    ranked = sorted(subsystems.items(),
                    key=lambda item: (-item[1]["self_seconds"], item[0]))
    return [{"name": name, **dict(row)} for name, row in ranked[:top_n]]


def render_profile(profile: Mapping[str, Any],
                   top_n: Optional[int] = None) -> str:
    """Human-readable summary of a host profile dict."""
    rates = profile["rates"]
    lines = [
        f"host wall time:      {profile['host_wall_seconds']:.3f}s "
        f"({profile['backend']} backend)",
        f"simulation rate:     "
        f"{rates['cycles_per_host_second']:,.0f} cycles/s, "
        f"{rates['instructions_per_host_second']:,.0f} instr/s",
        f"achieved slowdown:   {rates['achieved_slowdown']:,.0f}x "
        f"(modeled {rates['modeled_slowdown']:,.0f}x)",
    ]
    rows = profile["top_subsystems"]
    if top_n is not None:
        rows = rows[:top_n]
    if rows:
        width = max(len(r["name"]) for r in rows)
        lines.append("subsystem self-times:")
        for row in rows:
            lines.append(
                f"  {row['name'].ljust(width)}  "
                f"{row['self_seconds'] * 1e3:10.3f} ms self  "
                f"{row['cum_seconds'] * 1e3:10.3f} ms cum  "
                f"{row['calls']:>9,} calls")
    untracked = profile.get("untracked_seconds", 0.0)
    lines.append(f"  {'(untracked)'.ljust(width) if rows else '(untracked)'}"
                 f"  {untracked * 1e3:10.3f} ms self")
    for index, worker in sorted(profile.get("workers", {}).items()):
        lines.append(
            f"worker {index}:            "
            f"busy {worker['busy_seconds'] * 1e3:.3f} ms, "
            f"idle {worker['idle_seconds'] * 1e3:.3f} ms, "
            f"serialize {worker['serialize_seconds'] * 1e3:.3f} ms "
            f"({worker['utilization']:.0%} utilized)")
    skew = profile.get("worker_skew")
    if skew:
        lines.append(f"worker busy skew:    {skew['skew_ratio']:.2f}x "
                     f"(max {skew['max_busy_seconds'] * 1e3:.3f} ms / "
                     f"min {skew['min_busy_seconds'] * 1e3:.3f} ms)")
    return "\n".join(lines)
