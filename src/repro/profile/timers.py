"""Low-overhead scoped host timers with self/cumulative attribution.

The profiler answers "where does the *host's* wall time go?" for one
simulator process.  It keeps a stack of open scopes; entering a scope
records ``perf_counter_ns`` once, exiting records it again and credits
the elapsed nanoseconds to the scope's *cumulative* time, the elapsed
time minus the time spent in child scopes to its *self* time, and the
whole interval to the parent's child accumulator.  Self times therefore
partition the instrumented wall time: summing ``self_ns`` over all
scopes counts every instrumented nanosecond exactly once.

Host profiling is the one part of the tree sanctioned to read wall
clocks (``src/repro/profile/`` is D001-exempt by scope, see
:mod:`repro.check.lint`); everything it measures is host time, never
simulated time.  The profiler is purely observational — it draws no
RNG, charges no cycles, and a profiled run produces byte-identical
simulation metrics to an unprofiled one.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Callable, Dict, List, Optional


class ScopeStats:
    """Accumulated timing of one named scope."""

    __slots__ = ("calls", "cum_ns", "self_ns")

    def __init__(self) -> None:
        self.calls = 0
        self.cum_ns = 0
        self.self_ns = 0

    def add(self, calls: int, cum_ns: int, self_ns: int) -> None:
        self.calls += calls
        self.cum_ns += cum_ns
        self.self_ns += self_ns

    def to_dict(self) -> Dict[str, int]:
        return {"calls": self.calls, "cum_ns": self.cum_ns,
                "self_ns": self.self_ns}


class HostProfiler:
    """Stack-based scoped timer; one instance per simulator process."""

    def __init__(self) -> None:
        self.scopes: Dict[str, ScopeStats] = {}
        #: Open scopes: [name, start_ns, child_ns] frames.
        self._stack: List[list] = []
        self._run_start_ns: Optional[int] = None
        self._run_stop_ns: Optional[int] = None

    # -- scope entry/exit ----------------------------------------------------

    def enter(self, name: str) -> None:
        self._stack.append([name, perf_counter_ns(), 0])

    def exit(self) -> None:
        name, start_ns, child_ns = self._stack.pop()
        elapsed = perf_counter_ns() - start_ns
        stats = self.scopes.get(name)
        if stats is None:
            stats = self.scopes[name] = ScopeStats()
        stats.calls += 1
        stats.cum_ns += elapsed
        stats.self_ns += max(elapsed - child_ns, 0)
        if self._stack:
            self._stack[-1][2] += elapsed

    def wrap(self, name: str, fn: Callable) -> Callable:
        """A callable timing every invocation of ``fn`` under ``name``."""

        def timed(*args, **kwargs):
            self.enter(name)
            try:
                return fn(*args, **kwargs)
            finally:
                self.exit()

        timed.__wrapped__ = fn  # type: ignore[attr-defined]
        return timed

    def add_ns(self, name: str, elapsed_ns: int, calls: int = 1) -> None:
        """Credit pre-measured time to a scope (flat: self == cum).

        Used where enter/exit bracketing cannot separate phases of one
        call (e.g. the blocked-poll part of a pipe receive).
        """
        stats = self.scopes.get(name)
        if stats is None:
            stats = self.scopes[name] = ScopeStats()
        stats.add(calls, elapsed_ns, elapsed_ns)
        if self._stack:
            self._stack[-1][2] += elapsed_ns

    # -- run bracketing ------------------------------------------------------

    def start_run(self) -> None:
        # Idempotent: the mp backend opens the bracket before forking
        # its cluster, then the common run path calls this again.
        if self._run_start_ns is None:
            self._run_start_ns = perf_counter_ns()

    def stop_run(self) -> None:
        self._run_stop_ns = perf_counter_ns()

    @property
    def run_ns(self) -> int:
        """Wall nanoseconds between start_run and stop_run (0 if unset)."""
        if self._run_start_ns is None or self._run_stop_ns is None:
            return 0
        return self._run_stop_ns - self._run_start_ns

    # -- export / merge ------------------------------------------------------

    def scope_dict(self) -> Dict[str, Dict[str, int]]:
        """Plain-dict snapshot of every scope (wire/JSON friendly)."""
        return {name: stats.to_dict()
                for name, stats in sorted(self.scopes.items())}

    def instrumented_ns(self) -> int:
        """Nanoseconds covered by any scope (self times partition it)."""
        return sum(s.self_ns for s in self.scopes.values())

    def absorb(self, scope_dict: Dict[str, Dict[str, int]],
               prefix: str = "") -> None:
        """Merge another profiler's exported scopes into this one."""
        for name, row in scope_dict.items():
            stats = self.scopes.get(prefix + name)
            if stats is None:
                stats = self.scopes[prefix + name] = ScopeStats()
            stats.add(row["calls"], row["cum_ns"], row["self_ns"])


def create_profiler(config) -> Optional[HostProfiler]:
    """``None`` when profiling is off — the observer trick: call sites
    keep their original methods and hot paths pay nothing at all."""
    if config is None or not config.enabled:
        return None
    return HostProfiler()
