"""Checkpoint-accelerated sampling (:mod:`repro.sample`).

Three layers, each usable on its own:

* **Functional fast-forward** — :class:`~repro.sample.controller.
  SampleController` switches the simulator between ``detailed`` and
  ``functional`` execution at scheduler-quantum boundaries.  In
  functional mode every architectural state transition (caches,
  directory, backing store, message delivery, thread lifecycle) stays
  on the one shared code path, but the timing layers are bypassed:
  unit-cost cores, zero-latency network and DRAM, magic
  synchronization.
* **Snapshot library** — :class:`~repro.sample.library.
  SnapshotLibrary` stores the checkpoint written at the end of a
  fast-forward so configuration sweeps that share a functional prefix
  fast-forward *once* and fork every variant from the stored snapshot.
* **Interval sampling** — :mod:`repro.sample.intervals` alternates
  fast-forward / warmup / measured-detail windows and
  :mod:`repro.sample.stats` extrapolates whole-run cycle counts with
  Student-t confidence intervals.
"""

from repro.sample.controller import FastForwardDone, SampleController
from repro.sample.intervals import Phase, phase_at
from repro.sample.library import SnapshotLibrary, run_with_library
from repro.sample.stats import confidence_interval, extrapolate

__all__ = [
    "FastForwardDone",
    "Phase",
    "SampleController",
    "SnapshotLibrary",
    "confidence_interval",
    "extrapolate",
    "phase_at",
    "run_with_library",
]
