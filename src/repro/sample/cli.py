"""``repro sample`` — manage the snapshot library from the shell.

Three verbs over a library directory (:mod:`repro.sample.library`):

* ``ls`` lists every complete entry with its workload descriptor,
  fast-forward target and backend;
* ``prime`` fast-forwards one workload/config to its target and files
  the switch-point checkpoint, so later sweeps (and serve jobs) fork
  instead of re-running the prefix;
* ``gc`` bounds the library's disk footprint, keeping the most
  recently used entries and dropping the rest.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import List, Tuple


def add_sample_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="sample_command", required=True)

    ls = sub.add_parser("ls", help="list the library's entries")
    ls.add_argument("--library", required=True, metavar="DIR",
                    help="snapshot library directory")
    ls.add_argument("--json", action="store_true",
                    help="machine-readable output")

    prime = sub.add_parser(
        "prime",
        help="fast-forward one workload to its target and file the "
             "switch-point checkpoint")
    prime.add_argument("--library", required=True, metavar="DIR",
                       help="snapshot library directory")
    prime.add_argument("--workload", required=True,
                       help="registered workload name")
    prime.add_argument("--ff-until", type=int, required=True,
                       metavar="CYCLES",
                       help="fast-forward target in simulated cycles")
    prime.add_argument("--tiles", type=int, default=32,
                       help="number of target tiles (default 32)")
    prime.add_argument("--threads", type=int, default=0,
                       help="worker threads (default: one per tile)")
    prime.add_argument("--scale", type=float, default=1.0,
                       help="workload problem-size scale factor")
    prime.add_argument("--seed", type=int, default=42)
    prime.add_argument("--backend", choices=("inproc", "mp"),
                       default="inproc",
                       help="execution backend for the primer run")

    gc = sub.add_parser(
        "gc", help="drop all but the most recently used entries")
    gc.add_argument("--library", required=True, metavar="DIR",
                    help="snapshot library directory")
    gc.add_argument("--keep", type=int, default=8, metavar="N",
                    help="entries to keep, newest first (default 8)")


def _entry_mtime(library, key: str) -> float:
    """Last-use time of an entry (the metadata file's mtime)."""
    try:
        return os.path.getmtime(
            os.path.join(library.entry_dir(key), "LIBRARY.json"))
    except OSError:
        return 0.0


def _command_ls(args: argparse.Namespace) -> int:
    from repro.sample.library import SnapshotLibrary
    library = SnapshotLibrary(args.library)
    entries = library.entries()
    if args.json:
        print(json.dumps(
            [{"key": key, **meta} for key, meta in entries], indent=2))
        return 0
    if not entries:
        print(f"library {args.library}: no entries")
        return 0
    print(f"library {args.library}: {len(entries)} entry(ies)")
    for key, meta in entries:
        descriptor = meta.get("descriptor", {})
        workload = descriptor.get(
            "workload", descriptor.get("program_sha", "?")[:12])
        print(f"  {key}  {workload}"
              f" x{descriptor.get('nthreads', '?')}"
              f" scale={descriptor.get('scale', '?')}"
              f"  ff_until={meta.get('ff_until')}"
              f"  backend={meta.get('backend')}"
              f"  tiles={meta.get('num_tiles')}")
    return 0


def _command_prime(args: argparse.Namespace) -> int:
    from repro.common.config import SimulationConfig
    from repro.distrib.wire import WorkloadRef
    from repro.sample.library import SnapshotLibrary
    from repro.workloads import get_workload
    get_workload(args.workload)  # fail fast on unknown names
    config = SimulationConfig(num_tiles=args.tiles, seed=args.seed)
    config.distrib.backend = args.backend
    config.sample.ff_until = args.ff_until
    config.validate()
    threads = args.threads or args.tiles
    program = WorkloadRef(args.workload, threads, args.scale)
    library = SnapshotLibrary(args.library)
    key, primed = library.ensure(config, program)
    verb = "primed" if primed else "already present"
    print(f"entry {key} {verb} ({args.workload} x{threads}, "
          f"ff_until={args.ff_until})")
    return 0


def _command_gc(args: argparse.Namespace) -> int:
    from repro.sample.library import SnapshotLibrary
    library = SnapshotLibrary(args.library)
    ranked: List[Tuple[float, str]] = sorted(
        ((_entry_mtime(library, key), key)
         for key, _meta in library.entries()),
        reverse=True)
    keep = max(args.keep, 0)
    dropped = 0
    for _mtime, key in ranked[keep:]:
        if library.drop(key):
            print(f"dropped {key}")
            dropped += 1
    print(f"kept {min(len(ranked), keep)}, dropped {dropped}")
    return 0


def run_sample(args: argparse.Namespace) -> int:
    if args.sample_command == "ls":
        return _command_ls(args)
    if args.sample_command == "prime":
        return _command_prime(args)
    if args.sample_command == "gc":
        return _command_gc(args)
    raise AssertionError(
        f"unhandled sample verb {args.sample_command}")
