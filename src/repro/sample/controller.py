"""The sample controller: a scheduler hook that switches execution mode.

Installed by the simulator as a periodic hook with period 1, so it runs
between every pair of scheduler quanta — the same consistency boundary
checkpoints use.  Each invocation computes the progress horizon (the
maximum live thread clock — elapsed target time), asks
:mod:`repro.sample.intervals` which phase that horizon falls in, and
reconciles the simulator's execution mode with the phase.  Detail
windows are measured by differencing the horizon and the scheduler's
retired-instruction total at the window edges;
:mod:`repro.sample.stats` turns the resulting per-window CPI samples
into an extrapolated whole-run cycle count.

Everything here reads only backend-identical state (thread clocks,
instruction totals, the turn counter), so a sampled run remains
byte-identical across the inproc and mp backends.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.config import SampleConfig
from repro.common.errors import SimulationError
from repro.sample.intervals import DETAIL, phase_at


class FastForwardDone(SimulationError):
    """Internal unwind: a fast-forward-only run reached its target.

    Raised by the controller (between quanta, like serve preemption's
    :class:`~repro.serve.worker.JobPreempted`) when ``stop_after_ff``
    is set — the snapshot-library priming path, which wants the
    checkpoint written at the switch point and nothing further.
    """

    def __init__(self, checkpoint_dir: str) -> None:
        super().__init__(f"fast-forward complete: {checkpoint_dir}")
        self.checkpoint_dir = checkpoint_dir


class SampleController:
    """Drives mode switches and window measurement for one simulator."""

    def __init__(self, simulator: Any, config: SampleConfig,
                 channel: Optional[Any] = None) -> None:
        self.simulator = simulator
        self.config = config
        #: SAMPLE-category telemetry channel, or ``None`` (excised to
        #: ``None`` by checkpoint snapshots, like every bus client).
        self.channel = channel
        #: Library priming (:mod:`repro.sample.library`): checkpoint at
        #: the fast-forward switch point and unwind with
        #: :class:`FastForwardDone` instead of running on.
        self.stop_after_ff = False
        #: Set once the initial ``ff_until`` fast-forward completed.
        self.ff_done = config.ff_until <= 0
        #: Cycle and turn at which the initial fast-forward ended.
        self.ff_cycle: Optional[int] = None
        self.ff_turn: Optional[int] = None
        #: Every mode switch: ``{"turn", "cycle", "mode"}``.
        self.switches: List[Dict[str, Any]] = []
        #: Closed measurement windows (see :meth:`_close_window`).
        self.windows: List[Dict[str, Any]] = []
        self._open_window: Optional[Dict[str, Any]] = None
        # Monotone progress horizon: ``max(live clocks)`` can regress
        # when the leading thread finishes (DONE threads leave the
        # pool), which must never run a phase backwards or produce a
        # negative-length window.
        self._horizon = 0

    # -- the periodic hook ---------------------------------------------------

    def __call__(self, scheduler: Any) -> None:
        clocks = scheduler.thread_clocks()
        if not clocks:
            return
        # Phases and windows are both gated on the *horizon* — the
        # maximum live thread clock, i.e. elapsed target time.  The
        # minimum would pin the schedule to whichever thread is blocked
        # longest (a worker parked on a recv during a serial phase
        # freezes the minimum for tens of thousands of cycles), which
        # both stalls mode switches and makes measurement windows cover
        # wildly unequal stretches of target time; horizon gating keeps
        # window placement time-uniform, which is what makes the
        # ratio-estimator extrapolation (:mod:`repro.sample.stats`)
        # unbiased.  Either choice is deterministic and
        # backend-identical; this one is also statistically sound.
        self._horizon = max(self._horizon, max(clocks))
        horizon = self._horizon
        phase = phase_at(self.config, horizon)
        finished_ff = not self.ff_done and not phase.functional
        if finished_ff:
            self.ff_done = True
            self.ff_cycle = horizon
            self.ff_turn = scheduler.turns
            self._emit("ff.done", horizon,
                       {"target": self.config.ff_until,
                        "turn": scheduler.turns})
        self._reconcile_mode(scheduler, horizon, phase.functional)
        self._reconcile_window(scheduler, horizon,
                               phase.name == DETAIL)
        if finished_ff and self.stop_after_ff:
            # Library priming: snapshot at the switch point and unwind.
            # The snapshot is written only after this hook's full
            # bookkeeping — mode flipped back to detailed, measurement
            # window opened — so a fork resumes with *exactly* the
            # state an unshared run carries out of this invocation.
            path = self.simulator.save_checkpoint()
            raise FastForwardDone(path)

    def _reconcile_mode(self, scheduler: Any, horizon: int,
                        functional: bool) -> None:
        if functional == self.simulator.exec_functional:
            return
        mode = "functional" if functional else "detailed"
        self.simulator.set_execution_mode(mode)
        self.switches.append({"turn": scheduler.turns,
                              "cycle": horizon, "mode": mode})
        self._emit("mode", horizon,
                   {"mode": mode, "turn": scheduler.turns})

    # -- measurement windows -------------------------------------------------

    def _reconcile_window(self, scheduler: Any, horizon: int,
                          measuring: bool) -> None:
        if measuring and self._open_window is None:
            self._open_window = {
                "start": horizon,
                "start_turn": scheduler.turns,
                "start_clock_sum": scheduler.total_cycles(),
                "start_instructions": scheduler.instructions_retired,
            }
        elif not measuring and self._open_window is not None:
            self._close_window(scheduler, horizon)

    def _close_window(self, scheduler: Any, horizon: int) -> None:
        opened = self._open_window
        assert opened is not None
        self._open_window = None
        instructions = (scheduler.instructions_retired
                        - opened["start_instructions"])
        window = {
            "start": opened["start"],
            "end": horizon,
            "turns": scheduler.turns - opened["start_turn"],
            # Position in the retired-instruction stream, for the
            # gap-reconstruction extrapolator (:mod:`repro.sample.
            # stats`): instructions retired before the window opened.
            "instructions_before": opened["start_instructions"],
            # Horizon advance: how far elapsed target time moved during
            # the window.  This is the numerator of the CPI that
            # extrapolates ``simulated_cycles`` (a whole-machine rate —
            # all threads retire concurrently while the horizon moves).
            "cycles": horizon - opened["start"],
            # Summed per-thread clock advance, for per-core CPI studies.
            "clock_sum": (scheduler.total_cycles()
                          - opened["start_clock_sum"]),
            "instructions": instructions,
        }
        self.windows.append(window)
        self._emit("window", horizon, dict(window))

    # -- reporting -----------------------------------------------------------

    def summary(self, result: Any) -> Dict[str, Any]:
        """The run's ``result.sample`` payload (see ``sim/results``)."""
        if self._open_window is not None:
            # The run ended inside a detail window; close it at the
            # final frontier so its measurements are not dropped.
            scheduler = self.simulator.scheduler
            horizon = max(self._horizon, result.simulated_cycles)
            self._close_window(scheduler, horizon)
        data: Dict[str, Any] = {
            "config": {
                "ff_until": self.config.ff_until,
                "period": self.config.period,
                "detail": self.config.detail,
                "warmup": self.config.warmup,
                "confidence": self.config.confidence,
            },
            "mode_switches": list(self.switches),
            "windows": [dict(w) for w in self.windows],
        }
        if self.config.ff_until > 0:
            data["ff"] = {"until": self.config.ff_until,
                          "cycle": self.ff_cycle,
                          "turn": self.ff_turn}
        if self.config.intervals_enabled:
            from repro.sample.stats import extrapolate
            data["extrapolation"] = extrapolate(
                self.windows, result.total_instructions,
                self.config.confidence)
        return data

    def _emit(self, name: str, t: int, args: Dict[str, Any]) -> None:
        if self.channel is not None:
            self.channel.emit(name, None, t, args)
