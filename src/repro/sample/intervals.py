"""Interval-sampling phase geometry.

After the initial fast-forward (``sample.ff_until``), simulated time is
tiled into periods of ``sample.period`` cycles.  Each period opens with
a detailed-but-unmeasured ``warmup`` window (re-warming the timing
state the fast-forward left cold: predictors, DRAM queues, network
contention), then the measured ``detail`` window, then fast-forwards
the period's remainder::

    ff_until                     period                    period
    |<--- functional --->|<-warmup->|<-detail->|<--ff-->|<-warmup->|...

Warmup-first ordering makes ``ff_until`` the exact cycle detailed
execution begins whether or not intervals are configured — which is
what lets the snapshot library prime one switch-point checkpoint
(taken by a fast-forward-only run) and fork interval-sampled variants
from it byte-identically.

Phase boundaries are *targets*: the sample controller compares the
progress horizon (the maximum live thread clock — elapsed target time)
against them between scheduler quanta, so actual switches land on the
first quantum boundary at or past each target — deterministically, and
identically on both execution backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config import SampleConfig

#: Phase names.
FF = "ff"
WARMUP = "warmup"
DETAIL = "detail"


@dataclass(frozen=True)
class Phase:
    """One contiguous stretch of a single execution treatment."""

    name: str
    #: Absolute cycle the phase begins at.
    start: int
    #: Absolute cycle the phase ends at; ``None`` = until run end.
    end: Optional[int]

    @property
    def functional(self) -> bool:
        return self.name == FF

    @property
    def measured(self) -> bool:
        return self.name == DETAIL


def phase_at(config: SampleConfig, cycle: int) -> Phase:
    """The phase the progress frontier ``cycle`` falls in."""
    base = config.ff_until
    if config.ff_until > 0 and cycle < base:
        return Phase(FF, 0, base)
    if not config.intervals_enabled:
        return Phase(DETAIL, base, None)
    period = config.period
    offset = (cycle - base) % period
    period_start = cycle - offset
    warmup, detail = config.warmup, config.detail
    if offset < warmup:
        return Phase(WARMUP, period_start, period_start + warmup)
    if offset < warmup + detail:
        return Phase(DETAIL, period_start + warmup,
                     period_start + warmup + detail)
    return Phase(FF, period_start + warmup + detail,
                 period_start + period)
