"""The snapshot library: one fast-forward shared across a config sweep.

A configuration sweep (core-model studies, network studies) typically
varies only sections that functional fast-forward ignores — the timing
models.  Every variant therefore computes *exactly the same*
architectural state while fast-forwarding to the region of interest,
and the work can be done once: the library fast-forwards a *primer*
run to ``sample.ff_until``, checkpoints at the switch point (the same
consistency boundary :mod:`repro.ckpt` always snapshots at) and files
the checkpoint under a key derived from

* the workload's structural descriptor (which workload, how many
  threads, its scale and parameters),
* the configuration's *prefix hash*
  (:meth:`~repro.common.config.SimulationConfig.prefix_hash` — the
  semantic sections minus the timing-only ones), and
* the fast-forward target itself.

Each sweep variant then *forks* from the stored snapshot: the restored
simulator is re-dressed with the variant's timing models (core and
network — precisely the sections the prefix hash dropped) and resumed
in detailed mode.  Because the fast-forward path never touches the
timing models, a forked run is byte-identical to an unshared run of
the same variant; :func:`SnapshotLibrary.verify` checks exactly that,
loudly, and :class:`~repro.common.errors.SampleError` means the
prefix-irrelevance contract was broken.

The entry layout on disk::

    <library root>/
        <key>/                  one entry per (workload, prefix, target)
            LIBRARY.json        descriptor, hashes, primer telemetry
            ckpt-NNNNNNNN/      the switch-point checkpoint
            LATEST

Entries are created atomically (staging directory + ``os.replace``) so
concurrent sweep processes racing to prime the same prefix cannot
observe a half-written entry — the losing primer's work is discarded.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from typing import Any, Dict, List, Optional, Tuple

from repro.common.config import SampleConfig, SimulationConfig
from repro.common.errors import SampleError
from repro.sample.controller import FastForwardDone

#: Metadata file marking a complete library entry.
LIBRARY_META = "LIBRARY.json"

#: On-disk entry format version.
LIBRARY_FORMAT = "repro.sample/1"


def workload_descriptor(program: Any, args: tuple = ()) -> Dict[str, Any]:
    """Structural identity of a workload, stable across processes.

    Named workloads (anything :func:`repro.distrib.wire.
    make_program_ref` can resolve to a :class:`~repro.distrib.wire.
    WorkloadRef`) are described by their registry name, thread count,
    scale and parameters; ad-hoc callables fall back to the sha256 of
    their pickled program reference — correct, but shared only between
    runs shipping the very same code object.
    """
    from repro.distrib.wire import make_program_ref, program_key
    ref = make_program_ref(program)
    if hasattr(ref, "workload"):
        descriptor: Dict[str, Any] = {
            "workload": ref.workload,
            "nthreads": ref.nthreads,
            "scale": ref.scale,
            "params": {k: ref.params[k] for k in sorted(ref.params)},
        }
    else:
        descriptor = {
            "program_sha": hashlib.sha256(program_key(ref)).hexdigest(),
        }
    if args:
        descriptor["args"] = repr(tuple(args))
    return descriptor


def roi_metrics(result: Any) -> Dict[str, Any]:
    """The result fields the determinism check compares byte-for-byte.

    Everything semantic: cycles, per-thread clocks and instruction
    counts, the full counter tree, and the sampling summary minus its
    ``library`` annotation (which legitimately differs between a forked
    and an unshared run).  Host wall-clock estimates are modelled — and
    identical too — but float formatting is not what the check is
    about, so they are left out.
    """
    sample = {k: v for k, v in result.sample.items() if k != "library"}
    return {
        "simulated_cycles": result.simulated_cycles,
        "parallel_cycles": result.parallel_cycles,
        "thread_cycles": dict(result.thread_cycles),
        "thread_instructions": dict(result.thread_instructions),
        "thread_start_cycles": dict(result.thread_start_cycles),
        "total_instructions": result.total_instructions,
        "counters": dict(result.counters),
        "sample": sample,
    }


class SnapshotLibrary:
    """Keyed store of fast-forward switch-point checkpoints."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        #: Sweep-level accounting: how many variants primed a new entry
        #: versus forked an existing one.  ``primes`` counts actual
        #: fast-forwards performed — a shared-prefix sweep asserts it
        #: stays at 1.
        self.stats = {"primes": 0, "hits": 0}

    # -- keying ---------------------------------------------------------------

    def key(self, config: SimulationConfig, program: Any,
            args: tuple = ()) -> str:
        """The library key of ``config``'s functional prefix.

        sha256 over canonical JSON of the workload descriptor, the
        config's prefix hash and the fast-forward target — no repr of
        live objects, no addresses, so the key is stable across
        processes and ``PYTHONHASHSEED`` values.
        """
        payload = {
            "descriptor": workload_descriptor(program, args),
            "prefix": config.prefix_hash(),
            "ff_until": config.sample.ff_until,
        }
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    def entry_dir(self, key: str) -> str:
        return os.path.join(self.root, key)

    def has(self, key: str) -> bool:
        return os.path.isfile(os.path.join(self.entry_dir(key),
                                           LIBRARY_META))

    def meta(self, key: str) -> Dict[str, Any]:
        path = os.path.join(self.entry_dir(key), LIBRARY_META)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError) as exc:
            raise SampleError(
                f"library entry {key!r} is unreadable: {exc}") from exc

    def entries(self) -> List[Tuple[str, Dict[str, Any]]]:
        """Every complete entry as ``(key, metadata)``, key-sorted."""
        found = []
        for name in sorted(os.listdir(self.root)):
            if self.has(name):
                found.append((name, self.meta(name)))
        return found

    def drop(self, key: str) -> bool:
        """Delete one entry; returns whether anything was removed."""
        entry = self.entry_dir(key)
        if not os.path.isdir(entry):
            return False
        shutil.rmtree(entry)
        return True

    # -- priming --------------------------------------------------------------

    def prime(self, config: SimulationConfig, program: Any,
              args: tuple = ()) -> str:
        """Fast-forward once and file the switch-point checkpoint.

        Runs a primer simulation — the variant's config with the
        timing-irrelevant sections untouched, checkpointing redirected
        into a staging directory — on the config's own backend, with
        the sample controller's ``stop_after_ff`` set so the run
        checkpoints at the fast-forward switch and unwinds.  The
        staging directory is moved into place atomically; if another
        process primed the same key meanwhile, its entry wins and this
        one is discarded.  Returns the entry directory.
        """
        if config.sample.ff_until <= 0:
            raise SampleError("priming needs sample.ff_until > 0")
        key = self.key(config, program, args)
        final = self.entry_dir(key)
        staging = os.path.join(self.root, f".priming-{key}")
        if os.path.isdir(staging):
            shutil.rmtree(staging)
        primer_config = self._primer_config(config, staging)
        from repro.sim.runner import create_simulator
        simulator = create_simulator(primer_config)
        controller = simulator.sample_controller
        assert controller is not None  # sample.enabled via ff_until
        controller.stop_after_ff = True
        try:
            simulator.run(program, args)
        except FastForwardDone:
            pass
        else:
            shutil.rmtree(staging, ignore_errors=True)
            raise SampleError(
                f"workload finished before the fast-forward target "
                f"(ff_until={config.sample.ff_until}); there is no "
                f"detailed region to share")
        meta = {
            "format": LIBRARY_FORMAT,
            "key": key,
            "descriptor": workload_descriptor(program, args),
            "prefix_hash": config.prefix_hash(),
            "ff_until": config.sample.ff_until,
            "backend": primer_config.distrib.backend,
            "num_tiles": config.num_tiles,
            "events": self._sample_events(simulator),
        }
        with open(os.path.join(staging, LIBRARY_META), "w",
                  encoding="utf-8") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
        self.stats["primes"] += 1
        if os.path.isdir(final):
            # Lost a priming race; both entries hold byte-identical
            # state (that is the whole point), keep the incumbent.
            shutil.rmtree(staging)
        else:
            os.replace(staging, final)
        return final

    @staticmethod
    def _primer_config(config: SimulationConfig,
                       staging: str) -> SimulationConfig:
        """The primer's config: the variant minus everything post-FF."""
        primer = config.copy()
        # Fast-forward only — the primer never runs the variant's
        # interval schedule, and must not try to fork a library itself.
        primer.sample = SampleConfig(ff_until=config.sample.ff_until)
        # Checkpoints go to the staging entry; no periodic cadence, the
        # controller writes the single switch-point snapshot itself.
        primer.ckpt.dir = staging
        primer.ckpt.every = 0
        primer.ckpt.keep = 1
        # In-memory SAMPLE telemetry so the primer's mode switches land
        # in the entry metadata; no file sinks (the variant's paths are
        # not ours to write).
        primer.telemetry.enabled = True
        primer.telemetry.events = ["sample"]
        primer.telemetry.trace_path = None
        primer.telemetry.metrics_interval = 0
        primer.telemetry.trace_id = ""
        primer.telemetry.span_parent = ""
        primer.telemetry.flight_dir = ""
        primer.validate()
        return primer

    @staticmethod
    def _sample_events(simulator: Any) -> List[Dict[str, Any]]:
        """The primer's SAMPLE telemetry, for the entry metadata."""
        bus = getattr(simulator, "telemetry", None)
        if bus is None:
            return []
        from repro.telemetry.events import EventCategory
        return [event.to_dict() for event in bus.ordered_events()
                if event.category == EventCategory.SAMPLE]

    # -- forking --------------------------------------------------------------

    def ensure(self, config: SimulationConfig, program: Any,
               args: tuple = ()) -> Tuple[str, bool]:
        """Prime the entry for ``config`` unless present.

        Returns ``(key, primed)`` where ``primed`` says whether this
        call performed the fast-forward.
        """
        key = self.key(config, program, args)
        if self.has(key):
            self.stats["hits"] += 1
            return key, False
        self.prime(config, program, args)
        return key, True

    def fork(self, key: str, config: SimulationConfig) -> Any:
        """A runnable simulator: the stored snapshot, re-dressed.

        Restores the entry's checkpoint, swaps in ``config``'s timing
        models (core and network — the prefix-irrelevant sections) and
        re-arms telemetry per ``config``.  Drive the result with
        ``resume_run()``.
        """
        if not self.has(key):
            raise SampleError(f"no library entry {key!r} in {self.root}")
        from repro.ckpt.recovery import _recovery_bus, load_checkpoint
        simulator, _manifest = load_checkpoint(self.entry_dir(key))
        _reconfigure_fork(simulator, config)
        _recovery_bus(simulator)
        self._rearm_controller_channel(simulator)
        return simulator

    @staticmethod
    def _rearm_controller_channel(simulator: Any) -> None:
        """Re-attach the SAMPLE channel the snapshot excised."""
        controller = simulator.sample_controller
        if controller is None or simulator.telemetry is None:
            return
        from repro.telemetry.events import EventCategory
        controller.channel = simulator.telemetry.channel(
            EventCategory.SAMPLE)

    # -- the determinism check ------------------------------------------------

    def verify(self, config: SimulationConfig, program: Any,
               args: tuple = ()) -> Dict[str, Any]:
        """Loud check: a forked run must equal an unshared run, exactly.

        Runs ``config`` twice — once forked from the library (priming
        if needed) and once from cycle zero without the library — and
        compares :func:`roi_metrics` byte-for-byte via canonical JSON.
        Raises :class:`~repro.common.errors.SampleError` naming every
        differing field on mismatch; returns the comparison summary on
        success.
        """
        key, primed = self.ensure(config, program, args)
        forked = self.fork(key, config).resume_run()
        unshared_config = config.copy()
        unshared_config.sample.library = None
        from repro.sim.runner import create_simulator
        unshared = create_simulator(unshared_config).run(program, args)
        ours, theirs = roi_metrics(forked), roi_metrics(unshared)
        blob_f = json.dumps(ours, sort_keys=True, default=str)
        blob_u = json.dumps(theirs, sort_keys=True, default=str)
        if blob_f != blob_u:
            differing = sorted(
                field for field in {**ours, **theirs}
                if json.dumps(ours.get(field), sort_keys=True,
                              default=str)
                != json.dumps(theirs.get(field), sort_keys=True,
                              default=str))
            raise SampleError(
                "snapshot-library determinism violation: forked run "
                f"diverged from the unshared run in {differing} "
                f"(key {key!r}); the prefix-irrelevance contract of "
                "functional fast-forward is broken")
        return {"key": key, "primed": primed,
                "simulated_cycles": forked.simulated_cycles,
                "identical": True}


def run_with_library(config: SimulationConfig, program: Any,
                     args: tuple = (),
                     library: Optional[SnapshotLibrary] = None) -> Any:
    """Run one configuration, sharing its fast-forward via the library.

    The library path engages when the config names a library directory
    and requests a fast-forward; otherwise this is a plain
    :func:`repro.sim.runner.run_simulation`.  The returned result's
    ``sample["library"]`` records the entry key and whether this call
    primed it.
    """
    use_library = (config.sample.ff_until > 0
                   and bool(config.sample.library))
    if not use_library:
        from repro.sim.runner import run_simulation
        return run_simulation(config, program, args)
    lib = library or SnapshotLibrary(config.sample.library)
    key, primed = lib.ensure(config, program, args)
    simulator = lib.fork(key, config)
    result = simulator.resume_run()
    result.sample["library"] = {"key": key, "primed": primed,
                                "root": lib.root}
    return result


# -- fork-time re-dressing ----------------------------------------------------


def _reconfigure_fork(simulator: Any, config: SimulationConfig) -> None:
    """Swap a restored snapshot's timing models for ``config``'s.

    Only the prefix-irrelevant sections may differ between the primer
    and the variant, so this touches exactly the core models, the
    network models and the sampling/checkpoint policy; everything else
    (memory system, sync, host layout) is identical by construction of
    the library key.  Model rebuilds are gated on actual config
    inequality so a same-config fork keeps the snapshot's objects
    untouched.
    """
    simulator.config = config
    for tile, interpreter in simulator.interpreters.items():
        core = getattr(interpreter, "core", None)
        if core is None or not hasattr(core, "config"):
            continue  # mp coordinator stubs; workers re-dress on RESTORE
        target = config.core_config_for(int(tile))
        if core.config != target:
            _rebuild_core(simulator, interpreter, target)
    fabric = getattr(simulator, "fabric", None)
    if fabric is not None and fabric.config != config.network:
        _rebuild_fabric(fabric, config.network)
    controller = simulator.sample_controller
    if controller is not None:
        controller.config = config.sample
        controller.stop_after_ff = False
        # The primer ran fast-forward-only, so its switch-point hook
        # opened a measurement window (everything past ``ff_until`` is
        # DETAIL without intervals).  Re-evaluate under the variant's
        # geometry: an unshared run of the variant opens a window at
        # that same hook only if its phase there is measured (warmup
        # is not), and warmup-first period ordering guarantees the two
        # runs agree on every field when it is.
        if controller._open_window is not None:
            from repro.sample.intervals import phase_at
            phase = phase_at(config.sample, controller._horizon)
            if not phase.measured:
                controller._open_window = None
    # The variant's own checkpoint policy replaces the primer's
    # (which pointed into the library staging area).
    simulator._ckpt_store = None
    if config.ckpt.enabled:
        from repro.ckpt.store import CheckpointStore
        simulator._ckpt_store = CheckpointStore(config.ckpt.dir,
                                                keep=config.ckpt.keep)
        if config.ckpt.every > 0:
            simulator.scheduler.add_periodic_hook(simulator._ckpt_hook,
                                                  config.ckpt.every)


def _rebuild_core(simulator: Any, interpreter: Any, target: Any) -> None:
    """Replace one thread's core model, preserving functional progress.

    Fast-forward advances only the clock and the retired-instruction
    counter; predictors, store buffers and issue windows are untouched
    — i.e. exactly the pristine state a freshly built model has.  The
    thread's ``core`` stat subtree is rebuilt from scratch so the new
    model's counter set matches an unshared run of the variant (no
    stale zero-valued counters from the primer's model type), then the
    clock and instruction total carry over.
    """
    from repro.core.factory import create_core_model
    old = interpreter.core
    clock_now = old.clock.now
    retired = old.instruction_count
    thread_stats = simulator.stats.child(f"thread{int(interpreter.tile)}")
    thread_stats.children.pop("core", None)
    core = create_core_model(target, thread_stats.child("core"),
                             telemetry=None,
                             tile=int(interpreter.tile))
    core.clock.forward_to(clock_now)
    if retired:
        core._instructions.add(retired)
    interpreter.core = core


def _rebuild_fabric(fabric: Any, network_config: Any) -> None:
    """Replace the network models with ``network_config``'s.

    Nothing routed during fast-forward (functional sends bypass the
    models entirely), so the primer's model state and counters are all
    pristine; dropping the per-class stat subtrees and rebuilding
    matches an unshared variant run exactly.
    """
    from repro.network.model import create_network_model
    from repro.transport.message import MessageKind
    fabric.config = network_config
    model_names = {
        MessageKind.USER: network_config.user_model,
        MessageKind.MEMORY: network_config.memory_model,
        MessageKind.SYSTEM: network_config.system_model,
    }
    for kind in model_names:
        fabric.stats.children.pop(f"{kind.value}_net", None)
    fabric.models = {
        kind: create_network_model(name, fabric.num_tiles,
                                   network_config,
                                   fabric.stats.child(f"{kind.value}_net"))
        for kind, name in model_names.items()
    }
    for model in fabric.models.values():
        model.telemetry = fabric._tele
