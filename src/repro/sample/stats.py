"""Extrapolation statistics for interval sampling.

Measured detail windows yield per-window CPI samples; whole-run cycle
counts are extrapolated as ``total_instructions x mean CPI`` with a
Student-t confidence interval on the mean.  The t critical values are
a hardcoded two-sided table (the environment has no scipy); requested
confidence levels snap to the nearest tabulated level.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

#: Two-sided Student-t critical values by confidence level and degrees
#: of freedom.  Entries beyond the last key fall back to the normal
#: approximation (the ``inf`` row).
_T_TABLE: Dict[float, Dict[int, float]] = {
    0.90: {1: 6.314, 2: 2.920, 3: 2.353, 4: 2.132, 5: 2.015,
           6: 1.943, 7: 1.895, 8: 1.860, 9: 1.833, 10: 1.812,
           12: 1.782, 15: 1.753, 20: 1.725, 25: 1.708, 30: 1.697,
           40: 1.684, 60: 1.671, 120: 1.658},
    0.95: {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
           6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
           12: 2.179, 15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042,
           40: 2.021, 60: 2.000, 120: 1.980},
    0.99: {1: 63.657, 2: 9.925, 3: 5.841, 4: 4.604, 5: 4.032,
           6: 3.707, 7: 3.499, 8: 3.355, 9: 3.250, 10: 3.169,
           12: 3.055, 15: 2.947, 20: 2.845, 25: 2.787, 30: 2.750,
           40: 2.704, 60: 2.660, 120: 2.617},
}

#: Normal (df = infinity) critical values per confidence level.
_Z_VALUES: Dict[float, float] = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def t_critical(confidence: float, df: int) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom.

    ``confidence`` snaps to the nearest tabulated level (0.90, 0.95,
    0.99); ``df`` snaps down to the nearest tabulated row, which makes
    the interval conservative never optimistic.
    """
    if df < 1:
        raise ValueError("t_critical needs at least 1 degree of freedom")
    level = min(_T_TABLE, key=lambda lv: abs(lv - confidence))
    table = _T_TABLE[level]
    if df in table:
        return table[df]
    below = [d for d in table if d <= df]
    if not below:
        return table[min(table)]
    if df > max(table):
        return _Z_VALUES[level]
    return table[max(below)]


def confidence_interval(samples: Sequence[float],
                        confidence: float = 0.95
                        ) -> "tuple[float, float]":
    """``(mean, half_width)`` of the Student-t CI on the sample mean.

    With fewer than two samples the half-width is 0.0 — there is no
    variance estimate, and callers surface the window count alongside
    the interval so a degenerate CI is visible rather than misleading.
    """
    n = len(samples)
    if n == 0:
        return 0.0, 0.0
    mean = sum(samples) / n  # check: allow D004 -- sampling statistics
    if n < 2:
        return mean, 0.0
    variance = sum((s - mean) ** 2 for s in samples) / (n - 1)  # check: allow D004 -- sampling statistics
    stderr = math.sqrt(variance / n)  # check: allow D004 -- sampling statistics
    return mean, t_critical(confidence, n - 1) * stderr


def extrapolate(windows: List[dict], total_instructions: int,
                confidence: float = 0.95) -> Dict[str, object]:
    """Extrapolate whole-run cycles from measured detail windows.

    ``windows`` are the sample controller's window records (each with
    ``cycles``, ``instructions`` and ``instructions_before`` — the
    window's position in the retired-instruction stream); windows that
    measured no instructions carry no CPI information and are dropped.

    The estimator reconstructs the detailed timeline piecewise: the
    measured windows contribute their cycles directly, and every
    unmeasured *gap* of the instruction stream (the fast-forwarded and
    warmup stretches between windows, plus the leading and trailing
    stretches) is costed at the CPI of its *neighbouring* windows
    (pooled).  Using local CPI for each gap is what keeps the estimate
    honest on phase-heterogeneous workloads: a serial stretch is costed
    at serial CPI and a parallel stretch at parallel CPI, instead of
    one global mean that oversamples whichever phase the periodic
    window placement happened to favour.

    The confidence interval applies the pooled ratio-estimator
    standard error of the CPI to the unmeasured instruction count with
    a Student-t critical value — measured cycles are exact, only the
    reconstructed gaps are uncertain.
    """
    usable = sorted(
        (w for w in windows if w.get("instructions", 0) > 0
         and w.get("cycles", 0) > 0),
        key=lambda w: w.get("instructions_before", 0))
    n = len(usable)
    measured_cycles = sum(w["cycles"] for w in usable)
    measured_instructions = sum(w["instructions"] for w in usable)
    if n == 0 or measured_instructions == 0:
        return {
            "windows": 0,
            "confidence": confidence,
            "mean_cpi": 0.0,
            "cpi_half_width": 0.0,
            "measured_cycles": 0,
            "measured_instructions": 0,
            "cycles": 0,
            "cycles_low": 0,
            "cycles_high": 0,
        }
    mean_cpi = measured_cycles / measured_instructions  # check: allow D004 -- sampling statistics

    def neighbour_cpi(left: int, right: int) -> float:
        """Pooled CPI of the windows flanking one gap."""
        cycles = instructions = 0
        for index in (left, right):
            if 0 <= index < n:
                cycles += usable[index]["cycles"]
                instructions += usable[index]["instructions"]
        return cycles / instructions  # check: allow D004 -- sampling statistics

    # Gap sizes in instructions: before the first window, between
    # consecutive windows, and after the last one.
    reconstructed = float(measured_cycles)
    unmeasured = 0
    previous_end = 0
    for index, window in enumerate(usable):
        gap = window.get("instructions_before", 0) - previous_end
        if gap > 0:
            reconstructed += gap * neighbour_cpi(index - 1, index)  # check: allow D004 -- sampling statistics
            unmeasured += gap
        previous_end = (window.get("instructions_before", 0)
                        + window["instructions"])
    tail = total_instructions - previous_end
    if tail > 0:
        reconstructed += tail * neighbour_cpi(n - 1, n - 1)  # check: allow D004 -- sampling statistics
        unmeasured += tail

    # Ratio-estimator standard error of the pooled CPI, applied to the
    # unmeasured instructions only.
    half_width = 0.0
    if n >= 2:
        residual_sq = sum(
            (w["cycles"] - mean_cpi * w["instructions"]) ** 2  # check: allow D004 -- sampling statistics
            for w in usable)
        variance = (n * residual_sq
                    / ((n - 1) * measured_instructions ** 2))  # check: allow D004 -- sampling statistics
        half_width = t_critical(confidence, n - 1) * math.sqrt(variance)
    cycles = int(round(reconstructed))
    spread = int(round(half_width * unmeasured))
    return {
        "windows": n,
        "confidence": confidence,
        "mean_cpi": mean_cpi,
        "cpi_half_width": half_width,
        "measured_cycles": measured_cycles,
        "measured_instructions": measured_instructions,
        "cycles": cycles,
        "cycles_low": max(cycles - spread, measured_cycles),
        "cycles_high": cycles + spread,
    }
