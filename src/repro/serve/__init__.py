"""Simulation-as-a-service: a persistent daemon serving concurrent runs.

``repro serve`` turns the simulator from a per-run CLI into a
long-lived service (ROADMAP item 5): one scheduler daemon owns a
persistent worker fleet and multiplexes many simulations over it,
so concurrent experiments share warm processes instead of paying
cold-start per run.  Three properties the rest of the repo already
guarantees make the service's semantics strong:

* **Determinism** (equal config + workload + seed => byte-identical
  metrics) makes the content-addressed result cache *provably*
  correct: a repeat submission returns the stored result without
  simulating (:mod:`repro.serve.store`).
* **Deterministic checkpoints** (:mod:`repro.ckpt`) make preemption
  safe: a higher-priority job may checkpoint a running job and
  requeue it, and the resumed job still produces a byte-identical
  result (:mod:`repro.serve.worker`).
* **The telemetry bus** doubles as the service's ops stream: job and
  worker lifecycle events surface as ``serve.*`` telemetry.

See ``docs/serving.md`` for the daemon lifecycle, client protocol and
cache semantics.
"""

from repro.serve.client import ServeClient
from repro.serve.daemon import SimServer
from repro.serve.jobs import JOB_STATES, JobQueue, ServeJob
from repro.serve.store import ResultStore, canonical_result_bytes

__all__ = [
    "JOB_STATES",
    "JobQueue",
    "ResultStore",
    "ServeClient",
    "ServeJob",
    "SimServer",
    "canonical_result_bytes",
]
