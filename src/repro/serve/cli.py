"""CLI verbs for the simulation service.

``repro serve`` runs the daemon in the foreground (or, with
``--stop``, asks a running one to shut down); ``repro submit /
status / fetch / cancel`` are thin :class:`~repro.serve.client.
ServeClient` wrappers.  The daemon's socket lives in its spool
directory (``<dir>/serve.sock``), so every verb takes ``--dir``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from typing import Optional

from repro.common.config import (
    DIRECTORY_TYPES,
    NETWORK_MODELS,
    SYNC_MODELS,
    SimulationConfig,
)
from repro.common.errors import ServeError


def _add_spool_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dir", required=True, metavar="SPOOL",
                        help="service spool directory (holds the "
                             "socket, the result store and per-job "
                             "checkpoints)")


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    _add_spool_argument(parser)
    parser.add_argument("--fleet", type=int, default=2,
                        help="persistent workers (default 2)")
    parser.add_argument("--max-attempts", type=int, default=3,
                        metavar="N",
                        help="worker deaths tolerated per job before "
                             "it fails (default 3)")
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="socket path (default SPOOL/serve.sock; "
                             "mind the ~100-char AF_UNIX limit)")
    parser.add_argument("--listen", default=None, metavar="HOST:PORT",
                        help="also accept remote fleet workers "
                             "(repro worker --connect) on this TCP "
                             "address; with a shared spool filesystem "
                             "preempted jobs resume anywhere")
    from repro.cli import add_telemetry_arguments
    add_telemetry_arguments(
        parser, metrics_metavar="SECONDS",
        metrics_help="emit a fleet.sample metrics event every N "
                     "seconds onto the ops stream")
    parser.add_argument("--stop", action="store_true",
                        help="ask the daemon on SPOOL's socket to shut "
                             "down, instead of starting one")


def add_submit_arguments(parser: argparse.ArgumentParser) -> None:
    _add_spool_argument(parser)
    parser.add_argument("--workload", required=True)
    parser.add_argument("--tiles", type=int, default=32)
    parser.add_argument("--threads", type=int, default=0,
                        help="application threads (default: = tiles)")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--sync", choices=SYNC_MODELS, default="lax")
    parser.add_argument("--directory", choices=DIRECTORY_TYPES,
                        default="full_map")
    parser.add_argument("--network", choices=NETWORK_MODELS,
                        default="mesh")
    parser.add_argument("--quantum", type=int, default=0,
                        help="scheduler quantum in instructions")
    parser.add_argument("--priority", type=int, default=0,
                        help="higher runs earlier and may preempt "
                             "(default 0)")
    parser.add_argument("--wait", action="store_true",
                        help="block until the job reaches a terminal "
                             "state")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="--wait limit in seconds (default 300)")
    parser.add_argument("--json", action="store_true")


def add_status_arguments(parser: argparse.ArgumentParser) -> None:
    _add_spool_argument(parser)
    parser.add_argument("job_id", nargs="?", default=None,
                        help="job to show (default: every job, plus "
                             "daemon stats)")
    parser.add_argument("--json", action="store_true")


def add_fetch_arguments(parser: argparse.ArgumentParser) -> None:
    _add_spool_argument(parser)
    parser.add_argument("job_id")
    parser.add_argument("--json", action="store_true",
                        help="print the full canonical result dict "
                             "(default: a short metrics summary)")


def add_cancel_arguments(parser: argparse.ArgumentParser) -> None:
    _add_spool_argument(parser)
    parser.add_argument("job_id")


def add_top_arguments(parser: argparse.ArgumentParser) -> None:
    _add_spool_argument(parser)
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="socket path (default SPOOL/serve.sock)")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="refresh cadence (default 2.0)")
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit (scripting)")
    parser.add_argument("--prom", action="store_true",
                        help="print the raw Prometheus text exposition "
                             "instead of the console view (implies "
                             "--once)")


def _socket_path(args: argparse.Namespace) -> str:
    explicit = getattr(args, "socket", None)
    return explicit or os.path.join(args.dir, "serve.sock")


def _client(args: argparse.Namespace):
    from repro.serve.client import ServeClient
    return ServeClient(_socket_path(args))


def run_serve(args: argparse.Namespace) -> int:
    if args.stop:
        client = _client(args)
        try:
            client.shutdown()
        except ServeError as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 1
        print("serve: shutdown requested")
        return 0

    from repro.cli import telemetry_from_args
    from repro.serve.daemon import SimServer
    telemetry = telemetry_from_args(
        args, default_events=["serve", "obs", "metrics", "net"])
    try:
        server = SimServer(args.dir, fleet=args.fleet,
                           max_attempts=args.max_attempts,
                           socket_path=args.socket, telemetry=telemetry,
                           listen=args.listen)
        server.start()
    except ServeError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1
    print(f"serve: listening on {server.socket_path} "
          f"(fleet {server.fleet_size})", flush=True)
    if server.listen_address is not None:
        print(f"serve: accepting remote workers on "
              f"{server.listen_address}", flush=True)

    def _handle_signal(signum, frame):  # pragma: no cover - signals
        server.request_stop()

    signal.signal(signal.SIGTERM, _handle_signal)
    signal.signal(signal.SIGINT, _handle_signal)
    try:
        while not server.wait(timeout=0.5):
            pass
    finally:
        server.stop()
    print("serve: stopped", flush=True)
    return 0


def _submit_config(args: argparse.Namespace) -> SimulationConfig:
    config = SimulationConfig(num_tiles=args.tiles, seed=args.seed)
    config.sync.model = args.sync
    config.memory.directory_type = args.directory
    config.network.memory_model = args.network
    if args.quantum:
        config.host.quantum_instructions = args.quantum
    config.validate()
    return config


def _print_view(view: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(view, indent=2, sort_keys=True))
        return
    error = f"  error: {view['error']}" if view.get("error") else ""
    print(f"{view['job_id']}  {view['state']:<9} "
          f"prio={view['priority']} attempts={view['attempts']} "
          f"preemptions={view['preemptions']}{error}")


def run_submit(args: argparse.Namespace) -> int:
    client = _client(args)
    try:
        view = client.submit(config=_submit_config(args),
                             workload=args.workload,
                             nthreads=args.threads or args.tiles,
                             scale=args.scale,
                             priority=args.priority)
        if args.wait:
            view = client.wait(view["job_id"], timeout=args.timeout)
    except ServeError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    _print_view(view, args.json)
    return 0 if view["state"] != "failed" else 1


def run_status(args: argparse.Namespace) -> int:
    client = _client(args)
    try:
        if args.job_id:
            _print_view(client.status(args.job_id), args.json)
            return 0
        jobs = client.list_jobs()
        stats = client.stats()
    except ServeError as exc:
        print(f"status: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({"jobs": jobs, "stats": stats}, indent=2,
                         sort_keys=True))
        return 0
    for view in jobs:
        _print_view(view, False)
    print(f"fleet={stats['fleet']} submitted={stats['submitted']} "
          f"cache_hits={stats['cache_hits']} "
          f"preemptions={stats['preemptions']} "
          f"worker_deaths={stats['worker_deaths']}")
    return 0


def run_fetch(args: argparse.Namespace) -> int:
    client = _client(args)
    try:
        reply = client.fetch(args.job_id)
    except ServeError as exc:
        print(f"fetch: {exc}", file=sys.stderr)
        return 1
    result = reply["result"]
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    view = reply["job"]
    instructions = sum(result["thread_instructions"].values())
    print(f"{view['job_id']}  {view['state']}  key={view['key'][:16]}")
    print(f"simulated cycles:  {result['simulated_cycles']:,}")
    print(f"instructions:      {instructions:,}")
    return 0


def run_top(args: argparse.Namespace) -> int:
    if args.prom:
        try:
            print(_client(args).metrics()["text"], end="")
        except ServeError as exc:
            print(f"top: {exc}", file=sys.stderr)
            return 1
        return 0
    from repro.obs.top import run_top as obs_run_top
    try:
        return obs_run_top(_socket_path(args), interval=args.interval,
                           once=args.once)
    except ServeError as exc:
        print(f"top: {exc}", file=sys.stderr)
        return 1


def run_cancel(args: argparse.Namespace) -> int:
    client = _client(args)
    try:
        view = client.cancel(args.job_id)
    except ServeError as exc:
        print(f"cancel: {exc}", file=sys.stderr)
        return 1
    _print_view(view, False)
    return 0
