"""The thin serve client: one socket, versioned JSON frames.

``ServeClient`` wraps the request/reply protocol of
:mod:`repro.serve.protocol` for in-process use and for the ``repro
submit/status/fetch/cancel`` CLI verbs.  Every method is one frame up,
one frame down; an ``error`` reply raises :class:`ServeError` with the
daemon's message.
"""

from __future__ import annotations

import pickle
import socket
import time
from typing import Any, Dict, List, Optional

from repro.common.config import SimulationConfig
from repro.common.errors import ServeError
from repro.serve import protocol
from repro.serve.store import result_from_jsonable

#: Default per-request socket timeout (seconds).
_TIMEOUT = 30.0


class ServeClient:
    """Client handle on a running serve daemon's Unix socket."""

    def __init__(self, socket_path: str,
                 timeout: float = _TIMEOUT) -> None:
        self.socket_path = socket_path
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _exchange(self, frame: tuple) -> Dict[str, Any]:
        """Send one ``(verb, payload)`` frame tuple (the shape the
        wire-protocol lint extracts as this role's send sites)."""
        kind, payload = frame
        return self.request(kind, payload)

    def request(self, kind: str,
                payload: Optional[Dict[str, Any]] = None
                ) -> Dict[str, Any]:
        """One request/reply exchange; raises on ``error`` replies."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            try:
                sock.connect(self.socket_path)
            except OSError as exc:
                raise ServeError(
                    f"cannot reach serve daemon at {self.socket_path}: "
                    f"{exc}") from exc
            protocol.send_message(sock, kind, payload or {})
            reply_kind, reply = protocol.recv_message(sock)
        finally:
            sock.close()
        if reply_kind == "error":
            raise ServeError(reply.get("error", "serve request failed"))
        if reply_kind != "ok":
            raise ServeError(
                f"unexpected serve reply kind {reply_kind!r}")
        return reply

    # -- verbs --------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._exchange(("ping", {}))

    def alive(self) -> bool:
        """``True`` when a compatible daemon answers the socket."""
        try:
            return "protocol" in self.ping()
        except ServeError:
            return False

    def submit(self, config: Optional[SimulationConfig] = None,
               workload: Optional[str] = None,
               nthreads: int = 0, scale: float = 1.0,
               params: Optional[Dict[str, Any]] = None,
               program: Any = None, args: tuple = (),
               priority: int = 0) -> Dict[str, Any]:
        """Submit one job; returns the daemon's job view.

        Pass either ``workload`` (a registry name) or ``program`` (a
        module-level function or an existing program reference, pickled
        for the wire — closures and lambdas are rejected exactly as the
        sweep pool rejects them).
        """
        payload: Dict[str, Any] = {
            "config": (config.to_dict() if config is not None else {}),
            "args": list(args),
            "priority": int(priority),
        }
        if (workload is None) == (program is None):
            raise ServeError(
                "submit needs exactly one of workload or program")
        if workload is not None:
            payload.update(workload=workload, nthreads=int(nthreads),
                           scale=float(scale),
                           params=dict(params or {}))
        else:
            from repro.distrib.wire import make_program_ref
            ref = make_program_ref(program)
            payload["program_hex"] = pickle.dumps(ref).hex()
        return self._exchange(("submit", payload))["job"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._exchange(("status", {"job_id": job_id}))["job"]

    def fetch(self, job_id: str) -> Dict[str, Any]:
        """The stored result envelope's ``result`` dict for a job."""
        return self._exchange(("fetch", {"job_id": job_id}))

    def fetch_result(self, job_id: str):
        """The job's :class:`~repro.sim.results.SimulationResult`."""
        return result_from_jsonable(self.fetch(job_id)["result"])

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._exchange(("cancel", {"job_id": job_id}))["job"]

    def list_jobs(self) -> List[Dict[str, Any]]:
        return self._exchange(("list", {}))["jobs"]

    def stats(self) -> Dict[str, Any]:
        return self._exchange(("stats", {}))["stats"]

    def metrics(self) -> Dict[str, Any]:
        """Live fleet metrics: ``{"fields": {...}, "text": "..."}``.

        ``fields`` is the structured snapshot ``repro top`` renders;
        ``text`` is the same data in Prometheus exposition format.
        """
        return self._exchange(("metrics", {}))

    def shutdown(self) -> Dict[str, Any]:
        return self._exchange(("shutdown", {}))

    # -- conveniences -------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its view."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.status(job_id)
            if view["state"] in protocol.TERMINAL_STATES:
                return view
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"timed out after {timeout:.0f}s waiting for "
                    f"{job_id} (state {view['state']!r})")
            time.sleep(poll)

    def wait_up(self, timeout: float = 10.0,
                poll: float = 0.05) -> None:
        """Block until the daemon answers pings (startup race helper)."""
        deadline = time.monotonic() + timeout
        while not self.alive():
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"serve daemon at {self.socket_path} did not come "
                    f"up within {timeout:.0f}s")
            time.sleep(poll)
