"""The serve daemon: a persistent scheduler over one worker fleet.

``SimServer`` owns three things:

* a **worker fleet** — long-lived forked processes (:mod:`repro.serve.
  worker`), one job each, respawned on death with the dead worker's
  job requeued against its retry budget (the sweep pool's
  requeue-on-dead-child rule, made per-job);
* a **job queue** (:mod:`repro.serve.jobs`) — strict priority, FIFO
  within a class, with checkpoint preemption when a higher-priority
  job arrives and every worker is busy;
* a **content-addressed result store** (:mod:`repro.serve.store`) — a
  repeat submission whose key is already stored is answered as
  ``cached`` without simulating.

Two daemon threads run the service: the *pump* (scheduling, worker
supervision, result collection) and the *listener* (versioned JSON
frames from clients over a Unix socket, :mod:`repro.serve.protocol`).
All shared state is guarded by one lock; both threads hold it only for
bookkeeping, never across a simulation.

Job and worker lifecycle events surface on the telemetry bus as
``serve.*`` events — the service's ops stream (``--trace-out``).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import socket
import threading
import time
import traceback
from typing import Any, Dict, List, Optional

from repro.common.config import (
    CheckConfig,
    CkptConfig,
    DistribConfig,
    ProfileConfig,
    SimulationConfig,
    TelemetryConfig,
)
from repro.common.errors import ServeError
from repro.serve import protocol
from repro.serve.jobs import (
    CACHED,
    DONE,
    FAILED,
    PREEMPTED,
    QUEUED,
    RUNNING,
    JobQueue,
    ServeJob,
)
from repro.obs.spans import SpanEmitter, mint_trace_id
from repro.serve.protocol import ServerInfo, SubmitSpec, view_payload
from repro.serve.store import ResultStore, job_key
from repro.telemetry.events import EventCategory

#: Seconds the pump sleeps between supervision passes.
_DEFAULT_POLL = 0.02
#: Listener accept timeout (also the stop-flag check cadence).
_ACCEPT_TICK = 0.1
#: Seconds allowed for orderly worker shutdown before termination.
_SHUTDOWN_GRACE = 2.0


class _FleetWorker:
    """One fleet slot: the child process and its channels."""

    #: Forked children are respawned in place when they die.
    respawnable = True

    def __init__(self, index: int, ctx) -> None:
        self.index = index
        self._ctx = ctx
        self.proc = None
        self.task_send = None
        self.result_recv = None
        self.preempt_flag = None
        #: The job currently on this worker (``None`` = idle).
        self.job: Optional[ServeJob] = None
        #: A preempt signal is in flight for the current job.
        self.preempt_pending = False

    def spawn(self) -> None:
        from repro.serve.worker import worker_main
        task_recv, task_send = self._ctx.Pipe(duplex=False)
        result_recv, result_send = self._ctx.Pipe(duplex=False)
        flag = self._ctx.Event()
        proc = self._ctx.Process(
            target=worker_main, args=(task_recv, result_send, flag),
            name=f"repro-serve-{self.index}", daemon=True)
        proc.start()
        task_recv.close()
        result_send.close()
        self.proc = proc
        self.task_send = task_send
        self.result_recv = result_recv
        self.preempt_flag = flag
        self.job = None
        self.preempt_pending = False

    @property
    def idle(self) -> bool:
        return self.job is None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()

    def shutdown(self) -> None:
        try:
            if self.alive():
                self.task_send.send(None)
        except (OSError, ValueError):
            pass
        if self.proc is not None:
            self.proc.join(timeout=_SHUTDOWN_GRACE)
            if self.proc.is_alive():
                self.proc.terminate()
                self.proc.join(timeout=1.0)
        for conn in (self.task_send, self.result_recv):
            try:
                if conn is not None:
                    conn.close()
            except OSError:
                pass


class SimServer:
    """The persistent simulation service (daemon side)."""

    def __init__(self, root: str, fleet: int = 2,
                 max_attempts: int = 3,
                 socket_path: Optional[str] = None,
                 telemetry: Optional[TelemetryConfig] = None,
                 poll_interval: float = _DEFAULT_POLL,
                 listen: Optional[str] = None) -> None:
        if fleet < 1 and listen is None:
            raise ServeError("serve: fleet must have at least 1 worker "
                             "(or --listen for remote ones)")
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.socket_path = socket_path or os.path.join(self.root,
                                                       "serve.sock")
        self.fleet_size = fleet
        self.max_attempts = max(1, int(max_attempts))
        self.poll_interval = poll_interval
        self.store = ResultStore(os.path.join(self.root, "results"))

        self.queue = JobQueue()
        #: job_id -> ServeJob, in submission order.
        self.jobs: Dict[str, ServeJob] = {}
        self.workers: List[_FleetWorker] = []
        self._job_ids = itertools.count(1)
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._listener: Optional[socket.socket] = None
        self._started = False
        #: ``host:port`` for remote ``repro worker --connect`` dial-ins
        #: (``None`` = local fleet only).
        self.listen = listen
        self._net_listener = None
        self._next_remote_index = 1000

        # Ops counters (the ``stats`` verb).
        self.submitted = 0
        self.cache_hits = 0
        self.preemptions = 0
        self.worker_deaths = 0

        # Fleet-metrics accounting (the ``metrics`` verb): wall-clock
        # bookkeeping for queue wait and worker utilization.  These
        # are host-side ops timers (like :mod:`repro.profile`), never
        # simulated time, so they cannot perturb results.
        self._started_at = time.monotonic()
        #: job_id -> the moment the job (re-)entered the queue.
        self._enqueued_at: Dict[str, float] = {}
        #: worker index -> the moment its current job was assigned.
        self._assigned_at: Dict[int, float] = {}
        #: priority -> {"total": seconds, "count": assignments}.
        self._wait_totals: Dict[int, Dict[str, float]] = {}
        #: worker index -> cumulative busy seconds / jobs run.
        self._worker_busy: Dict[int, float] = {}
        self._worker_jobs: Dict[int, int] = {}

        # Ops stream: serve.* lifecycle events on the telemetry bus.
        from repro.telemetry.bus import create_bus
        self.bus = create_bus(telemetry) if telemetry is not None \
            else None

        # Crash flight recorder: rides the bus as a pure observer, so
        # it sees every ops event (even masked-out categories) without
        # changing what the sinks record.  Must attach before any
        # channel is resolved — ``channel()`` honours the observer
        # mask.
        self.flight = None
        self._flight_dir = ""
        if telemetry is not None and telemetry.flight_dir:
            from repro.obs.flight import FlightRecorder
            from repro.telemetry.bus import TelemetryBus
            from repro.telemetry.events import ALL_CATEGORIES
            if self.bus is None:
                self.bus = TelemetryBus(0)
            self.flight = FlightRecorder(telemetry.flight_events)
            self.bus.observe(self.flight.on_event, ALL_CATEGORIES)
            self._flight_dir = telemetry.flight_dir

        self._channel = (self.bus.channel(EventCategory.SERVE)
                         if self.bus is not None else None)
        #: Span stream (:mod:`repro.obs.spans`): job lifecycle trees.
        self._obs_channel = (self.bus.channel(EventCategory.OBS)
                             if self.bus is not None else None)
        #: job_id -> {"emitter", "job", "queue", "run"} span state.
        self._traces: Dict[str, Dict[str, Any]] = {}
        #: Cadence (seconds) for METRICS fleet.sample events, 0 = off.
        self._metrics_every = (telemetry.metrics_interval
                               if telemetry is not None else 0)
        self._metrics_channel = (
            self.bus.channel(EventCategory.METRICS)
            if self.bus is not None and self._metrics_every > 0
            else None)
        self._last_sample = self._started_at

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SimServer":
        """Bind the socket, fork the fleet, start the service threads.

        The socket is claimed *first* so a second daemon on the same
        spool fails before forking anything.
        """
        if self._started:
            raise ServeError("serve: server already started")
        self._started = True
        if os.path.exists(self.socket_path):
            self._clear_stale_socket()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(16)
        listener.settimeout(_ACCEPT_TICK)
        self._listener = listener
        if self.listen is not None:
            from repro.distrib.wire import WIRE_VERSION
            from repro.net.listener import NetListener
            self._net_listener = NetListener(self.listen, role="serve",
                                             wire_version=WIRE_VERSION)
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            ctx = multiprocessing.get_context("spawn")
        for index in range(self.fleet_size):
            worker = _FleetWorker(index, ctx)
            worker.spawn()
            self.workers.append(worker)
            self._emit("worker.spawned", {"worker": index,
                                          "pid": worker.proc.pid})
        for name, target in [["serve-pump", self._pump_loop],
                             ["serve-listen", self._listen_loop]]:
            thread = threading.Thread(target=target, name=name,
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        self._emit("server.started", {"fleet": self.fleet_size,
                                      "socket": self.socket_path})
        return self

    def _clear_stale_socket(self) -> None:
        """Probe a leftover socket file; unlink only if nobody answers.

        A daemon that died uncleanly leaves its socket behind — bind
        would fail with EADDRINUSE even though nothing is listening.
        Connecting distinguishes the two cases: a refused connection
        means the socket is stale (safe to unlink), an accepted one
        means a live daemon already serves this spool (fail loudly
        instead of hijacking it).
        """
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            probe.connect(self.socket_path)
        except (ConnectionRefusedError, socket.timeout):
            pass  # nobody home: stale
        except FileNotFoundError:
            return  # already gone
        except OSError as exc:
            raise ServeError(
                f"serve: cannot probe socket {self.socket_path}: "
                f"{exc}") from exc
        else:
            raise ServeError(
                f"serve: a daemon is already listening on "
                f"{self.socket_path}")
        finally:
            probe.close()
        try:
            os.unlink(self.socket_path)
        except FileNotFoundError:  # pragma: no cover - racing daemons
            pass

    @property
    def listen_address(self) -> Optional[str]:
        """The bound TCP address remote workers should dial, if any."""
        if self._net_listener is None:
            return None
        return self._net_listener.address

    def request_stop(self) -> None:
        """Ask the service to wind down (returns immediately)."""
        self._stop.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a stop is requested; ``True`` if it was."""
        return self._stop.wait(timeout)

    def stop(self) -> None:
        """Stop threads, retire the fleet, close the socket and bus.

        Graceful but immediate: queued jobs stay queued (and are
        reported as such by a later daemon over the same spool's
        store), running jobs are terminated with their workers.
        """
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        for worker in self.workers:
            worker.shutdown()
        self.workers = []
        if self._listener is not None:
            try:
                self._listener.close()
            finally:
                self._listener = None
        if self._net_listener is not None:
            try:
                self._net_listener.close()
            finally:
                self._net_listener = None
        if os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:  # pragma: no cover - racing daemons
                pass
        self._emit("server.stopped", {})
        if self.bus is not None:
            self.bus.close()

    # -- telemetry ----------------------------------------------------------

    def _emit(self, name: str, args: Dict[str, Any]) -> None:
        if self._channel is not None:
            self._channel.emit(name, None, 0, args)

    def _emit_job(self, name: str, job: ServeJob,
                  extra: Optional[Dict[str, Any]] = None) -> None:
        args = {"job": job.job_id, "state": job.state,
                "priority": job.priority, "key": job.key}
        if job.trace_id:
            args["trace"] = job.trace_id
        if extra:
            args.update(extra)
        self._emit(name, args)

    # -- distributed tracing (repro.obs spans) ------------------------------

    def _trace_open(self, job: ServeJob) -> None:
        """Mint the job's trace and open its root lifecycle span."""
        emitter = SpanEmitter(self._obs_channel, job.trace_id)
        root = emitter.begin("job", job=job.job_id, key=job.key,
                             priority=job.priority)
        self._traces[job.job_id] = {"emitter": emitter, "job": root,
                                    "queue": "", "run": ""}

    def _trace_begin(self, job: ServeJob, op: str, **args: Any) -> str:
        """Open a child span (``queue``/``run``) under the job root."""
        state = self._traces.get(job.job_id)
        if state is None:
            return ""
        state[op] = state["emitter"].begin(op, parent=state["job"],
                                           job=job.job_id, **args)
        return state[op]

    def _trace_end(self, job: ServeJob, op: str, **args: Any) -> None:
        """Close the job's open ``op`` span, if any."""
        state = self._traces.get(job.job_id)
        if state is None or not state.get(op):
            return
        state["emitter"].end(state[op], op, **args)
        state[op] = ""

    def _trace_note(self, job: ServeJob, name: str,
                    **args: Any) -> None:
        """Attach an instant note to the job's root span."""
        state = self._traces.get(job.job_id)
        if state is not None:
            state["emitter"].note(state["job"], name, **args)

    def _trace_close(self, job: ServeJob, outcome: str) -> None:
        """Terminal state: close every open span and the root."""
        state = self._traces.pop(job.job_id, None)
        if state is None:
            return
        for op in ["run", "queue"]:
            if state.get(op):
                state["emitter"].end(state[op], op, outcome=outcome)
        state["emitter"].end(state["job"], "job", outcome=outcome)

    # -- submission (shared by socket handler and embedded use) -------------

    def submit(self, config: SimulationConfig, program: Any,
               args: tuple = (), priority: int = 0) -> ServeJob:
        """Admit one job; returns its (possibly already-cached) record."""
        key = job_key(config, program, args)
        with self._lock:
            job_id = f"job-{next(self._job_ids):06d}"
            job = ServeJob(job_id=job_id, key=key,
                           config=self._job_config(config, job_id),
                           program=program, args=tuple(args),
                           priority=int(priority),
                           seqno=self.queue.next_seqno(),
                           max_attempts=self.max_attempts)
            job.trace_id = mint_trace_id(job_id, key)
            self.jobs[job_id] = job
            self.submitted += 1
            self._trace_open(job)
            if key in self.store:
                job.state = CACHED
                self.cache_hits += 1
                self._emit_job("job.cached", job)
                self._trace_close(job, "cached")
            else:
                self.queue.push(job)
                self._enqueued_at[job_id] = time.monotonic()
                self._emit_job("job.submitted", job)
                self._trace_begin(job, "queue")
            return job

    def _job_config(self, config: SimulationConfig,
                    job_id: str) -> SimulationConfig:
        """The config a worker actually runs: semantics untouched,
        observational sections replaced by the service's own.

        Client-side observability settings are not honoured inside
        workers (they cannot change results — that is the cache
        premise — and a worker must not open the client's trace
        files); checkpointing is pointed at the job's private spool
        directory so preemption has somewhere to snapshot.
        """
        run = config.copy()
        run.distrib = DistribConfig()
        run.telemetry = TelemetryConfig()
        run.check = CheckConfig()
        run.profile = ProfileConfig()
        run.ckpt = CkptConfig(
            dir=os.path.join(self.root, "jobs", job_id, "ckpt"))
        run.validate()
        return run

    # -- the pump: scheduling, supervision, results -------------------------

    def _pump_loop(self) -> None:  # pragma: no cover - thread driver
        while not self._stop.is_set():
            try:
                self.pump_once()
            except Exception:
                # A pump crash would silently freeze the service;
                # surface it on stderr and keep serving.
                traceback.print_exc()
            self._stop.wait(self.poll_interval)

    def pump_once(self) -> None:
        """One supervision pass (public for deterministic tests)."""
        with self._lock:
            self._accept_remote_workers()
            self._drain_results()
            self._reap_dead_workers()
            self._assign_idle_workers()
            self._consider_preemption()
            self._sample_metrics()

    def _release_worker(self, worker: Any) -> None:
        """Utilization bookkeeping when a worker gives up its job."""
        started = self._assigned_at.pop(worker.index, None)
        if started is None:
            return
        index = worker.index
        self._worker_busy[index] = (self._worker_busy.get(index, 0.0)
                                    + time.monotonic() - started)
        self._worker_jobs[index] = self._worker_jobs.get(index, 0) + 1

    def _accept_remote_workers(self) -> None:
        """Admit ``repro worker --connect`` dial-ins as fleet slots."""
        if self._net_listener is None:
            return
        from repro.net.handshake import HandshakeError
        from repro.serve.remote import RemoteFleetWorker
        while True:
            try:
                accepted = self._net_listener.accept(0.0)
            except HandshakeError as exc:
                self._emit("worker.rejected", {"error": str(exc)})
                continue
            if accepted is None:
                return
            channel, hello = accepted
            index = self._next_remote_index
            self._next_remote_index += 1
            worker = RemoteFleetWorker(index, channel, hello)
            self.workers.append(worker)
            self._emit("worker.joined", {"worker": index,
                                         "peer": channel.describe(),
                                         "host": hello.host,
                                         "pid": hello.pid})

    def _drain_results(self) -> None:
        for worker in self.workers:
            if worker.job is None:
                continue
            try:
                if not worker.result_recv.poll():
                    continue
                job_id, status, payload = worker.result_recv.recv()
            except (EOFError, OSError):
                continue  # death handled by _reap_dead_workers
            job = self.jobs.get(job_id, worker.job)
            worker.job = None
            worker.preempt_pending = False
            self._release_worker(worker)
            if status == "ok":
                self._finish_ok(job, payload)
            elif status == "preempted":
                self._finish_preempted(job, payload)
            else:
                job.state = FAILED
                job.error = str(payload)
                self._emit_job("job.failed", job)
                self._trace_close(job, "failed")

    def _finish_ok(self, job: ServeJob, result: Any) -> None:
        try:
            self.store.put(job.key, result)
        except ServeError as exc:
            job.state = FAILED
            job.error = str(exc)
            self._emit_job("job.failed", job)
            self._trace_close(job, "failed")
            return
        job.state = DONE
        job.error = None
        job.resume_dir = None
        self._emit_job("job.done", job)
        self._trace_end(job, "run", outcome="done")
        self._trace_close(job, "done")

    def _finish_preempted(self, job: ServeJob, ckpt_dir: str) -> None:
        job.preemptions += 1
        self.preemptions += 1
        if job.cancel_requested:
            job.state = FAILED
            job.error = "cancelled by client"
            self._emit_job("job.failed", job, {"cancelled": True})
            self._trace_close(job, "cancelled")
            return
        job.state = PREEMPTED
        job.resume_dir = ckpt_dir
        self.queue.requeue(job)
        self._enqueued_at[job.job_id] = time.monotonic()
        self._emit_job("job.preempted", job, {"ckpt": ckpt_dir})
        self._trace_end(job, "run", outcome="preempted", ckpt=ckpt_dir)
        self._trace_begin(job, "queue", resumed=True)

    def _reap_dead_workers(self) -> None:
        removed: List[Any] = []
        for worker in self.workers:
            if worker.alive():
                continue
            job = worker.job
            self.worker_deaths += 1
            self._release_worker(worker)
            self._emit("worker.died", {
                "worker": worker.index,
                "job": job.job_id if job else None})
            if self.flight is not None:
                self.flight.dump(
                    self._flight_dir, "worker.died",
                    detail=f"worker {worker.index} died"
                           + (f" running {job.job_id}" if job else ""),
                    extra={"worker": worker.index,
                           "job": job.job_id if job else None,
                           "trace": job.trace_id if job else ""})
            if worker.respawnable:
                worker.spawn()
                self._emit("worker.spawned", {"worker": worker.index,
                                              "pid": worker.proc.pid})
            else:
                # A remote host cannot be respawned from here: the
                # slot leaves the fleet, its job does not.
                removed.append(worker)
                self._emit("worker.left", {"worker": worker.index})
            if job is None:
                continue
            job.deaths += 1
            self._trace_end(job, "run", outcome="died",
                            worker=worker.index)
            self._trace_note(job, "worker.died", worker=worker.index)
            if job.cancel_requested:
                job.state = FAILED
                job.error = "cancelled by client"
                self._emit_job("job.failed", job, {"cancelled": True})
                self._trace_close(job, "cancelled")
            elif job.deaths >= job.max_attempts:
                job.state = FAILED
                job.error = (f"worker died {job.deaths} time(s); "
                             f"retry budget ({job.max_attempts}) "
                             f"exhausted")
                self._emit_job("job.failed", job)
                self._trace_close(job, "failed")
            else:
                # The pool's requeue-on-dead-child rule, per job: the
                # job resumes from its last checkpoint if it has one,
                # from scratch otherwise.
                job.state = QUEUED
                self.queue.requeue(job)
                self._enqueued_at[job.job_id] = time.monotonic()
                self._emit_job("job.requeued", job,
                               {"deaths": job.deaths})
                self._trace_begin(job, "queue", requeued=True)
        for worker in removed:
            self.workers.remove(worker)
            worker.shutdown()

    def _assign_idle_workers(self) -> None:
        for worker in self.workers:
            if not worker.idle or not worker.alive():
                continue
            job = self.queue.pop()
            if job is None:
                return
            job.state = RUNNING
            job.attempts += 1
            worker.job = job
            worker.preempt_pending = False
            now = time.monotonic()
            queued_at = self._enqueued_at.pop(job.job_id, None)
            wait = now - queued_at if queued_at is not None else 0.0
            bucket = self._wait_totals.setdefault(
                job.priority, {"total": 0.0, "count": 0})
            bucket["total"] += wait
            bucket["count"] += 1
            self._assigned_at[worker.index] = now
            self._trace_end(job, "queue", wait_seconds=round(wait, 6))
            run_span = self._trace_begin(
                job, "run", worker=worker.index,
                resumed=job.resume_dir is not None)
            # Span context travels inside the job's config: the worker
            # (forked or TCP-remote) sees the same trace id, and any
            # simulator it builds parents its run span under ours.
            job.config.telemetry.trace_id = job.trace_id
            job.config.telemetry.span_parent = run_span
            try:
                worker.task_send.send(
                    (job.job_id, job.config, job.program, job.args,
                     job.resume_dir))
            except (OSError, ValueError):
                # Worker died between the alive() check and the send;
                # the next reap pass respawns it and requeues the job.
                continue
            self._emit_job("job.started", job,
                           {"worker": worker.index,
                            "resumed": job.resume_dir is not None})

    def _consider_preemption(self) -> None:
        top = self.queue.peek()
        if top is None:
            return
        victims = [
            worker for worker in self.workers
            if worker.job is not None and not worker.preempt_pending
            and worker.job.priority < top.priority]
        if not victims:
            return
        victim = min(victims,
                     key=lambda w: (w.job.priority, -w.job.seqno))
        victim.preempt_pending = True
        victim.preempt_flag.set()
        self._emit_job("job.preempt", victim.job,
                       {"for": top.job_id, "worker": victim.index})
        self._trace_note(victim.job, "preempt.request",
                         preempted_for=top.job_id,
                         worker=victim.index)

    def _sample_metrics(self) -> None:
        """Cadenced METRICS snapshot of the fleet (``fleet.sample``)."""
        if self._metrics_channel is None:
            return
        now = time.monotonic()
        if now - self._last_sample < self._metrics_every:
            return
        self._last_sample = now
        busy = sum(1 for worker in self.workers
                   if worker.job is not None)
        self._metrics_channel.emit("fleet.sample", None, 0, {
            "queue_depth": len(self.queue),
            "busy": busy,
            "idle": len(self.workers) - busy,
            "submitted": self.submitted,
            "cache_hits": self.cache_hits,
            "preemptions": self.preemptions,
            "worker_deaths": self.worker_deaths})

    def metrics_fields(self) -> Dict[str, Any]:
        """The live fleet-metrics snapshot (the ``metrics`` verb).

        The same structured fields back the Prometheus text rendering
        (:func:`repro.obs.prom.render_fleet_metrics`) and the ``repro
        top`` dashboard.
        """
        with self._lock:
            states: Dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            busy = sum(1 for worker in self.workers
                       if worker.job is not None)
            now = time.monotonic()
            worker_busy = dict(self._worker_busy)
            for worker in self.workers:
                started = self._assigned_at.get(worker.index)
                if started is not None:
                    worker_busy[worker.index] = (
                        worker_busy.get(worker.index, 0.0)
                        + now - started)
            return {
                "uptime_seconds": now - self._started_at,
                "queue_depth": len(self.queue),
                "jobs": states,
                "submitted": self.submitted,
                "cache_hits": self.cache_hits,
                "preemptions": self.preemptions,
                "worker_deaths": self.worker_deaths,
                "workers": {"busy": busy,
                            "idle": len(self.workers) - busy},
                "wait_seconds": {priority: dict(bucket)
                                 for priority, bucket
                                 in self._wait_totals.items()},
                "worker_busy_seconds": worker_busy,
                "worker_jobs": dict(self._worker_jobs),
            }

    # -- client verbs (socket handler) --------------------------------------

    def _listen_loop(self) -> None:  # pragma: no cover - thread driver
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                self._serve_connection(conn)
            except Exception:
                traceback.print_exc()
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    @staticmethod
    def _reply(conn: socket.socket, frame: tuple) -> None:
        """Send one ``(kind, payload)`` reply frame tuple (the shape
        the wire-protocol lint extracts as this role's send sites)."""
        protocol.send_message(conn, frame[0], frame[1])

    def _serve_connection(self, conn: socket.socket) -> None:
        """Handle request frames until the client closes."""
        conn.settimeout(30.0)
        while True:
            try:
                message = protocol.try_recv_message(conn)
            except ServeError as exc:
                self._reply(conn, ("error", {"error": str(exc)}))
                return
            if message is None:
                return
            kind, payload = message
            try:
                reply = self.handle_request(kind, payload)
            except ServeError as exc:
                self._reply(conn, ("error", {"error": str(exc)}))
                continue
            self._reply(conn, ("ok", reply))
            if kind == "shutdown":
                return

    def handle_request(self, kind: str,
                       payload: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one client verb; returns the ``ok`` payload."""
        if kind == "ping":
            return {"protocol": protocol.WIRE_VERSION,
                    "fleet": self.fleet_size}
        if kind == "submit":
            return self._handle_submit(payload)
        if kind == "status":
            return {"job": view_payload(self._job(payload).view())}
        if kind == "fetch":
            return self._handle_fetch(payload)
        if kind == "cancel":
            return self._handle_cancel(payload)
        if kind == "list":
            with self._lock:
                return {"jobs": [view_payload(job.view())
                                 for job in self.jobs.values()]}
        if kind == "stats":
            return {"stats": view_payload(self._stats())}
        if kind == "metrics":
            from repro.obs.prom import render_fleet_metrics
            fields = self.metrics_fields()
            return {"fields": fields,
                    "text": render_fleet_metrics(fields)}
        if kind == "shutdown":
            self.request_stop()
            return {"stopping": True}
        raise ServeError(f"unknown serve request kind {kind!r}")

    def _job(self, payload: Dict[str, Any]) -> ServeJob:
        job_id = payload.get("job_id")
        with self._lock:
            job = self.jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job {job_id!r}")
        return job

    def _handle_submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        try:
            spec = SubmitSpec(**payload)
        except TypeError as exc:
            raise ServeError(f"malformed submit payload: {exc}") from exc
        from repro.common.errors import ConfigError
        try:
            config = SimulationConfig.from_dict(spec.config)
        except (ConfigError, TypeError, ValueError) as exc:
            raise ServeError(f"bad job config: {exc}") from exc
        program = self._resolve_program(spec, config)
        job = self.submit(config, program, tuple(spec.args),
                          priority=spec.priority)
        return {"job": view_payload(job.view())}

    def _resolve_program(self, spec: SubmitSpec,
                         config: SimulationConfig) -> Any:
        from repro.distrib.wire import WorkloadRef
        if (spec.workload is None) == (spec.program_hex is None):
            raise ServeError("submit needs exactly one of workload or "
                             "program_hex")
        if spec.workload is not None:
            from repro.workloads import WORKLOADS
            if spec.workload not in WORKLOADS:
                raise ServeError(
                    f"unknown workload {spec.workload!r}")
            nthreads = spec.nthreads or config.num_tiles
            return WorkloadRef(spec.workload, nthreads, spec.scale,
                               dict(spec.params))
        import pickle
        try:
            ref = pickle.loads(bytes.fromhex(spec.program_hex))
        except Exception as exc:
            raise ServeError(f"bad program_hex: {exc}") from exc
        if not hasattr(ref, "resolve"):
            raise ServeError(
                "program_hex must decode to a program reference "
                "(WorkloadRef or PickledProgram)")
        return ref

    def _handle_fetch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        job = self._job(payload)
        if job.state not in (DONE, CACHED):
            raise ServeError(
                f"job {job.job_id} is {job.state}, not fetchable"
                + (f": {job.error}" if job.error else ""))
        envelope = self.store.get(job.key)
        if envelope is None:  # pragma: no cover - store vanished
            raise ServeError(f"result for {job.job_id} missing from "
                             f"the store")
        return {"job": view_payload(job.view()),
                "result": envelope["result"]}

    def _handle_cancel(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        job = self._job(payload)
        with self._lock:
            if job.finished:
                raise ServeError(
                    f"job {job.job_id} already {job.state}")
            if job.state in (QUEUED, PREEMPTED):
                self.queue.remove(job.job_id)
                job.state = FAILED
                job.error = "cancelled by client"
                self._emit_job("job.failed", job, {"cancelled": True})
                self._trace_close(job, "cancelled")
            else:  # running: cancellation rides the preemption path
                job.cancel_requested = True
                for worker in self.workers:
                    if worker.job is job and not worker.preempt_pending:
                        worker.preempt_pending = True
                        worker.preempt_flag.set()
            return {"job": view_payload(job.view())}

    def _stats(self) -> ServerInfo:
        with self._lock:
            states: Dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return ServerInfo(
                protocol=protocol.WIRE_VERSION, fleet=self.fleet_size,
                states=states, submitted=self.submitted,
                cache_hits=self.cache_hits,
                preemptions=self.preemptions,
                worker_deaths=self.worker_deaths)
