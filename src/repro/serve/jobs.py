"""Jobs and the priority queue the serve daemon schedules from.

This is :func:`repro.distrib.pool.run_jobs`'s job model generalized
for a long-lived service: instead of one closed batch fanned over
throwaway children, jobs arrive continuously, carry a *priority* and a
*retry budget*, and can re-enter the queue — either because their
worker died (the pool's requeue-on-dead-child machinery, made
per-job) or because a higher-priority job checkpointed them off their
worker (preemption).

Ordering: strict priority first (higher number runs earlier), FIFO
within a priority class.  FIFO position is the submission sequence
number, which a job keeps across requeues — a preempted or
crash-requeued job resumes *ahead* of anything submitted after it at
the same priority.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.common.config import SimulationConfig
from repro.serve.protocol import JOB_STATES, TERMINAL_STATES, JobView

#: Job states re-exported for daemon/tests convenience.
QUEUED, RUNNING, PREEMPTED, DONE, FAILED, CACHED = JOB_STATES


@dataclass
class ServeJob:
    """One submitted simulation and its full service-side lifecycle."""

    job_id: str
    #: Content address of the result: hash of (semantic config,
    #: program, args) — see :func:`repro.serve.store.job_key`.
    key: str
    config: SimulationConfig
    #: Shippable program reference (``WorkloadRef``/``PickledProgram``).
    program: Any
    args: tuple = ()
    priority: int = 0
    #: Submission order; also the FIFO tiebreak within a priority.
    seqno: int = 0
    state: str = QUEUED
    #: Worker starts consumed (every scheduling assignment, including
    #: resumes after preemption — informational).
    attempts: int = 0
    #: Workers that died under this job.  The retry budget charges
    #: deaths, not assignments, so preemption never eats the budget.
    deaths: int = 0
    #: Worker deaths tolerated before the job fails for good.
    max_attempts: int = 3
    #: Times this job was checkpointed off its worker.
    preemptions: int = 0
    #: Checkpoint directory to resume from (set while ``preempted``).
    resume_dir: Optional[str] = None
    #: Distributed-trace id minted at submit (:mod:`repro.obs.spans`);
    #: propagated into the worker's config so every process touching
    #: this job stamps the same id.
    trace_id: str = ""
    error: Optional[str] = None
    #: Client asked for cancellation while the job was running; the
    #: in-flight preemption doubles as the cancellation path.
    cancel_requested: bool = False

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def view(self) -> JobView:
        """The client-visible projection of this job."""
        return JobView(job_id=self.job_id, state=self.state,
                       priority=self.priority, attempts=self.attempts,
                       deaths=self.deaths,
                       preemptions=self.preemptions, key=self.key,
                       trace_id=self.trace_id, error=self.error)


class JobQueue:
    """Priority queue with FIFO fairness inside each priority class.

    ``push`` admits new submissions (assigning their FIFO seqno) and
    ``requeue`` re-admits preempted/crash-recovered jobs with their
    original seqno intact.  Entries removed by :meth:`remove` are
    dropped lazily at pop time.
    """

    def __init__(self) -> None:
        #: (-priority, seqno, tick) -> min-heap gives highest priority
        #: first, then oldest submission; tick breaks the (impossible
        #: in normal flow) tie of equal seqnos deterministically.
        self._heap: List[Tuple[int, int, int, ServeJob]] = []
        self._seq = itertools.count()
        self._tick = itertools.count()
        self._removed: dict = {}  # job_id -> True (ordered set)

    def __len__(self) -> int:
        return sum(1 for _, _, _, job in self._heap
                   if job.job_id not in self._removed)

    def next_seqno(self) -> int:
        """Allocate the FIFO position for a fresh submission."""
        return next(self._seq)

    def push(self, job: ServeJob) -> None:
        """Admit a job (new or re-entering); keeps its ``seqno``."""
        self._removed.pop(job.job_id, None)
        heapq.heappush(self._heap, (-job.priority, job.seqno,
                                    next(self._tick), job))

    #: ``requeue`` is ``push`` with intent spelled out at call sites:
    #: the job keeps its original seqno, hence its FIFO position.
    requeue = push

    def pop(self) -> Optional[ServeJob]:
        """Highest-priority, oldest job; ``None`` when empty."""
        while self._heap:
            _, _, _, job = heapq.heappop(self._heap)
            if self._removed.pop(job.job_id, None) is None:
                return job
        return None

    def peek(self) -> Optional[ServeJob]:
        """The job :meth:`pop` would return, left in place."""
        while self._heap:
            _, _, _, job = self._heap[0]
            if job.job_id not in self._removed:
                return job
            heapq.heappop(self._heap)
            self._removed.pop(job.job_id, None)
        return None

    def remove(self, job_id: str) -> bool:
        """Drop a queued job (cancellation); ``True`` if it was here."""
        if any(job.job_id == job_id and job.job_id not in self._removed
               for _, _, _, job in self._heap):
            self._removed[job_id] = True
            return True
        return False
