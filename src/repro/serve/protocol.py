"""The serve client/daemon wire protocol: versioned JSON frames.

Every exchange on the service socket is one request frame up, one
reply frame down.  A frame is UTF-8 JSON ``{"v": WIRE_VERSION,
"kind": ..., "payload": {...}}`` carried over the length-prefixed
byte framing of :mod:`repro.transport.frames`; the version travels in
every frame so a client and daemon from different checkouts fail
loudly at the first exchange instead of misreading each other.

The dataclasses below are the protocol's *schema*: every field is a
plain JSON-representable type, enforced by the W001 wire-safety lint,
and any field change requires a ``WIRE_VERSION`` bump (tracked by the
fingerprint manifest in ``check/wire_schema.json``, refreshed with
``repro check --accept-wire-schema`` — exactly the drift gate the
pickle wire of :mod:`repro.distrib.wire` already lives under).
"""

from __future__ import annotations

import dataclasses
import json
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ServeError
from repro.transport.frames import recv_frame, send_frame, try_recv_frame

#: Bump on any incompatible change to frame payloads or the
#: dataclasses below.  v1: submit/status/fetch/cancel/list/stats/
#: ping/shutdown verbs, six job states, content-addressed fetch.
#: v2: ``metrics`` verb (live fleet metrics, :mod:`repro.obs`) and
#: the ``trace_id`` span-context field on :class:`JobView`.
WIRE_VERSION = 2

#: Client -> daemon request verbs.
REQUEST_KINDS = ("ping", "submit", "status", "fetch", "cancel", "list",
                 "stats", "metrics", "shutdown")

#: Daemon -> client reply kinds.
REPLY_KINDS = ("ok", "error")

#: The job lifecycle surfaced to clients and the telemetry ops stream:
#: ``queued`` (waiting for a worker), ``running`` (on a worker),
#: ``preempted`` (checkpointed off its worker, waiting to resume),
#: ``done`` (result stored), ``failed`` (error or cancelled, see the
#: status ``error`` field), ``cached`` (submission hit the result
#: store; never ran).
JOB_STATES = ("queued", "running", "preempted", "done", "failed",
              "cached")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cached")


@dataclass(frozen=True)
class SubmitSpec:
    """One job submission, as carried in a ``submit`` payload.

    Exactly one of ``workload`` (a registry name, rebuilt daemon-side
    as a :class:`~repro.distrib.wire.WorkloadRef`) or ``program_hex``
    (a hex-encoded pickled module-level function) names the program.
    ``config`` is a :meth:`~repro.common.config.SimulationConfig.
    to_dict` tree; omitted sections take defaults.
    """

    config: Dict[str, Any] = field(default_factory=dict)
    workload: Optional[str] = None
    nthreads: int = 0
    scale: float = 1.0
    params: Dict[str, Any] = field(default_factory=dict)
    program_hex: Optional[str] = None
    args: List[Any] = field(default_factory=list)
    priority: int = 0


@dataclass(frozen=True)
class JobView:
    """One job's client-visible status, as carried in replies."""

    job_id: str
    state: str
    priority: int = 0
    attempts: int = 0
    deaths: int = 0
    preemptions: int = 0
    key: str = ""
    #: Deterministic distributed-trace id minted at submit; every span
    #: of the job's lifecycle carries it (:mod:`repro.obs.spans`).
    trace_id: str = ""
    error: Optional[str] = None


@dataclass(frozen=True)
class ServerInfo:
    """The ``stats`` reply payload: one daemon's ops counters."""

    protocol: int
    fleet: int
    states: Dict[str, int] = field(default_factory=dict)
    submitted: int = 0
    cache_hits: int = 0
    preemptions: int = 0
    worker_deaths: int = 0


def view_payload(view: Any) -> Dict[str, Any]:
    """Flatten a protocol dataclass into a frame payload dict."""
    return dataclasses.asdict(view)


def encode_frame(kind: str, payload: Dict[str, Any]) -> bytes:
    """Serialize one protocol frame to canonical JSON bytes."""
    try:
        return json.dumps(
            {"v": WIRE_VERSION, "kind": kind, "payload": payload},
            sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ServeError(
            f"cannot encode {kind} frame: {exc}") from exc


def decode_frame(blob: bytes) -> Tuple[str, Dict[str, Any]]:
    """Parse one protocol frame; fails loudly on version mismatch."""
    try:
        data = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ServeError(f"undecodable serve frame: {exc}") from exc
    if not isinstance(data, dict) or "v" not in data:
        raise ServeError("malformed serve frame: no version field")
    if data["v"] != WIRE_VERSION:
        raise ServeError(
            f"serve protocol version mismatch: got {data['v']!r}, "
            f"expected {WIRE_VERSION}")
    kind = data.get("kind")
    payload = data.get("payload")
    if not isinstance(kind, str):
        raise ServeError("malformed serve frame: no kind field")
    if not isinstance(payload, dict):
        raise ServeError("malformed serve frame: payload must be an "
                         "object")
    return kind, payload


def send_message(sock: socket.socket, kind: str,
                 payload: Dict[str, Any]) -> None:
    """Encode and send one frame on ``sock``."""
    send_frame(sock, encode_frame(kind, payload))


def recv_message(sock: socket.socket) -> Tuple[str, Dict[str, Any]]:
    """Receive and decode one frame from ``sock`` (blocking)."""
    return decode_frame(recv_frame(sock))


def try_recv_message(
        sock: socket.socket) -> Optional[Tuple[str, Dict[str, Any]]]:
    """Like :func:`recv_message`, ``None`` on clean peer close."""
    blob = try_recv_frame(sock)
    return None if blob is None else decode_frame(blob)
