"""Remote fleet workers: serve jobs over TCP channels.

With ``repro serve --listen host:port`` the daemon accepts dial-ins
from ``repro worker --connect`` and treats each as one extra fleet
slot.  The pump drives remote slots through the same three verbs it
uses on forked children — assign a job, poll for its result, signal
preemption — so the scheduling, retry and preemption policies apply
unchanged; only the carrier differs (pickled tuples over a framed
:class:`~repro.net.channel.TcpChannel` instead of pipes and a
``multiprocessing.Event``).

The one policy difference is death: a forked child is respawned in
place, but a vanished remote host cannot be — the slot is *removed*
and its job requeued against the normal retry budget, mirroring the
mp backend's drain semantics (capacity leaves, work does not).

Preemption over TCP has no side-band, so it rides the main channel:
while a job runs, the only frames the daemon may send are ``preempt``
and ``shutdown``, which lets the worker's
:class:`~repro.serve.worker.PreemptGuard` flag poll the channel
between quanta without ever swallowing a job assignment.
"""

from __future__ import annotations

import pickle
import traceback
from typing import Any, Optional, Tuple

from repro.net.channel import Channel, ChannelClosedError

#: Pickle protocol for remote serve frames (matches the distrib wire).
_PICKLE_PROTOCOL = 4


def _send(channel: Channel, payload: Tuple) -> None:
    channel.send_bytes(pickle.dumps(payload, protocol=_PICKLE_PROTOCOL))


def _recv(channel: Channel) -> Tuple:
    return pickle.loads(channel.recv_bytes())


class _JobSender:
    """``task_send`` face of a remote slot (pipe-compatible errors)."""

    def __init__(self, channel: Channel) -> None:
        self._channel = channel

    def send(self, item: Optional[tuple]) -> None:
        payload = ("shutdown",) if item is None else ("job", item)
        try:
            _send(self._channel, payload)
        except ChannelClosedError as exc:
            raise OSError(str(exc)) from exc

    def close(self) -> None:
        pass


class _ResultReceiver:
    """``result_recv`` face of a remote slot."""

    def __init__(self, channel: Channel) -> None:
        self._channel = channel

    def poll(self, timeout: float = 0.0) -> bool:
        return self._channel.poll(timeout)

    def recv(self) -> tuple:
        try:
            kind, payload = _recv(self._channel)
        except ChannelClosedError as exc:
            raise EOFError(str(exc)) from exc
        if kind != "result":
            raise EOFError(f"remote worker spoke {kind!r}, "
                           f"expected a result")
        return payload

    def close(self) -> None:
        pass


class _PreemptSender:
    """``preempt_flag`` face of a remote slot.

    ``set`` is best-effort: a dead peer is reaped (and its job
    requeued) on the next supervision pass, exactly as when a local
    worker dies with a preempt signal in flight.
    """

    def __init__(self, channel: Channel) -> None:
        self._channel = channel

    def set(self) -> None:
        try:
            _send(self._channel, ("preempt",))
        except ChannelClosedError:
            pass

    def clear(self) -> None:
        pass


class RemoteFleetWorker:
    """One remote fleet slot: a handshaken channel, pump-compatible."""

    #: Remote capacity cannot be respawned; death removes the slot.
    respawnable = False
    proc = None

    def __init__(self, index: int, channel: Channel, hello: Any) -> None:
        self.index = index
        self.channel = channel
        self.hello = hello
        self.task_send = _JobSender(channel)
        self.result_recv = _ResultReceiver(channel)
        self.preempt_flag = _PreemptSender(channel)
        self.job = None
        self.preempt_pending = False

    @property
    def idle(self) -> bool:
        return self.job is None

    def alive(self) -> bool:
        return self.channel.alive()

    def describe(self) -> str:
        return self.channel.describe()

    def shutdown(self) -> None:
        try:
            _send(self.channel, ("shutdown",))
        except ChannelClosedError:
            pass
        self.channel.close()


class _ChannelPreemptFlag:
    """Worker-side preempt flag that polls the channel between quanta.

    Mid-job the daemon only ever sends ``preempt`` or ``shutdown``
    frames, so consuming here cannot eat a job assignment.  A
    ``shutdown`` received mid-job acts as a final preemption: the job
    checkpoints off and the loop exits after reporting it.
    """

    def __init__(self, channel: Channel) -> None:
        self._channel = channel
        self._set = False
        self.stopped = False

    def is_set(self) -> bool:
        if self._set:
            return True
        while self._channel.poll(0.0):
            kind = _recv(self._channel)[0]
            if kind == "preempt":
                self._set = True
            elif kind == "shutdown":
                self.stopped = True
                self._set = True
            else:  # pragma: no cover - daemon bug
                raise EOFError(f"unexpected {kind!r} frame mid-job")
        return self._set

    def clear(self) -> None:
        """Drop the flag *and* any buffered stale preempt frames.

        Mirrors ``preempt_flag.clear()`` in the forked-child loop: a
        preempt aimed at this slot's previous occupant must not leak
        into the job that was just assigned.  A buffered ``shutdown``
        is remembered, not dropped.
        """
        while self._channel.poll(0.0):
            if _recv(self._channel)[0] == "shutdown":
                self.stopped = True
        self._set = False

    def next_job(self) -> Optional[tuple]:
        """Block for the next assignment; ``None`` means shut down."""
        if self.stopped:
            return None
        while True:
            kind, *rest = _recv(self._channel)
            if kind == "job":
                return rest[0]
            if kind == "shutdown":
                return None
            # A stale preempt aimed at the job we just finished.


def run_remote_fleet_worker(channel: Channel, ops: Any = None) -> None:
    """Serve jobs from a daemon over one channel until shut down.

    ``ops`` is an optional worker-side telemetry channel (``repro
    worker --trace``): each assignment and outcome is mirrored as a
    local ``job.*`` event carrying the job's trace id, so a remote
    host's view of the work can be merged into the daemon's span tree.
    """
    from repro.serve.worker import JobPreempted, run_job
    flag = _ChannelPreemptFlag(channel)

    def note(name, job_id, trace, **extra):
        if ops is not None:
            record = dict(extra)
            record.update(job=job_id, trace=trace)
            ops.emit(name, None, 0, record)

    try:
        while True:
            item = flag.next_job()
            if item is None:
                return
            job_id, config, program, args, resume_dir = item
            trace = config.telemetry.trace_id
            flag.clear()
            note("job.assigned", job_id, trace,
                 resumed=bool(resume_dir))
            try:
                result = run_job(config, program, args, resume_dir,
                                 flag)
                try:
                    pickle.dumps(result.main_result)
                except Exception:
                    result.main_result = None
                note("job.done", job_id, trace)
                _send(channel, ("result", (job_id, "ok", result)))
            except JobPreempted as preempted:
                note("job.preempted", job_id, trace,
                     ckpt=preempted.checkpoint_dir)
                _send(channel, ("result", (job_id, "preempted",
                                           preempted.checkpoint_dir)))
            except ChannelClosedError:
                raise
            except BaseException:
                note("job.failed", job_id, trace)
                _send(channel, ("result",
                                (job_id, "failed",
                                 traceback.format_exc())))
            if flag.stopped:
                return
    except (ChannelClosedError, EOFError):
        pass  # daemon gone: nothing left to serve
    finally:
        channel.close()
