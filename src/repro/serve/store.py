"""Content-addressed result store: determinism makes cache hits correct.

A simulation here is a pure function of (semantic config, program,
args) — that is the repo's central, heavily tested invariant (equal
seeds give byte-identical metrics on every backend, with or without
observers).  So results can be *content addressed*: the store keys a
canonical JSON encoding of the :class:`~repro.sim.results.
SimulationResult` by :func:`job_key`, and a repeat submission with an
equal key may return the stored bytes without simulating — not as a
heuristic, but provably the same answer.

Layout: ``<root>/<key>.json``, each file the canonical bytes of
``{"format": "repro.result/1", "key": ..., "result": {...}}`` written
atomically (tmp + rename).  Canonical means sorted keys, compact
separators, no wall-clock or host-address content — so two runs of
the same job produce byte-identical files, which is what the serve
cache-correctness tests assert end to end.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, List, Optional

from repro.common.config import SimulationConfig
from repro.common.errors import ServeError
from repro.sim.results import SimulationResult

#: Version tag written into (and required from) every stored result.
FORMAT = "repro.result/1"


# -- canonical result encoding ------------------------------------------------


def result_to_jsonable(result: SimulationResult) -> Dict[str, Any]:
    """Flatten a result to a JSON-safe dict, losslessly where possible.

    Integer dict keys become strings (JSON objects), tuples become
    lists; :func:`result_from_jsonable` restores both.  A
    ``main_result`` that does not survive a JSON round trip is dropped
    to ``None`` (mirroring the sweep pool's unpicklable-result rule)
    and flagged in ``main_result_dropped``.
    """
    data = dataclasses.asdict(result)
    for key in ("thread_cycles", "thread_instructions",
                "thread_start_cycles", "core_busy_seconds"):
        data[key] = {str(tile): value
                     for tile, value in sorted(data[key].items())}
    data["skew_trace"] = [list(sample) for sample in data["skew_trace"]]
    data["main_result_dropped"] = False
    main = data["main_result"]
    try:
        if json.loads(json.dumps(main)) != main:
            raise ValueError("lossy")
    except (TypeError, ValueError):
        data["main_result"] = None
        data["main_result_dropped"] = True
    return data


def result_from_jsonable(data: Dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from its JSON form."""
    data = dict(data)
    data.pop("main_result_dropped", None)
    for key in ("thread_cycles", "thread_instructions",
                "thread_start_cycles", "core_busy_seconds"):
        data[key] = {int(tile): value
                     for tile, value in data.get(key, {}).items()}
    data["skew_trace"] = [tuple(sample)
                         for sample in data.get("skew_trace", [])]
    return SimulationResult(**data)


def canonical_result_bytes(result: SimulationResult,
                           key: str = "") -> bytes:
    """The exact bytes the store writes for ``result`` under ``key``."""
    envelope = {"format": FORMAT, "key": key,
                "result": result_to_jsonable(result)}
    return json.dumps(envelope, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


# -- job identity -------------------------------------------------------------


def program_descriptor(program: Any) -> Dict[str, Any]:
    """A canonical JSON description of a shippable program reference."""
    from repro.distrib.wire import (
        PickledProgram,
        WorkloadRef,
        make_program_ref,
    )
    ref = make_program_ref(program)
    if isinstance(ref, WorkloadRef):
        return {"kind": "workload", "workload": ref.workload,
                "nthreads": ref.nthreads, "scale": ref.scale,
                "params": dict(ref.params)}
    if isinstance(ref, PickledProgram):
        import hashlib
        return {"kind": "pickled",
                "sha256": hashlib.sha256(ref.blob).hexdigest()}
    raise ServeError(
        f"cannot derive a content key for program reference {ref!r}")


def job_key(config: SimulationConfig, program: Any,
            args: tuple = ()) -> str:
    """Content address of one job's result.

    Combines :meth:`SimulationConfig.content_hash` (semantic config +
    seed + wire version) with the program identity and arguments; two
    submissions with equal keys are guaranteed the same metrics.
    """
    import hashlib
    payload = {
        "config": config.content_hash(),
        "program": program_descriptor(program),
        "args": list(args),
    }
    try:
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ServeError(
            f"job arguments are not JSON-encodable: {exc}") from exc
    return hashlib.sha256(blob).hexdigest()


# -- the store ----------------------------------------------------------------


class ResultStore:
    """On-disk map from content key to canonical result bytes."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path_for(self, key: str) -> str:
        if not key or os.sep in key or key.startswith("."):
            raise ServeError(f"malformed result key {key!r}")
        return os.path.join(self.root, f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return os.path.isfile(self.path_for(key))

    def keys(self) -> List[str]:
        """Stored keys, sorted (deterministic listing)."""
        out = []
        for entry in sorted(os.listdir(self.root)):
            if entry.endswith(".json"):
                out.append(entry[:-len(".json")])
        return out

    def put(self, key: str, result: SimulationResult) -> bytes:
        """Store ``result`` under ``key`` atomically; returns the bytes.

        A duplicate ``put`` (two concurrent runs of the same job) must
        agree byte-for-byte — determinism guarantees it, and the store
        *checks* it: a mismatch raises :class:`ServeError` naming the
        key, surfacing a determinism bug instead of silently serving
        one of two different answers.
        """
        blob = canonical_result_bytes(result, key)
        path = self.path_for(key)
        existing = self.get_bytes(key)
        if existing is not None:
            if existing != blob:
                raise ServeError(
                    f"determinism violation: result for key {key} "
                    f"differs from the stored copy")
            return blob
        staging = path + f".tmp.{os.getpid()}"
        with open(staging, "wb") as fh:
            fh.write(blob)
        os.replace(staging, path)
        return blob

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The stored canonical bytes, or ``None``."""
        try:
            with open(self.path_for(key), "rb") as fh:
                return fh.read()
        except OSError:
            return None

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored envelope as a dict, or ``None``; verifies format."""
        blob = self.get_bytes(key)
        if blob is None:
            return None
        try:
            envelope = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServeError(
                f"stored result {key} is corrupt: {exc}") from exc
        if envelope.get("format") != FORMAT:
            raise ServeError(
                f"stored result {key} has unsupported format "
                f"{envelope.get('format')!r} (expected {FORMAT!r})")
        return envelope

    def get_result(self, key: str) -> Optional[SimulationResult]:
        """The stored result rebuilt as a :class:`SimulationResult`."""
        envelope = self.get(key)
        if envelope is None:
            return None
        return result_from_jsonable(envelope["result"])
