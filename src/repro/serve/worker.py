"""The serve worker: one fleet child, running one job at a time.

A worker is a long-lived forked process.  It blocks on its task pipe,
runs each job with the in-process backend (one process per simulation
is the right grain — exactly the sweep pool's rule), and reports
``(job_id, status, payload)`` on its result pipe, where status is
``ok`` (payload: the :class:`~repro.sim.results.SimulationResult`),
``preempted`` (payload: the checkpoint directory to resume from) or
``failed`` (payload: the traceback).

Preemption rides the deterministic ``repro.ckpt/1`` snapshot path: the
daemon sets the worker's preempt flag, a :class:`PreemptGuard` hook
polled between scheduler quanta writes one consistent checkpoint and
unwinds with :class:`JobPreempted`, and the worker hands the
checkpoint back.  When the job is later re-assigned, the worker
restores the snapshot and ``resume_run()`` continues it — to a result
byte-identical to an undisturbed run, the PR-5 guarantee the serve
tests re-assert end to end.
"""

from __future__ import annotations

import os
import pickle
import traceback
from typing import Any, Optional

from repro.common.config import SimulationConfig
from repro.common.errors import SimulationError


class JobPreempted(SimulationError):
    """Internal unwind: the running job was checkpointed off its worker."""

    def __init__(self, checkpoint_dir: str) -> None:
        super().__init__(f"preempted into {checkpoint_dir}")
        self.checkpoint_dir = checkpoint_dir


def _disabled_guard() -> "PreemptGuard":
    """Unpickle target: guards inside snapshots come back disabled."""
    return PreemptGuard(None, None)


class PreemptGuard:
    """Scheduler periodic hook that checkpoints on the daemon's signal.

    Runs between quanta (the consistent-snapshot boundary).  The flag
    is a ``multiprocessing.Event``; when set, the guard clears it,
    writes one checkpoint and raises :class:`JobPreempted`.  Guards
    pickle as *disabled* (the flag cannot cross a snapshot, and the
    excision mirrors the repo's "None = disabled observer" rule);
    :func:`attach_preempt_guard` scrubs stale disabled guards when a
    restored simulation gets a live one.
    """

    def __init__(self, simulator: Any, flag: Any) -> None:
        self.simulator = simulator
        self.flag = flag

    def __call__(self, scheduler: Any) -> None:
        if self.flag is None or not self.flag.is_set():
            return
        self.flag.clear()
        path = self.simulator.save_checkpoint()
        raise JobPreempted(path)

    def __reduce__(self):
        return (_disabled_guard, ())


def attach_preempt_guard(simulator: Any, flag: Any) -> PreemptGuard:
    """Install a live guard, dropping any snapshot-restored dead ones."""
    scheduler = simulator.scheduler
    scheduler._periodic_hooks = [
        (hook, period) for hook, period in scheduler._periodic_hooks
        if not isinstance(hook, PreemptGuard)]
    guard = PreemptGuard(simulator, flag)
    scheduler.add_periodic_hook(guard, 1)
    return guard


def run_job(config: SimulationConfig, program: Any, args: tuple,
            resume_dir: Optional[str], preempt_flag: Any = None) -> Any:
    """Run (or resume) one job in this process; may raise JobPreempted.

    ``config.ckpt.dir`` names the job's private checkpoint directory —
    the daemon sets it so preemption has somewhere to snapshot to.
    """
    if resume_dir:
        from repro.ckpt.recovery import load_checkpoint
        simulator, _manifest = load_checkpoint(resume_dir)
        if preempt_flag is not None:
            attach_preempt_guard(simulator, preempt_flag)
        return simulator.resume_run()
    from repro.sim.simulator import Simulator
    run_config = config.copy()
    run_config.distrib.backend = "inproc"
    if run_config.sample.ff_until > 0 and run_config.sample.library:
        # Snapshot-library job (:mod:`repro.sample.library`): the
        # fleet fast-forwards each shared prefix once; every later job
        # with the same prefix forks from the stored checkpoint.
        # Entry creation is atomic, so concurrent fleet children
        # racing to prime the same prefix stay correct.
        from repro.sample.library import SnapshotLibrary
        library = SnapshotLibrary(run_config.sample.library)
        key, primed = library.ensure(run_config, program, args)
        simulator = library.fork(key, run_config)
        if preempt_flag is not None:
            attach_preempt_guard(simulator, preempt_flag)
        result = simulator.resume_run()
        result.sample["library"] = {"key": key, "primed": primed,
                                    "root": library.root}
        return result
    simulator = Simulator(run_config)
    if preempt_flag is not None:
        attach_preempt_guard(simulator, preempt_flag)
    # Program references go to ``run`` unresolved: ``spawn_thread``
    # keeps the ref on the interpreter, which checkpoint snapshots
    # need (a resolved workload main is a closure and cannot pickle).
    return simulator.run(program, args)


def worker_main(task_conn: Any, result_conn: Any,
                preempt_flag: Any) -> None:  # pragma: no cover - child
    """Fleet-child loop: pull jobs until the ``None`` sentinel."""
    while True:
        item = task_conn.recv()
        if item is None:
            return
        job_id, config, program, args, resume_dir = item
        # A preempt signal aimed at the *previous* occupant of this
        # worker (a lost race with its completion) must not leak into
        # this job.
        preempt_flag.clear()
        try:
            result = run_job(config, program, args, resume_dir,
                             preempt_flag)
            try:
                pickle.dumps(result.main_result)
            except Exception:
                result.main_result = None
            result_conn.send((job_id, "ok", result))
        except JobPreempted as preempted:
            result_conn.send((job_id, "preempted",
                              preempted.checkpoint_dir))
        except BaseException:
            result_conn.send((job_id, "failed", traceback.format_exc()))


def worker_banner() -> str:  # pragma: no cover - cosmetic
    return f"repro-serve-worker pid={os.getpid()}"
