"""Simulation assembly: the public entry point.

:class:`~repro.sim.simulator.Simulator` wires every subsystem together
exactly as Figure 2b draws them — front-end interpreters trapping into
the core, memory and network models over the physical transport, with
the MCP/LCP system layer and a synchronization model — and runs a
target program to completion.  :mod:`repro.sim.experiment` adds the
multi-run/multi-config sweep helpers the benchmarks are built on.
"""

from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator
from repro.sim.experiment import (
    repeat_runs,
    RunStatistics,
)

__all__ = ["RunStatistics", "SimulationResult", "Simulator", "repeat_runs"]
