"""Sweep and repetition helpers for experiments.

The paper's accuracy studies (Table 3, Figure 6) run each configuration
ten times and report the mean simulated run-time, its percentage
deviation from a baseline ("error"), and the run-to-run coefficient of
variation.  These helpers implement exactly that protocol.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.common.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.runner import create_simulator


def _per_run_trace_path(path: str, index: int) -> str:
    """Derive a distinct trace file per run: ``trace.json`` ->
    ``trace.run3.json``.  The extension is preserved so the trace
    format auto-detection (``.json`` = Chrome) is unaffected."""
    root, ext = os.path.splitext(path)
    return f"{root}.run{index}{ext}"


@dataclass
class RunStatistics:
    """Aggregate of repeated runs of one configuration."""

    results: List[SimulationResult]

    @property
    def simulated_cycles(self) -> List[int]:
        return [r.simulated_cycles for r in self.results]

    @property
    def mean_cycles(self) -> float:
        cycles = self.simulated_cycles
        return sum(cycles) / len(cycles)

    @property
    def mean_wall_clock(self) -> float:
        return (sum(r.wall_clock_seconds for r in self.results)
                / len(self.results))

    @property
    def cov_percent(self) -> float:
        """Coefficient of variation of simulated run-time, percent."""
        cycles = self.simulated_cycles
        mean = self.mean_cycles
        if len(cycles) < 2 or mean == 0:
            return 0.0
        var = sum((c - mean) ** 2 for c in cycles) / len(cycles)
        return math.sqrt(var) / mean * 100.0

    def error_percent(self, baseline_mean_cycles: float) -> float:
        """Percentage deviation of mean run-time from a baseline."""
        if baseline_mean_cycles == 0:
            return 0.0
        deviation = abs(self.mean_cycles - baseline_mean_cycles)
        return deviation / baseline_mean_cycles * 100.0  # check: allow D004 -- stats on run means


def repeat_runs(config: SimulationConfig,
                program: Callable[..., Any],
                args: tuple = (),
                runs: int = 10,
                base_seed: Optional[int] = None,
                workers: int = 1) -> RunStatistics:
    """Run the same program ``runs`` times with varied seeds.

    Varying only the seed reproduces the paper's protocol: the target
    program and architecture are fixed while host-side nondeterminism
    (scheduling, OS noise) differs run to run.

    With ``workers > 1`` the runs execute concurrently in a process
    pool (the program must then be picklable or carry ``resolve()``);
    results are identical to the serial path since each run is an
    independent, fully seeded simulation.
    """
    if workers > 1:
        from repro.distrib.pool import parallel_repeat
        return RunStatistics(parallel_repeat(
            config, program, args, runs=runs, base_seed=base_seed,
            workers=workers))
    results: List[SimulationResult] = []
    seed0 = config.seed if base_seed is None else base_seed
    for run_index in range(runs):
        run_config = config.copy()
        run_config.seed = seed0 + 7919 * run_index
        if run_config.telemetry.trace_path:
            run_config.telemetry.trace_path = _per_run_trace_path(
                config.telemetry.trace_path, run_index)
        simulator = create_simulator(run_config)
        results.append(simulator.run(program, args))
    return RunStatistics(results)


def sweep(configs: Sequence[SimulationConfig],
          program: Callable[..., Any],
          args: tuple = (),
          workers: int = 1) -> List[SimulationResult]:
    """Run one program across a sequence of configurations.

    ``workers > 1`` fans the configurations out across a process pool;
    ordering and per-configuration results match the serial path.
    """
    if workers > 1:
        from repro.distrib.pool import parallel_sweep
        return parallel_sweep(configs, program, args, workers=workers)
    results = []
    for index, config in enumerate(configs):
        if config.telemetry.trace_path:
            config = config.copy()
            config.telemetry.trace_path = _per_run_trace_path(
                config.telemetry.trace_path, index)
        results.append(create_simulator(config).run(program, args))
    return results
