"""Sweep and repetition helpers for experiments.

The paper's accuracy studies (Table 3, Figure 6) run each configuration
ten times and report the mean simulated run-time, its percentage
deviation from a baseline ("error"), and the run-to-run coefficient of
variation.  These helpers implement exactly that protocol.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.common.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.runner import create_simulator


def _per_run_trace_path(path: str, index: int) -> str:
    """Derive a distinct trace file per run: ``trace.json`` ->
    ``trace.run3.json``.  The extension is preserved so the trace
    format auto-detection (``.json`` = Chrome) is unaffected."""
    root, ext = os.path.splitext(path)
    return f"{root}.run{index}{ext}"


@dataclass
class RunStatistics:
    """Aggregate of repeated runs of one configuration."""

    results: List[SimulationResult]

    @property
    def simulated_cycles(self) -> List[int]:
        return [r.simulated_cycles for r in self.results]

    @property
    def mean_cycles(self) -> float:
        cycles = self.simulated_cycles
        if not cycles:
            return 0.0
        return sum(cycles) / len(cycles)

    @property
    def mean_wall_clock(self) -> float:
        if not self.results:
            return 0.0
        return (sum(r.wall_clock_seconds for r in self.results)
                / len(self.results))

    @property
    def cov_percent(self) -> float:
        """Coefficient of variation of simulated run-time, percent.

        Degenerate aggregates report 0.0 rather than raising: a single
        run has no variance estimate, and a zero mean (every run
        measured nothing) has no meaningful relative spread.
        """
        cycles = self.simulated_cycles
        if len(cycles) < 2:
            return 0.0
        mean = self.mean_cycles
        if mean == 0:
            return 0.0
        var = sum((c - mean) ** 2 for c in cycles) / len(cycles)
        return math.sqrt(var) / mean * 100.0

    def error_percent(self, baseline_mean_cycles: float) -> float:
        """Percentage deviation of mean run-time from a baseline.

        A zero or degenerate baseline (no runs) yields 0.0 — there is
        nothing to deviate from, and the aggregate tables render the
        run counts alongside so the degenerate case stays visible.
        """
        if baseline_mean_cycles == 0 or not self.results:
            return 0.0
        deviation = abs(self.mean_cycles - baseline_mean_cycles)
        return deviation / baseline_mean_cycles * 100.0  # check: allow D004 -- stats on run means


def repeat_runs(config: SimulationConfig,
                program: Callable[..., Any],
                args: tuple = (),
                runs: int = 10,
                base_seed: Optional[int] = None,
                workers: int = 1) -> RunStatistics:
    """Run the same program ``runs`` times with varied seeds.

    Varying only the seed reproduces the paper's protocol: the target
    program and architecture are fixed while host-side nondeterminism
    (scheduling, OS noise) differs run to run.

    With ``workers > 1`` the runs execute concurrently in a process
    pool (the program must then be picklable or carry ``resolve()``);
    results are identical to the serial path since each run is an
    independent, fully seeded simulation.
    """
    if workers > 1:
        from repro.distrib.pool import parallel_repeat
        return RunStatistics(parallel_repeat(
            config, program, args, runs=runs, base_seed=base_seed,
            workers=workers))
    results: List[SimulationResult] = []
    seed0 = config.seed if base_seed is None else base_seed
    for run_index in range(runs):
        run_config = config.copy()
        run_config.seed = seed0 + 7919 * run_index
        if run_config.telemetry.trace_path:
            run_config.telemetry.trace_path = _per_run_trace_path(
                config.telemetry.trace_path, run_index)
        simulator = create_simulator(run_config)
        results.append(simulator.run(program, args))
    return RunStatistics(results)


def sweep(configs: Sequence[SimulationConfig],
          program: Callable[..., Any],
          args: tuple = (),
          workers: int = 1,
          share_prefix: bool = False,
          library: Optional[Any] = None) -> List[SimulationResult]:
    """Run one program across a sequence of configurations.

    ``workers > 1`` fans the configurations out across a process pool;
    ordering and per-configuration results match the serial path.

    ``share_prefix`` routes each variant through the snapshot library
    (:mod:`repro.sample.library`): variants that request a
    fast-forward (``sample.ff_until > 0``) and name a library
    directory (``sample.library``) prime the shared prefix exactly
    once and fork every later run from the stored switch-point
    checkpoint — the paper's checkpoint-accelerated sweep.  Pass
    ``library`` (a :class:`~repro.sample.library.SnapshotLibrary`) to
    share one instance — and its prime/hit accounting — with the
    caller; by default one instance per distinct library root is
    created.  With ``workers > 1`` the distinct prefixes are primed
    serially up front so the pool's processes all fork instead of
    racing to fast-forward.
    """
    libraries: dict = {}

    def _library_for(config: SimulationConfig) -> Optional[Any]:
        if not share_prefix or config.sample.ff_until <= 0:
            return None
        # An explicitly-passed library serves every fast-forwarding
        # variant, whether or not its config names a root.
        if library is not None:
            return library
        if not config.sample.library:
            return None
        from repro.sample.library import SnapshotLibrary
        root = config.sample.library
        if root not in libraries:
            libraries[root] = SnapshotLibrary(root)
        return libraries[root]

    def _with_root(config: SimulationConfig,
                   lib: Optional[Any]) -> SimulationConfig:
        # Pool children rebuild the library from the config (the
        # instance cannot cross the process boundary), and
        # run_with_library keys off the same field — fill it in when
        # only the ``library`` argument named the root.
        if lib is None or config.sample.library:
            return config
        config = config.copy()
        config.sample.library = lib.root
        return config

    if workers > 1:
        staged = []
        for config in configs:
            lib = _library_for(config)
            config = _with_root(config, lib)
            if lib is not None:
                lib.ensure(config, program, args)
            staged.append(config)
        from repro.distrib.pool import parallel_sweep
        return parallel_sweep(staged, program, args, workers=workers)
    results = []
    for index, config in enumerate(configs):
        if config.telemetry.trace_path:
            config = config.copy()
            config.telemetry.trace_path = _per_run_trace_path(
                config.telemetry.trace_path, index)
        lib = _library_for(config)
        if lib is not None:
            from repro.sample.library import run_with_library
            results.append(run_with_library(_with_root(config, lib),
                                            program, args, library=lib))
        else:
            results.append(create_simulator(config).run(program, args))
    return results
