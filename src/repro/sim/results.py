"""Result objects produced by a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple


@dataclass
class SimulationResult:
    """Everything a run reports; the analysis layer consumes this."""

    #: Simulated application run-time in target cycles (the maximum
    #: final clock across all threads) — the paper's headline metric.
    simulated_cycles: int
    #: Modelled host wall-clock of the whole simulation, seconds
    #: (includes sequential process start-up).
    wall_clock_seconds: float
    #: Modelled wall-clock of an uninstrumented native run, seconds.
    native_seconds: float
    #: Final clock of each thread, by tile id.
    thread_cycles: Dict[int, int]
    #: Dynamic instructions retired per thread.
    thread_instructions: Dict[int, int]
    #: Flat counter snapshot (dotted paths -> values).
    counters: Dict[str, int]
    #: Clock at which each thread started (its spawn timestamp); used
    #: for region-of-interest measurements.
    thread_start_cycles: Dict[int, int] = field(default_factory=dict)
    #: Host-core busy seconds (parallel efficiency diagnostics).
    core_busy_seconds: Dict[int, float] = field(default_factory=dict)
    #: Clock-skew samples, present when tracing was enabled:
    #: (approx global clock, max deviation, min deviation).
    skew_trace: List[Tuple[float, float, float]] = field(
        default_factory=list)
    #: Miss classification counts by type name (Figure 8), if enabled.
    miss_breakdown: Dict[str, int] = field(default_factory=dict)
    #: Value returned by the target's main thread, if any.
    main_result: object = None
    #: Crash-recovery log: one dict per worker restart performed by
    #: the fault-tolerance driver (attempt number, dead worker, the
    #: checkpoint turn resumed from, backoff applied).  Empty on every
    #: undisturbed run, so result equality across backends is
    #: unaffected by the feature existing.
    recoveries: List[dict] = field(default_factory=list)
    #: Sampling summary (:mod:`repro.sample`), present when the run used
    #: fast-forward or interval sampling: mode-switch history, window
    #: measurements, extrapolated cycles with confidence interval.
    #: Empty on unsampled runs so cross-backend equality is unaffected.
    sample: Dict[str, Any] = field(default_factory=dict)

    # -- derived metrics -------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        return sum(self.thread_instructions.values())

    @property
    def parallel_cycles(self) -> int:
        """Region-of-interest run-time: fork of the first worker to the
        last thread's completion.

        PARSEC/SPLASH studies measure the parallel region, excluding
        serial input generation; with one thread this is simply the
        whole run.
        """
        workers = [t for t in self.thread_start_cycles if t != 0]
        if not workers:
            return self.simulated_cycles
        start = min(self.thread_start_cycles[t] for t in workers)
        return max(self.simulated_cycles - start, 1)

    @property
    def slowdown(self) -> float:
        """Simulation wall-clock over native wall-clock."""
        if self.native_seconds <= 0:
            return float("inf")
        return self.wall_clock_seconds / self.native_seconds

    def counter(self, suffix: str) -> int:
        """Sum all counters whose dotted path ends with ``suffix``."""
        return sum(v for k, v in self.counters.items()
                   if k.endswith(suffix))

    def cache_miss_rate(self, level: str = "l2") -> float:
        """Aggregate miss rate of one cache level across tiles."""
        lookups = hits = 0
        needle = f".{level}."
        for key, value in self.counters.items():
            if needle in key and key.endswith(".lookups"):
                lookups += value
            elif needle in key and key.endswith(".hits"):
                hits += value
        return (lookups - hits) / lookups if lookups else 0.0
