"""Backend selection: build the right simulator for a configuration."""

from __future__ import annotations

from typing import Any

from repro.common.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator


def create_simulator(config: SimulationConfig) -> Simulator:
    """Instantiate the simulator for ``config.distrib.backend``.

    ``inproc`` (default) runs everything in this process; ``mp`` forks
    one worker per host process of the cluster layout and distributes
    tile threads across them (the import is deferred so the in-process
    path never pays for multiprocessing machinery).
    """
    config.validate()
    if config.distrib.backend == "mp":
        from repro.distrib.coordinator import DistribSimulator
        return DistribSimulator(config)
    return Simulator(config)


def run_simulation(config: SimulationConfig, program: Any,
                   args: tuple = ()) -> SimulationResult:
    """One-shot convenience: build the backend and run ``program``.

    When checkpointing is enabled the run is wrapped in the
    crash-recovery loop: a dead mp worker triggers a restore from the
    last consistent checkpoint instead of failing the run (see
    :func:`repro.ckpt.recovery.run_with_recovery`).

    When the config requests a fast-forward (``sample.ff_until``) and
    names a snapshot library (``sample.library``), the run routes
    through :func:`repro.sample.library.run_with_library`: the
    fast-forward is primed once per shared prefix and every later run
    forks from the stored switch-point checkpoint.
    """
    if config.sample.ff_until > 0 and config.sample.library:
        from repro.sample.library import run_with_library
        return run_with_library(config, program, args)
    simulator = create_simulator(config)
    if config.ckpt.enabled:
        from repro.ckpt.recovery import run_with_recovery
        result, _ = run_with_recovery(simulator, program, args)
        return result
    return simulator.run(program, args)
