"""Backend selection: build the right simulator for a configuration."""

from __future__ import annotations

from typing import Any

from repro.common.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator


def create_simulator(config: SimulationConfig) -> Simulator:
    """Instantiate the simulator for ``config.distrib.backend``.

    ``inproc`` (default) runs everything in this process; ``mp`` forks
    one worker per host process of the cluster layout and distributes
    tile threads across them (the import is deferred so the in-process
    path never pays for multiprocessing machinery).
    """
    config.validate()
    if config.distrib.backend == "mp":
        from repro.distrib.coordinator import DistribSimulator
        return DistribSimulator(config)
    return Simulator(config)


def run_simulation(config: SimulationConfig, program: Any,
                   args: tuple = ()) -> SimulationResult:
    """One-shot convenience: build the backend and run ``program``."""
    return create_simulator(config).run(program, args)
