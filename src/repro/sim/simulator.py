"""The Simulator: assembles all subsystems and runs a target program.

One :class:`Simulator` instance is one simulation of one application on
one target architecture over one (simulated) host cluster.  It doubles
as the *kernel* object the interpreters call back into for spawning
threads, charging host costs, reaching the MCP, and waking blocked
threads.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.config import SimulationConfig
from repro.common.ids import ProcessId, ThreadId, TileId
from repro.common.rng import RngStreams
from repro.common.stats import StatGroup
from repro.frontend.interpreter import ThreadInterpreter
from repro.host.cluster import ClusterLayout
from repro.host.costmodel import HostCostModel
from repro.host.scheduler import Scheduler
from repro.memory.address import AddressSpace
from repro.memory.allocator import DynamicMemoryManager
from repro.memory.backing import BackingStore
from repro.memory.coherence import CoherenceEngine
from repro.memory.controller import MemoryController
from repro.memory.miss_classifier import MissClassifier
from repro.network.interface import NetworkFabric
from repro.profile.timers import create_profiler
from repro.sim.results import SimulationResult
from repro.sync.model import create_sync_model
from repro.system.lcp import create_lcps
from repro.system.mcp import MCP_TILE, MasterControlProgram
from repro.telemetry.bus import create_bus
from repro.telemetry.chrome import ChromeTraceSink
from repro.telemetry.events import EventCategory
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.skew import ClockSkewSampler
from repro.transport.message import MessageKind
from repro.transport.transport import Transport

#: Synthetic code placement: each distinct program gets a 64 KB region.
_CODE_REGION_BYTES = 64 * 1024


class Simulator:
    """One fully wired simulation instance."""

    def __init__(self, config: SimulationConfig) -> None:
        config.validate()
        self.config = config
        self.rngs = RngStreams(config.seed)
        self.stats = StatGroup("sim")

        # Telemetry: ``None`` when disabled — every instrumented
        # component then resolves a ``None`` channel and the hot paths
        # stay a single attribute test.  Purely observational: the bus
        # never consumes RNG draws or touches simulated time.
        self.telemetry = create_bus(config.telemetry)

        # Runtime sanitizers (``--sanitize``): ride the bus as pure
        # observers.  With tracing off they get a mask-0 bus that
        # records nothing; either way they must attach before any
        # component resolves its channels, because ``channel()``
        # honours the observer mask.
        self.sanitizers = None
        if config.check.sanitize:
            from repro.check.sanitize import Sanitizers
            from repro.telemetry.bus import TelemetryBus
            if self.telemetry is None:
                self.telemetry = TelemetryBus(0)
            self.sanitizers = Sanitizers(config.num_tiles,
                                         self.telemetry)

        # Crash flight recorder (``--flight-dir``): a bounded ring of
        # the most recent events, riding the bus exactly like the
        # sanitizers — a mask-0 bus when tracing is off, so neither
        # the recorded trace nor the results change either way.  The
        # recovery path dumps the ring as a forensics bundle when a
        # worker crash or timeout kills the run.
        self.flight = None
        if config.telemetry.flight_dir:
            from repro.obs.flight import FlightRecorder
            from repro.telemetry.bus import TelemetryBus
            from repro.telemetry.events import ALL_CATEGORIES
            if self.telemetry is None:
                self.telemetry = TelemetryBus(0)
            self.flight = FlightRecorder(config.telemetry.flight_events)
            self.telemetry.observe(self.flight.on_event,
                                   ALL_CATEGORIES)

        # Run-level span (:mod:`repro.obs.spans`): when a trace id was
        # propagated into this config (e.g. by the serve daemon at job
        # assignment), the run stamps its lifecycle onto that job's
        # span tree.  Purely observational, like every bus client.
        self._span_emitter = None
        self._run_span = ""
        if config.telemetry.trace_id and self.telemetry is not None:
            from repro.obs.spans import SpanEmitter
            self._span_emitter = SpanEmitter(
                self.telemetry.channel(EventCategory.OBS),
                config.telemetry.trace_id,
                parent=config.telemetry.span_parent)

        sync_channel = (self.telemetry.channel(EventCategory.SYNC)
                        if self.telemetry is not None else None)

        # Host platform.
        self.layout = ClusterLayout(config.num_tiles, config.host)
        self._configure_trace_sinks()
        self.cost_model = HostCostModel(
            config.host, rng=self.rngs.stream("host_jitter"))
        self.sync_model = create_sync_model(
            config.sync, self.stats.child("sync"),
            self.rngs.stream("lax_p2p"), telemetry=sync_channel)
        self.scheduler = Scheduler(
            self.layout, self.cost_model, self.sync_model,
            self.stats.child("scheduler"),
            quantum_instructions=config.host.quantum_instructions,
            rng=self.rngs.stream("scheduler"),
            telemetry=self.telemetry)

        # Communication.
        self.transport = self._make_transport()
        self.transport.add_delivery_hook(self._charge_message)
        self.fabric = NetworkFabric(config.num_tiles, config.network,
                                    self.transport,
                                    self.stats.child("network"),
                                    telemetry=self.telemetry)

        # Memory system.
        line_bytes = config.memory.l2.line_bytes
        self.space = AddressSpace(config.num_tiles, line_bytes)
        self.backing = BackingStore(line_bytes)
        self.classifier: Optional[MissClassifier] = None
        if config.memory.classify_misses:
            self.classifier = MissClassifier(
                config.num_tiles, line_bytes,
                self.stats.child("miss_classes"))
        self.engine = CoherenceEngine(
            config.num_tiles, config.memory, self.space, self.backing,
            self.fabric, config.core.clock_hz, self.stats.child("memory"),
            self.classifier, telemetry=self.telemetry)
        self.controllers: List[MemoryController] = [
            MemoryController(TileId(t), self.engine,
                             self._charge_memory_access,
                             self.stats.child(f"mc{t}"))
            for t in range(config.num_tiles)]

        # System layer.
        self.allocator = DynamicMemoryManager(self.space)
        self.mcp = MasterControlProgram(
            config.num_tiles, self.allocator, self._wake_thread,
            self.stats.child("mcp"), telemetry=self.telemetry)
        self.lcps = create_lcps(self.layout, self.stats.child("system"))

        # Threads.
        self.interpreters: Dict[TileId, Any] = {}
        self._code_bases: Dict[Any, int] = {}

        # Clock-skew tracing (Figure 7).  The sampler appends the same
        # (mean, +dev, -dev) tuples the simulator always recorded; when
        # telemetry is on the samples also become SYNC events.
        self.skew_trace: List[Tuple[float, float, float]] = []
        if config.trace_clock_skew:
            self.scheduler.add_skew_sampler(
                ClockSkewSampler(self.skew_trace, sync_channel),
                config.skew_sample_period)

        # Metrics time-series: snapshot the counter tree on a fixed
        # scheduler cadence.
        self.metrics: Optional[MetricsRegistry] = None
        if config.telemetry.metrics_interval > 0:
            metrics_channel = (
                self.telemetry.channel(EventCategory.METRICS)
                if self.telemetry is not None else None)
            self.metrics = MetricsRegistry(
                self.stats, config.telemetry.metrics_interval,
                metrics_channel)
            self.scheduler.add_periodic_hook(
                self._sample_metrics, config.telemetry.metrics_interval)

        # Recovery log: one dict per crash-restart cycle performed by
        # the fault-tolerance driver (:mod:`repro.ckpt.recovery`);
        # empty on every undisturbed run.
        self.recoveries: List[Dict[str, Any]] = []

        # Sampling (config.sample): functional fast-forward and
        # interval sampling (:mod:`repro.sample`).  The controller is a
        # periodic hook, so execution mode only ever changes between
        # quanta — the same consistency boundary checkpoints use.
        self.exec_functional = False
        self.sample_controller = None
        if config.sample.enabled:
            from repro.sample.controller import SampleController
            sample_channel = (
                self.telemetry.channel(EventCategory.SAMPLE)
                if self.telemetry is not None else None)
            self.sample_controller = SampleController(
                self, config.sample, sample_channel)
            self.scheduler.add_periodic_hook(self.sample_controller, 1)
            if config.sample.ff_until > 0:
                self.set_execution_mode("functional")

        # Checkpointing (``--ckpt-dir``): a store when enabled, and a
        # periodic scheduler hook when a cadence is configured.  The
        # hook runs between quanta, when no thread is mid-op.
        self._ckpt_store = None
        if config.ckpt.enabled:
            from repro.ckpt.store import CheckpointStore
            self._ckpt_store = CheckpointStore(config.ckpt.dir,
                                               keep=config.ckpt.keep)
            if config.ckpt.every > 0:
                self.scheduler.add_periodic_hook(self._ckpt_hook,
                                                 config.ckpt.every)

        # Host profiling (``--profile``): the same observer trick as
        # telemetry and the sanitizers — ``None`` when disabled, so no
        # call site is wrapped and the hot paths keep their original
        # methods.  Purely observational: reads host clocks only, never
        # RNG streams or simulated time, so a profiled run produces
        # byte-identical simulation metrics.
        self.host_profile: Optional[Dict[str, Any]] = None
        self._worker_host_scopes: Optional[Dict[int, Any]] = None
        self.profiler = create_profiler(config.profile)
        if self.profiler is not None:
            from repro.profile.instrument import instrument_simulator
            instrument_simulator(self)

    def _make_transport(self) -> Transport:
        """Build the message fabric; overridden by the mp backend."""
        return Transport(self.layout, self.stats.child("transport"))

    def _configure_trace_sinks(self) -> None:
        """Give file sinks the layout facts only the simulator knows."""
        if self.telemetry is None:
            return
        tile_process = {
            t: int(self.layout.process_of_tile(TileId(t)))
            for t in range(self.config.num_tiles)}
        for sink in self.telemetry.sinks:
            if isinstance(sink, ChromeTraceSink):
                sink.clock_hz = self.config.core.clock_hz
                sink.tile_process = tile_process

    def _sample_metrics(self, scheduler: Scheduler) -> None:
        """Periodic-hook shim: snapshot the stats tree at "now".

        "Now" for a whole-simulation snapshot is the frontier of
        simulated progress — the maximum live thread clock.
        """
        assert self.metrics is not None
        clocks = scheduler.thread_clocks()
        self.metrics.sample(int(max(clocks)) if clocks else 0)

    # -- kernel interface (called by the interpreters) ---------------------------

    def charge(self, seconds: float) -> None:
        self.scheduler.charge(seconds)

    def code_base(self, program: Callable[..., Any]) -> int:
        """Stable synthetic code address for a program function."""
        return self._code_base_for(id(program))

    def _code_base_for(self, key: Any) -> int:
        """Allocate (once) a 64 KB code region for a program identity.

        Regions are handed out in first-request order, which equals
        thread spawn order — the property the distributed backend relies
        on to reproduce identical code addresses from program *keys*
        (pickled identities) instead of local object ids.
        """
        base = self._code_bases.get(key)
        if base is None:
            base = (self.space.CODE_BASE
                    + len(self._code_bases) * _CODE_REGION_BYTES)
            self._code_bases[key] = base
        return base

    def spawn_thread(self, program: Callable[..., Any], args: tuple,
                     parent_tile: Optional[TileId],
                     parent_clock: int) -> ThreadId:
        """The spawn protocol: caller -> MCP -> owning LCP -> new thread."""
        ref = program if hasattr(program, "resolve") else None
        if ref is not None:
            program = ref.resolve()
        tile = self.mcp.threads.allocate_tile()
        self.mcp.threads.register_spawn(tile)
        process = self.layout.process_of_tile(tile)
        lcp = self.lcps[ProcessId(int(process))]
        if not lcp.initialized:
            lcp.initialize_process()
        lcp.handle_spawn(tile)
        # MCP -> LCP control hop plus host thread creation.
        self.fabric.transfer(MCP_TILE, tile, MessageKind.SYSTEM, 64,
                             parent_clock)
        self.charge(self.config.host.thread_spawn_cost)
        interpreter = ThreadInterpreter(self, tile, program, args,
                                        start_clock=parent_clock)
        if ref is not None:
            interpreter.program_ref = ref
        self.interpreters[tile] = interpreter
        self.scheduler.add_thread(
            interpreter,
            start_host_time=self.scheduler.current_host_time())
        return ThreadId(int(tile))

    def thread_finished(self, tile: TileId, final_clock: int) -> None:
        self.mcp.threads.on_thread_exit(tile, final_clock)

    def wake_scheduler(self, tile: TileId) -> None:
        """Poke a possibly-blocked thread to re-check its condition."""
        if tile in self.interpreters:
            self.scheduler.wake(tile)

    # -- internal hooks -------------------------------------------------------------

    def _wake_thread(self, tile: TileId, timestamp: int) -> None:
        """System-layer wake: deliver the timestamp, then unblock."""
        interpreter = self.interpreters.get(tile)
        if interpreter is None:
            return
        # The wake notification travels MCP -> tile on the system net.
        self.fabric.transfer(MCP_TILE, tile, MessageKind.SYSTEM, 32,
                             timestamp)
        interpreter.notify_wake(timestamp)
        self.scheduler.wake(tile)

    # -- execution mode (repro.sample) ---------------------------------------

    def set_execution_mode(self, mode: str) -> None:
        """Switch between ``detailed`` and ``functional`` execution.

        Functional mode keeps every architectural state transition —
        caches, directory, backing store, message delivery — on the
        single shared code path while bypassing the timing layers: the
        cores retire at unit cost, network and DRAM latencies are zero
        and host-time charges are skipped.  Callers must only flip the
        mode between scheduler quanta (the sample controller runs as a
        periodic hook, which guarantees exactly that).
        """
        functional = mode == "functional"
        if functional == self.exec_functional:
            return
        self.exec_functional = functional
        self.engine.functional = functional
        self.fabric.functional = functional
        self.scheduler.functional = functional

    def _charge_message(self, message, locality) -> None:
        if self.sanitizers is not None:
            self.sanitizers.on_message(message)
        if self.exec_functional:
            return
        self.scheduler.charge(
            self.cost_model.message(locality, message.size_bytes))
        # Application-visible traffic blocks the waiting host thread for
        # the wire latency.  The simulator's own control plane (SYSTEM:
        # spawn, futex, syscall forwarding) is pipelined in Graphite and
        # charged CPU cost only — otherwise a 1024-thread spawn loop
        # would serialize a thousand TCP round trips through one core.
        if message.kind is MessageKind.SYSTEM:
            return
        latency = self.cost_model.message_latency(locality,
                                                  message.size_bytes)
        if latency > 0.0:
            self.scheduler.charge_blocking(latency)

    def _charge_memory_access(self) -> None:
        self.scheduler.charge(self.cost_model.memory_access())

    def _before_results(self) -> None:
        """Hook run after the engine finishes, before the stats snapshot.

        The distributed backend overrides this to fold worker-local
        statistics back into the coordinator's tree.
        """

    # -- running --------------------------------------------------------------------------

    def run(self, main_program: Any,
            args: tuple = ()) -> SimulationResult:
        """Execute ``main_program(ctx, *args)`` to completion.

        ``main_program`` is either a program callable or a *program
        reference* (an object with a ``resolve()`` method, e.g.
        :class:`repro.distrib.wire.WorkloadRef`) that builds one.
        """
        if self.profiler is not None:
            self.profiler.start_run()
        self._begin_run_span(resumed=False)
        self.spawn_thread(main_program, args, None, 0)
        return self._run_to_completion()

    def _begin_run_span(self, resumed: bool) -> None:
        if self._span_emitter is None:
            return
        self._run_span = self._span_emitter.begin(
            "sim.run", resumed=resumed,
            backend=self.config.distrib.backend,
            tiles=self.config.num_tiles)

    def resume_run(self) -> SimulationResult:
        """Continue a checkpoint-restored simulation to completion.

        The scheduler's state (core clocks, run queues, turn counter)
        and every thread's position were reinstated from the snapshot,
        so re-entering the scheduler loop picks up exactly where the
        checkpointed run left off; the result is byte-identical to the
        uninterrupted run's.
        """
        self._begin_run_span(resumed=True)
        return self._run_to_completion()

    def _run_to_completion(self) -> SimulationResult:
        report = self.scheduler.run()
        self._before_results()
        if self.profiler is not None:
            self.profiler.stop_run()
        if self._span_emitter is not None and self._run_span:
            final = max((i.core.cycles
                         for i in self.interpreters.values()),
                        default=0)
            self._span_emitter.end(self._run_span, "sim.run", t=final,
                                   outcome="done",
                                   turns=self.scheduler.turns)
            self._run_span = ""
        if self.telemetry is not None:
            # Chrome sinks render host-profiler tracks alongside the
            # target timeline; hand them the scope data before close.
            self._hand_profile_to_sinks()
            # Flush/render the sinks; the in-memory ordered stream stays
            # readable for tests and post-run analysis.
            self.telemetry.close()

        thread_cycles = {int(t): i.core.cycles
                         for t, i in self.interpreters.items()}
        thread_starts = {int(t): i.start_clock
                         for t, i in self.interpreters.items()}
        thread_instructions = {int(t): i.core.instruction_count
                               for t, i in self.interpreters.items()}
        startup = self.cost_model.process_startup(
            self.layout.num_processes)
        main_interp = self.interpreters.get(TileId(0))
        result = SimulationResult(
            simulated_cycles=max(thread_cycles.values()),
            wall_clock_seconds=report.wall_clock_seconds + startup,
            native_seconds=self._native_seconds(thread_instructions),
            thread_cycles=thread_cycles,
            thread_start_cycles=thread_starts,
            thread_instructions=thread_instructions,
            counters=self.stats.to_dict(),
            core_busy_seconds=report.core_busy_seconds,
            skew_trace=list(self.skew_trace),
            miss_breakdown=(
                {t.value: n for t, n in self.classifier.counts().items()}
                if self.classifier is not None else {}),
            main_result=main_interp.result if main_interp else None,
            recoveries=list(self.recoveries),
        )
        if self.sample_controller is not None:
            result.sample = self.sample_controller.summary(result)
        if self.profiler is not None:
            from repro.profile.report import build_profile
            self.host_profile = build_profile(
                self.profiler, result, self.config.distrib.backend,
                worker_scopes=self._worker_host_scopes,
                top_n=self.config.profile.top_n)
        return result

    # -- checkpointing ---------------------------------------------------------------------

    def _ckpt_hook(self, scheduler: Scheduler) -> None:
        """Periodic-hook shim: write one snapshot between quanta."""
        self.save_checkpoint()

    def save_checkpoint(self) -> str:
        """Write one consistent snapshot; returns its directory.

        Snapshotting is purely observational — it pickles the object
        graph without mutating it — so a checkpointing run stays
        byte-identical to a non-checkpointing one.
        """
        if self._ckpt_store is None:
            from repro.common.errors import CheckpointError
            raise CheckpointError(
                "checkpointing is not enabled (set config.ckpt.dir)")
        path = self._ckpt_store.write(
            turn=self.scheduler.turns,
            backend=self.config.distrib.backend,
            config=self.config,
            blobs=self._checkpoint_blobs())
        if self._span_emitter is not None and self._run_span:
            self._span_emitter.note(self._run_span, "checkpoint",
                                    turn=self.scheduler.turns)
        return path

    def _checkpoint_blobs(self) -> Dict[str, bytes]:
        """Blobs of one snapshot; the mp backend adds worker shards."""
        from repro.ckpt.snapshot import snapshot_bytes
        return {"coordinator": snapshot_bytes(self)}

    def _after_restore(self) -> None:
        """Fix up excised members after a snapshot is unpickled.

        The snapshot pickler excises host-side observers (telemetry
        bus/channels, profiler, sanitizers) to ``None`` — exactly the
        value every instrumented component already treats as
        "disabled" — and drops thread generators.  This hook unwraps
        the telemetry syscall tracer (its channel is gone) and replays
        every live thread's generator back to its position.
        """
        syscalls = self.mcp.syscalls
        inner = getattr(syscalls, "_inner", None)
        if inner is not None:
            self.mcp.syscalls = inner
        for interpreter in self.interpreters.values():
            rebuild = getattr(interpreter, "rebuild_generator", None)
            if rebuild is not None:
                rebuild()

    def _hand_profile_to_sinks(self) -> None:
        """Give Chrome sinks the host-profiler data (pre-close)."""
        if self.profiler is None or self.telemetry is None:
            return
        payload = {"run_ns": self.profiler.run_ns,
                   "scopes": self.profiler.scope_dict(),
                   "workers": self._worker_host_scopes or {}}
        for sink in self.telemetry.sinks:
            if isinstance(sink, ChromeTraceSink):
                sink.host_profile = payload

    def _native_seconds(self,
                        thread_instructions: Dict[int, int]) -> float:
        """Model the native run: uninstrumented, one 8-core machine.

        Threads are striped over the native machine's cores; the native
        run-time is the busiest core's instruction time (no simulation
        overheads, no instrumentation multiplier).
        """
        cores = self.config.host.cores_per_machine
        busy = [0.0] * cores
        for tile, instructions in sorted(thread_instructions.items()):
            busy[tile % cores] += self.cost_model.native_instructions(
                instructions)
        return max(busy) if busy else 0.0
