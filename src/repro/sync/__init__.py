"""Synchronization models (paper §3.6).

Graphite lets each tile's clock run independently (*lax* synchronization)
and offers two mechanisms that bound clock skew at some performance
cost: a quanta-based barrier (*LaxBarrier*) and randomized point-to-point
slack enforcement (*LaxP2P*).  This package implements all three, plus
the windowed global-progress estimator and the lax queueing model that
the network-contention and DRAM models rely on.
"""

from repro.sync.model import SyncDecision, SynchronizationModel, create_sync_model
from repro.sync.progress import ProgressEstimator
from repro.sync.queue_model import LaxQueueModel

__all__ = [
    "LaxQueueModel",
    "ProgressEstimator",
    "SyncDecision",
    "SynchronizationModel",
    "create_sync_model",
]
