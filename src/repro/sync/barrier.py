"""Quanta-based barrier synchronization — LaxBarrier (paper §3.6.2).

All active threads wait on a barrier after a configurable number of
cycles.  Very frequent barriers closely approximate cycle-accurate
simulation, which is why LaxBarrier serves as the accuracy baseline for
the paper's error measurements; the price is performance and (because a
global barrier is inherently centralized) scalability.

Threads blocked on *application* synchronization are not barrier
participants — they may be waiting on a lock held by a thread that is
itself parked at the barrier, so requiring them would deadlock.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.common.config import SyncConfig
from repro.common.stats import StatGroup
from repro.sync.model import SynchronizationModel
from repro.system.mcp import MCP_TILE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.host.scheduler import ScheduledThread


class LaxBarrierModel(SynchronizationModel):
    """Barrier every ``barrier_interval`` simulated cycles."""

    name = "lax_barrier"

    def __init__(self, config: SyncConfig, stats: StatGroup,
                 telemetry=None) -> None:
        super().__init__(config, stats, telemetry)
        self.interval = config.barrier_interval
        #: End of the current epoch; threads stop here.
        self.epoch_end = config.barrier_interval
        # Dict-as-ordered-set: _release charges a per-waiter message
        # cost in iteration order, so order must be arrival order, not
        # hash order (determinism lint D003).
        self._waiting: Dict[TileId, None] = {}
        self._barriers = stats.counter("barriers_released")
        self._arrivals = stats.counter("barrier_arrivals")

    # -- scheduler hooks -------------------------------------------------------

    def cycle_limit(self, thread: "ScheduledThread") -> Optional[int]:
        return self.epoch_end

    def on_quantum_end(self, thread: "ScheduledThread") -> None:
        if thread.task.cycles >= self.epoch_end:
            self._arrive(thread)

    def on_thread_blocked(self, thread: "ScheduledThread") -> None:
        # A thread leaving the active set may be the one everyone was
        # waiting for.
        self._maybe_release()

    def on_thread_done(self, thread: "ScheduledThread") -> None:
        self._waiting.pop(thread.tile, None)
        self._maybe_release()

    def on_thread_added(self, thread: "ScheduledThread") -> None:
        # A newly spawned thread starts at (roughly) its parent's clock;
        # it simply participates from the current epoch onward.
        pass

    def release_if_stalled(self) -> bool:
        return self._release() if self._waiting else False

    # -- barrier mechanics --------------------------------------------------------

    def _arrive(self, thread: "ScheduledThread") -> None:
        assert self.scheduler is not None
        scheduler = self.scheduler
        self._waiting[thread.tile] = None
        self._arrivals.add()
        if self.telemetry is not None:
            self.telemetry.emit("barrier_arrive", int(thread.tile),
                                thread.task.cycles,
                                {"epoch_end": self.epoch_end,
                                 "waiting": len(self._waiting)})
        scheduler.park_for_barrier(thread)
        # The gather message to the MCP travels over the system network;
        # charge its host transfer cost to the arriving thread's core.
        cost = scheduler.cost_model.message(
            scheduler.layout.locality(thread.tile, MCP_TILE), 64)
        scheduler.charge_core_of(thread, cost)
        self._maybe_release()

    def _active_threads(self) -> list:
        from repro.host.scheduler import ThreadState
        assert self.scheduler is not None
        return [t for t in self.scheduler.threads.values()
                if t.state not in (ThreadState.DONE, ThreadState.BLOCKED)]

    def _maybe_release(self) -> None:
        if not self._waiting:
            return
        from repro.host.scheduler import ThreadState
        active = self._active_threads()
        if all(t.state is ThreadState.BARRIER_WAIT for t in active):
            self._release()

    def _release(self) -> bool:
        """Open the barrier: advance the epoch and wake all waiters."""
        assert self.scheduler is not None
        scheduler = self.scheduler
        if not self._waiting:
            return False
        # The barrier completes when the last participant arrives: no
        # core may proceed before the slowest one got here.
        release_time = max(
            scheduler.core_time[int(scheduler.layout.core_of_tile(t))]
            for t in self._waiting)
        if self.telemetry is not None:
            self.telemetry.emit("barrier_release", None, self.epoch_end,
                                {"waiters": len(self._waiting),
                                 "next_epoch": self.epoch_end
                                 + self.interval})
        self.epoch_end += self.interval
        waiters, self._waiting = self._waiting, {}
        for tile in waiters:
            thread = scheduler.threads[tile]
            from repro.host.scheduler import ThreadState
            if thread.state is ThreadState.BARRIER_WAIT:
                thread.state = ThreadState.RUNNABLE
                # Release broadcast from the MCP, one message per waiter.
                cost = scheduler.cost_model.message(
                    scheduler.layout.locality(MCP_TILE, tile), 64)
                thread.ready_host_time = release_time + cost
        self._barriers.add()
        return True
