"""Plain lax synchronization (paper §3.6.1).

The most permissive model: clocks are synchronized only by application
events (locks, barriers, messages, spawn/join), which the interpreter
and system layer already handle by forwarding clocks from message
timestamps.  The model itself therefore imposes nothing — it exists so
the scheduler always has a concrete model object and so statistics are
collected uniformly.
"""

from __future__ import annotations

from repro.sync.model import SynchronizationModel


class LaxModel(SynchronizationModel):
    """Lax synchronization: let threads run freely."""

    name = "lax"
