"""Abstract synchronization model and factory (paper §3.6).

A synchronization model observes scheduler events (quantum boundaries,
thread lifecycle) and constrains execution to bound clock skew.  All
models build on lax synchronization — clocks otherwise run free and are
forwarded only at true interaction events.
"""

from __future__ import annotations

import enum
import random
from typing import Optional, TYPE_CHECKING

from repro.common.config import SyncConfig
from repro.common.errors import ConfigError
from repro.common.stats import StatGroup

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.host.scheduler import ScheduledThread, Scheduler
    from repro.telemetry.bus import Channel


class SyncDecision(enum.Enum):
    """What a model asked the scheduler to do with a thread."""

    CONTINUE = "continue"
    SLEEP = "sleep"
    BARRIER = "barrier"


class SynchronizationModel:
    """Base class: plain lax behaviour (no constraints)."""

    name = "lax"

    def __init__(self, config: SyncConfig, stats: StatGroup,
                 telemetry: Optional["Channel"] = None) -> None:
        self.config = config
        self.stats = stats
        #: SYNC-category telemetry channel, or ``None``.
        self.telemetry = telemetry
        self.scheduler: Optional["Scheduler"] = None

    def attach(self, scheduler: "Scheduler") -> None:
        """Called once by the scheduler that owns this model."""
        self.scheduler = scheduler

    # -- scheduler hooks; base class is pure lax (no-ops) ---------------------

    def on_thread_added(self, thread: "ScheduledThread") -> None:
        """A new application thread joined the simulation."""

    def on_thread_done(self, thread: "ScheduledThread") -> None:
        """A thread finished its program."""

    def on_thread_blocked(self, thread: "ScheduledThread") -> None:
        """A thread blocked on application synchronization."""

    def on_thread_woken(self, thread: "ScheduledThread") -> None:
        """A sleeping thread resumed (host-time sleep expired)."""

    def on_quantum_end(self, thread: "ScheduledThread") -> None:
        """A thread exhausted its quantum and remains runnable."""

    def cycle_limit(self, thread: "ScheduledThread") -> Optional[int]:
        """Absolute local-clock bound for the thread's next quantum."""
        return None

    def release_if_stalled(self) -> bool:
        """Last-resort progress hook when no thread is dispatchable.

        Returns True if the model unblocked something (e.g. released a
        barrier whose remaining participants are all blocked).
        """
        return False


def create_sync_model(config: SyncConfig, stats: StatGroup,
                      rng: Optional[random.Random] = None,
                      telemetry: Optional["Channel"] = None
                      ) -> SynchronizationModel:
    """Instantiate the configured synchronization model."""
    from repro.sync.barrier import LaxBarrierModel
    from repro.sync.lax import LaxModel
    from repro.sync.p2p import LaxP2PModel

    if config.model == "lax":
        return LaxModel(config, stats, telemetry)
    if config.model == "lax_barrier":
        return LaxBarrierModel(config, stats, telemetry)
    if config.model == "lax_p2p":
        if rng is None:
            # No caller-provided stream (direct construction in tests):
            # derive one from the named seed streams rather than a raw
            # hardcoded Random so the draw sequence matches a seed-0
            # Simulator and stays isolated from other consumers.
            from repro.common.rng import RngStreams
            rng = RngStreams(0).stream("lax_p2p")
        return LaxP2PModel(config, stats, rng, telemetry)
    raise ConfigError(f"unknown sync model {config.model!r}")
