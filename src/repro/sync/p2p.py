"""Point-to-point synchronization — LaxP2P (paper §3.6.3).

Each tile periodically picks another tile at random and compares clocks.
If they differ by more than the configured *slack*, the tile that is
ahead goes to sleep for a short real time: ``s = c / r`` seconds, where
``c`` is the clock difference in cycles and ``r`` the rate of simulated
progress in cycles per host second (approximated from total progress).
The scheme is completely distributed — no global structures — which is
what lets it scale where the barrier cannot.

LaxP2P prevents outliers: a thread running ahead puts itself to sleep;
a thread falling behind puts everyone who checks against it to sleep,
which quickly propagates.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, TYPE_CHECKING

from repro.common.config import SyncConfig
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.sync.model import SynchronizationModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.host.scheduler import ScheduledThread


class LaxP2PModel(SynchronizationModel):
    """Randomized pairwise slack enforcement."""

    name = "lax_p2p"

    def __init__(self, config: SyncConfig, stats: StatGroup,
                 rng: random.Random, telemetry=None) -> None:
        super().__init__(config, stats, telemetry)
        self.slack = config.p2p_slack
        self.interval = config.p2p_interval
        self._rng = rng
        #: Next local-clock value at which each tile checks.
        self._next_check: Dict[TileId, int] = {}
        self._checks = stats.counter("p2p_checks")
        self._sleeps = stats.counter("p2p_sleeps")
        self._sleep_hist = stats.histogram("p2p_sleep_seconds")

    # -- scheduler hooks -------------------------------------------------------

    def on_thread_added(self, thread: "ScheduledThread") -> None:
        self._next_check[thread.tile] = thread.task.cycles + self.interval

    def on_thread_done(self, thread: "ScheduledThread") -> None:
        self._next_check.pop(thread.tile, None)

    def cycle_limit(self, thread: "ScheduledThread") -> Optional[int]:
        return self._next_check.get(thread.tile)

    def on_quantum_end(self, thread: "ScheduledThread") -> None:
        due = self._next_check.get(thread.tile)
        if due is None or thread.task.cycles < due:
            return
        self._next_check[thread.tile] = thread.task.cycles + self.interval
        self._check(thread)

    # -- the pairwise check --------------------------------------------------------

    def _progress_rate(self) -> float:
        """Simulated cycles per host second, from total progress."""
        assert self.scheduler is not None
        scheduler = self.scheduler
        wall = max(scheduler.core_time) if scheduler.core_time else 0.0
        if wall <= 0.0:
            return 0.0
        clocks = scheduler.thread_clocks()
        if not clocks:
            return 0.0
        return (sum(clocks) / len(clocks)) / wall

    #: Hard bound on one sleep, in host seconds.  The sleep formula
    #: s = c / r diverges when most threads are inactive (r collapses
    #: towards zero while the sleeper makes no progress); real Graphite
    #: sleeps in short OS-timer quanta, so a bound is implicit there.
    MAX_SLEEP_SECONDS = 2e-4

    def _check(self, thread: "ScheduledThread") -> None:
        from repro.host.scheduler import ThreadState
        assert self.scheduler is not None
        scheduler = self.scheduler
        # Only running threads are meaningful partners: a thread blocked
        # on application synchronization has a stale clock that will
        # jump forward on wake-up, and sleeping to let it "catch up"
        # deadlocks progress.
        candidates = [t for t in scheduler.threads.values()
                      if t.tile != thread.tile
                      and t.state in (ThreadState.RUNNABLE,
                                      ThreadState.RUNNING,
                                      ThreadState.SLEEPING)]
        if not candidates:
            return
        partner = self._rng.choice(candidates)
        self._checks.add()
        # The clock exchange is a system-network round trip.
        cost = scheduler.cost_model.message(
            scheduler.layout.locality(thread.tile, partner.tile), 16)
        scheduler.charge_core_of(thread, 2 * cost)
        difference = thread.task.cycles - partner.task.cycles
        if self.telemetry is not None:
            self.telemetry.emit("p2p_check", int(thread.tile),
                                thread.task.cycles,
                                {"partner": int(partner.tile),
                                 "difference": difference})
        if difference <= self.slack:
            return
        rate = self._progress_rate()
        if rate <= 0.0:
            return
        sleep_seconds = min(difference / rate, self.MAX_SLEEP_SECONDS)
        self._sleeps.add()
        self._sleep_hist.record(sleep_seconds)
        if self.telemetry is not None:
            self.telemetry.emit("p2p_sleep", int(thread.tile),
                                thread.task.cycles,
                                {"partner": int(partner.tile),
                                 "difference": difference,
                                 "seconds": sleep_seconds})
        scheduler.sleep_thread(thread, sleep_seconds)
