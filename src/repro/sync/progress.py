"""Windowed approximation of global simulation progress.

Under lax synchronization there is no global cycle count, yet queue
models need a reference "global clock" — particularly on tiles with no
active thread, which still serve as memory controllers and network
switches.  The paper's solution (§3.6.1): keep a window of the most
recently seen message timestamps, on the order of the number of tiles,
and use their average.  Messages are frequent (every cache miss), so the
window stays current; its size suppresses outliers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque


class ProgressEstimator:
    """Sliding-window average of observed message timestamps."""

    def __init__(self, window_size: int) -> None:
        if window_size < 1:
            raise ValueError("progress window must hold at least one sample")
        self.window_size = window_size
        self._window: Deque[int] = deque(maxlen=window_size)
        self._sum = 0

    def observe(self, timestamp: int) -> None:
        """Record a message timestamp."""
        if len(self._window) == self.window_size:
            self._sum -= self._window[0]
        self._window.append(timestamp)
        self._sum += timestamp

    def estimate(self) -> float:
        """Current approximation of the global cycle count (0 if empty)."""
        if not self._window:
            return 0.0
        return self._sum / len(self._window)

    @property
    def samples(self) -> int:
        return len(self._window)
