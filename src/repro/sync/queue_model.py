"""Queueing model compatible with lax synchronization (paper §3.6.1).

A cycle-accurate simulator buffers packets and dequeues one per cycle;
that is impossible here because packets are processed immediately, out
of simulated-time order, with timestamps possibly in the past or far
future.  Instead each queue keeps an *independent clock* representing
the time when everything currently queued will have been processed:

* a packet's queueing delay is the difference between the queue clock
  and the (approximated) global clock;
* the queue clock then advances by the packet's processing time.

Error is introduced because packets are modelled out of order, but the
*aggregate* queueing delay is correct.
"""

from __future__ import annotations

from repro.common.stats import StatGroup
from repro.sync.progress import ProgressEstimator


class LaxQueueModel:
    """One contended resource (a network link, a DRAM channel).

    ``max_backlog`` bounds the modelled queue occupancy, in packets: a
    physical queue can never hold more requests than there are
    requesters in the system, so the delay of one packet is capped at
    ``max_backlog`` service times.  Without the bound, clock skew under
    lax synchronization can masquerade as queueing delay, feed the
    charged delay back into the requester's clock, and diverge.
    """

    __slots__ = ("_progress", "_queue_clock", "_delay_total",
                 "_requests", "_max_backlog")

    def __init__(self, progress: ProgressEstimator, stats: StatGroup,
                 max_backlog: int = 0) -> None:
        self._progress = progress
        self._queue_clock = 0.0
        self._max_backlog = (max_backlog if max_backlog > 0
                             else progress.window_size)
        self._delay_total = stats.counter("queue_delay_cycles")
        self._requests = stats.counter("queue_requests")

    def access(self, arrival_time: int, processing_time: int) -> int:
        """Model one packet; returns delay + service time in cycles.

        ``arrival_time`` is the packet's timestamp; it feeds the
        global-progress window since every packet is an observation of
        some tile's clock — but the delay itself is computed against
        the *windowed estimate only*, never against the individual
        timestamp.  Anchoring to a single packet's (possibly far-future)
        timestamp would let one run-ahead tile drag the queue clock
        forward and charge every later requester the clock skew as
        queueing delay — a positive feedback loop the window exists to
        prevent (paper §3.6.1: "the large window is necessary to
        eliminate outliers from overly influencing the result").
        """
        self._progress.observe(arrival_time)
        global_clock = self._progress.estimate()
        delay = max(self._queue_clock - global_clock, 0.0)
        # A bounded queue: no packet can wait behind more than
        # max_backlog others, whatever the apparent clock skew says.
        delay = min(delay, float(self._max_backlog * processing_time))
        self._queue_clock = max(self._queue_clock, global_clock) \
            + processing_time
        total = int(delay) + processing_time
        self._delay_total.add(int(delay))
        self._requests.add()
        return total

    @property
    def queue_clock(self) -> float:
        return self._queue_clock
