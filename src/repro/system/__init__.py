"""System layer: the single-process illusion (paper §3.4, §3.5).

Graphite spawns control threads — one Master Control Program (MCP) for
the whole simulation and one Local Control Program (LCP) per host
process — that provide services for synchronization, system-call
execution and thread management.  This package implements those
services: futex emulation (the substrate for locks, barriers and
condition variables), the distributed thread spawn/join protocol, and a
system-call interface with an in-memory filesystem so threads in
different host processes see one consistent set of file descriptors.
"""

from repro.system.futex import FutexManager
from repro.system.lcp import LocalControlProgram
from repro.system.mcp import MasterControlProgram
from repro.system.syscalls import SyscallInterface
from repro.system.threading_api import ThreadManager

__all__ = [
    "FutexManager",
    "LocalControlProgram",
    "MasterControlProgram",
    "SyscallInterface",
    "ThreadManager",
]
