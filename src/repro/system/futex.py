"""Futex emulation at the MCP (paper §3.4).

System calls used to implement synchronization between threads, such as
``futex``, are intercepted and forwarded to the MCP, where Graphite
emulates their behaviour.  The manager keeps one wait queue per target
address; wakes carry the waker's simulated timestamp so woken threads
forward their clocks (lax synchronization's only coupling between
tiles).

The engine is single-threaded, so the check-value-then-sleep sequence
is atomic and the classic lost-wakeup race cannot occur.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Tuple

from repro.common.ids import TileId
from repro.common.stats import StatGroup

#: Callback waking a blocked thread: (tile, wake_timestamp_cycles).
WakeFn = Callable[[TileId, int], None]


class FutexManager:
    """Wait queues keyed by target address, with timestamped wakes."""

    def __init__(self, wake_thread: WakeFn, stats: StatGroup) -> None:
        self._wake_thread = wake_thread
        self._queues: Dict[int, Deque[TileId]] = {}
        self._waits = stats.counter("futex_waits")
        self._wakes = stats.counter("futex_wakes")

    def wait(self, address: int, tile: TileId) -> None:
        """Enqueue ``tile`` on the futex at ``address``.

        The caller has already checked the futex value and decided to
        sleep; the interpreter blocks the thread after this returns.
        """
        queue = self._queues.get(address)
        if queue is None:
            queue = deque()
            self._queues[address] = queue
        if tile not in queue:
            queue.append(tile)
        self._waits.add()

    def wake(self, address: int, count: int, timestamp: int) -> List[TileId]:
        """Wake up to ``count`` waiters; returns the tiles woken.

        Waiters wake in FIFO order, each with the waker's timestamp so
        their clocks forward correctly.
        """
        queue = self._queues.get(address)
        woken: List[TileId] = []
        while queue and count > 0:
            tile = queue.popleft()
            self._wake_thread(tile, timestamp)
            woken.append(tile)
            count -= 1
            self._wakes.add()
        if queue is not None and not queue:
            del self._queues[address]
        return woken

    def cancel(self, address: int, tile: TileId) -> None:
        """Remove ``tile`` from a wait queue (thread torn down)."""
        queue = self._queues.get(address)
        if queue and tile in queue:
            queue.remove(tile)
            if not queue:
                del self._queues[address]

    def waiters(self, address: int) -> int:
        return len(self._queues.get(address, ()))

    def pending_addresses(self) -> Tuple[int, ...]:
        return tuple(self._queues)
