"""The Local Control Program (paper §2.2).

Each host process runs one LCP.  Its functional duties in real Graphite
— receiving spawn requests from the MCP, creating the host thread for a
newly assigned tile, and replicating process initialisation (stack
copying, TLS set-up) — collapse to bookkeeping in this in-memory
engine, but the protocol shape is preserved: a spawn travels
caller → MCP → owning process's LCP → new thread, and each hop is
charged through the transport layer by the caller.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.ids import ProcessId, TileId
from repro.common.stats import StatGroup
from repro.host.cluster import ClusterLayout


class LocalControlProgram:
    """Per-process control thread bookkeeping."""

    def __init__(self, process: ProcessId, layout: ClusterLayout,
                 stats: StatGroup) -> None:
        self.process = process
        self.layout = layout
        self._spawned: List[TileId] = []
        self._spawn_count = stats.counter("spawns_handled")
        self.initialized = False

    def initialize_process(self) -> None:
        """Replicate process start-up state (stack copy, TLS set-up).

        Performed once per process before any thread lands on it; the
        sequential start-up cost is charged by the host cost model.
        """
        self.initialized = True

    def handle_spawn(self, tile: TileId) -> None:
        """The MCP assigned ``tile`` (owned by this process) a thread."""
        if self.layout.process_of_tile(tile) != self.process:
            raise ValueError(
                f"LCP {int(self.process)} asked to spawn on foreign tile "
                f"{int(tile)}")
        self._spawned.append(tile)
        self._spawn_count.add()

    @property
    def threads_spawned(self) -> int:
        return len(self._spawned)


def create_lcps(layout: ClusterLayout,
                stats: StatGroup) -> Dict[ProcessId, LocalControlProgram]:
    """One LCP per host process, as in the paper."""
    return {
        ProcessId(p): LocalControlProgram(ProcessId(p), layout,
                                          stats.child(f"lcp{p}"))
        for p in range(layout.num_processes)
    }
