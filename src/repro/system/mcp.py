"""The Master Control Program (paper §2.2).

There is exactly one MCP per simulation.  It owns every service that
needs a globally consistent view: the futex wait queues, the
thread-to-tile mapping, the shared file-descriptor table, and
application barrier state.  Tiles reach it over the system network
(zero modelled latency, real host transfer cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.common.errors import TargetFault
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.memory.allocator import DynamicMemoryManager
from repro.system.futex import FutexManager
from repro.system.syscalls import SyscallInterface
from repro.system.threading_api import ThreadManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import Channel, TelemetryBus

#: Tile hosting the MCP thread (process 0's first tile).
MCP_TILE = TileId(0)

#: Simulated cycles of barrier release bookkeeping at the MCP.
BARRIER_RELEASE_CYCLES = 30

WakeFn = Callable[[TileId, int], None]


@dataclass
class _BarrierState:
    """One application barrier, keyed by its target address."""

    total: int
    arrivals: List[Tuple[TileId, int]] = field(default_factory=list)
    generation: int = 0


class _TracedSyscalls:
    """Delegating wrapper emitting one SYSCALL event per forward.

    Wraps the MCP's :class:`SyscallInterface` when telemetry is on;
    every ``execute`` (the single entry point used by the interpreter's
    syscall forwarding) is recorded before delegation.  Syscalls carry
    no simulated clock through this interface, so events use ``t=0`` —
    identical in both backends, which is what the mp trace-equivalence
    guarantee needs.
    """

    def __init__(self, inner: SyscallInterface,
                 channel: "Channel") -> None:
        self._inner = inner
        self._tele = channel

    def execute(self, name: str, args: tuple):
        # The channel is excised to ``None`` across checkpoints; a
        # restored run keeps delegating, just unobserved.
        if self._tele is not None:
            self._tele.emit("forward", None, 0, {"name": name})
        return self._inner.execute(name, args)

    def __getattr__(self, attr: str):
        if attr.startswith("_"):
            # Unpickling probes dunders (``__setstate__``...) before
            # ``_inner`` exists; delegating those would recurse forever.
            raise AttributeError(attr)
        return getattr(self._inner, attr)


class MasterControlProgram:
    """The simulation-wide control point."""

    def __init__(self, num_tiles: int, allocator: DynamicMemoryManager,
                 wake_thread: WakeFn, stats: StatGroup,
                 telemetry: Optional["TelemetryBus"] = None) -> None:
        self.num_tiles = num_tiles
        self.futex = FutexManager(wake_thread, stats.child("futex"))
        self.threads = ThreadManager(num_tiles, wake_thread,
                                     stats.child("threads"))
        self.syscalls = SyscallInterface(allocator, stats.child("syscalls"))
        self._tele_sync = None
        if telemetry is not None:
            from repro.telemetry.events import EventCategory
            self._tele_sync = telemetry.channel(EventCategory.SYNC)
            syscall_channel = telemetry.channel(EventCategory.SYSCALL)
            if syscall_channel is not None:
                self.syscalls = _TracedSyscalls(self.syscalls,
                                                syscall_channel)
        self._wake_thread = wake_thread
        self._barriers: Dict[int, _BarrierState] = {}
        self._barrier_releases = stats.counter("barrier_releases")

    # -- application barriers ----------------------------------------------------

    def barrier_arrive(self, address: int, total: int, tile: TileId,
                       clock: int) -> Optional[int]:
        """Register arrival at an application barrier.

        Returns the release timestamp if this arrival completes the
        barrier (the caller proceeds and everyone else has been woken),
        or None if the caller must block.
        """
        if total < 1:
            raise TargetFault("barrier needs at least one participant")
        state = self._barriers.get(address)
        if state is None:
            state = _BarrierState(total=total)
            self._barriers[address] = state
        elif state.total != total:
            raise TargetFault(
                f"barrier at {address:#x} reinitialised with a different "
                f"participant count ({state.total} vs {total})")
        if any(t == tile for t, _ in state.arrivals):
            raise TargetFault(
                f"tile {int(tile)} arrived twice at barrier {address:#x}")
        state.arrivals.append((tile, clock))
        if len(state.arrivals) < state.total:
            return None
        release = max(c for _, c in state.arrivals) + BARRIER_RELEASE_CYCLES
        for t, _ in state.arrivals:
            if t != tile:
                self._wake_thread(t, release)
        state.arrivals.clear()
        state.generation += 1
        self._barrier_releases.add()
        return release

    def barrier_waiting(self, address: int) -> int:
        state = self._barriers.get(address)
        return len(state.arrivals) if state else 0

    def barrier_is_waiting(self, address: int, tile: TileId) -> bool:
        """Whether ``tile`` is still registered (not yet released)."""
        state = self._barriers.get(address)
        if state is None:
            return False
        return any(t == tile for t, _ in state.arrivals)
