"""System-call interception and forwarding (paper §3.4).

Three classes of system call, as in the paper:

* **memory management** (``brk``, ``mmap``, ``munmap``) — handled by the
  dynamic memory manager;
* **process-state calls** (file I/O: ``open``, ``read``, ``write``,
  ``close``, ``lseek``, ``fstat``, ``unlink``) — forwarded to the MCP
  and executed there against one shared in-memory filesystem, so a file
  descriptor means the same thing in every host process;
* everything else would execute directly on the host — our target
  programs only use the calls above.

Each forwarded call pays a fixed simulated handling cost plus a system
network round trip to the MCP (zero modelled latency on the magic
network, but real host-time transfer cost — which is exactly why
syscall-heavy applications scale poorly across machines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.common.errors import TargetFault
from repro.common.stats import StatGroup
from repro.memory.allocator import DynamicMemoryManager

#: Simulated cycles to execute one intercepted system call at the MCP.
SYSCALL_CYCLES = 200

#: Open-mode flags (subset of O_*).
O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_CREAT = 64
O_TRUNC = 512
O_APPEND = 1024


@dataclass
class _File:
    """One file in the MCP's in-memory filesystem."""

    data: bytearray = field(default_factory=bytearray)


@dataclass
class _OpenFile:
    """One open descriptor (shared across all target threads)."""

    file: _File
    offset: int = 0
    flags: int = O_RDONLY


class SyscallInterface:
    """Executes intercepted system calls with a consistent process view."""

    def __init__(self, allocator: DynamicMemoryManager,
                 stats: StatGroup) -> None:
        self.allocator = allocator
        self._fs: Dict[str, _File] = {}
        self._fds: Dict[int, _OpenFile] = {}
        self._next_fd = 3  # 0-2 reserved for stdio
        self._calls = stats.counter("syscalls")
        self._by_name: Dict[str, object] = {}
        self._stats = stats

    def _count(self, name: str) -> None:
        self._calls.add()
        counter = self._by_name.get(name)
        if counter is None:
            counter = self._stats.counter(f"sys_{name}")
            self._by_name[name] = counter
        counter.add()  # type: ignore[attr-defined]

    # -- memory management -------------------------------------------------------

    def sys_brk(self, new_break: int) -> int:
        self._count("brk")
        return self.allocator.brk(new_break)

    def sys_mmap(self, length: int) -> int:
        self._count("mmap")
        return self.allocator.mmap(length)

    def sys_munmap(self, base: int, length: int) -> None:
        self._count("munmap")
        self.allocator.munmap(base, length)

    # -- file I/O (executed at the MCP) ----------------------------------------------

    def sys_open(self, path: str, flags: int = O_RDONLY) -> int:
        self._count("open")
        file = self._fs.get(path)
        if file is None:
            if not flags & O_CREAT:
                raise TargetFault(f"open of missing file {path!r}")
            file = _File()
            self._fs[path] = file
        if flags & O_TRUNC:
            file.data.clear()
        handle = _OpenFile(file=file, flags=flags)
        if flags & O_APPEND:
            handle.offset = len(file.data)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = handle
        return fd

    def _handle(self, fd: int) -> _OpenFile:
        handle = self._fds.get(fd)
        if handle is None:
            raise TargetFault(f"bad file descriptor {fd}")
        return handle

    def sys_read(self, fd: int, count: int) -> bytes:
        self._count("read")
        handle = self._handle(fd)
        data = bytes(handle.file.data[handle.offset:handle.offset + count])
        handle.offset += len(data)
        return data

    def sys_write(self, fd: int, data: bytes) -> int:
        self._count("write")
        if fd in (1, 2):  # stdout/stderr: swallow, report success
            return len(data)
        handle = self._handle(fd)
        end = handle.offset + len(data)
        if end > len(handle.file.data):
            handle.file.data.extend(b"\0" * (end - len(handle.file.data)))
        handle.file.data[handle.offset:end] = data
        handle.offset = end
        return len(data)

    def sys_lseek(self, fd: int, offset: int, whence: int = 0) -> int:
        self._count("lseek")
        handle = self._handle(fd)
        if whence == 0:
            new = offset
        elif whence == 1:
            new = handle.offset + offset
        elif whence == 2:
            new = len(handle.file.data) + offset
        else:
            raise TargetFault(f"bad lseek whence {whence}")
        if new < 0:
            raise TargetFault("lseek to negative offset")
        handle.offset = new
        return new

    def sys_fstat(self, fd: int) -> Dict[str, int]:
        self._count("fstat")
        handle = self._handle(fd)
        return {"st_size": len(handle.file.data)}

    def sys_close(self, fd: int) -> None:
        self._count("close")
        if fd not in self._fds:
            raise TargetFault(f"close of bad file descriptor {fd}")
        del self._fds[fd]

    def sys_unlink(self, path: str) -> None:
        self._count("unlink")
        if path not in self._fs:
            raise TargetFault(f"unlink of missing file {path!r}")
        del self._fs[path]

    # -- dispatch -----------------------------------------------------------------------

    def execute(self, name: str, args: Tuple) -> object:
        """Dynamic dispatch used by the ``Syscall`` front-end op."""
        handler = getattr(self, f"sys_{name}", None)
        if handler is None:
            raise TargetFault(f"unsupported system call {name!r}")
        return handler(*args)

    @property
    def open_descriptors(self) -> int:
        return len(self._fds)
