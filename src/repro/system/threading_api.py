"""Distributed thread spawn/join management (paper §3.5).

Spawn calls are intercepted at the caller and forwarded to the MCP to
keep the thread-to-tile mapping consistent; the MCP chooses an
available tile and forwards the request to the LCP of the process that
owns it.  Threads are long-lived (they run to completion without being
swapped out) and the number of live threads may never exceed the number
of target tiles.  Join synchronizes through the MCP and forwards the
joiner's clock to the joined thread's final clock.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.errors import TargetFault
from repro.common.ids import TileId
from repro.common.stats import StatGroup

#: Callback waking a blocked thread: (tile, wake_timestamp_cycles).
WakeFn = Callable[[TileId, int], None]


class ThreadManager:
    """MCP-side bookkeeping of the thread-to-tile mapping."""

    def __init__(self, num_tiles: int, wake_thread: WakeFn,
                 stats: StatGroup) -> None:
        self.num_tiles = num_tiles
        self._wake_thread = wake_thread
        self._live: Dict[TileId, bool] = {}
        #: Final simulated clock of finished threads.
        self._final_clock: Dict[TileId, int] = {}
        #: tiles of threads waiting to join a given child tile.
        self._joiners: Dict[TileId, List[TileId]] = {}
        self._spawned = stats.counter("threads_spawned")
        self._joined = stats.counter("threads_joined")

    # -- spawn -------------------------------------------------------------------

    def allocate_tile(self) -> TileId:
        """Pick an available tile for a new thread (MCP's choice)."""
        for t in range(self.num_tiles):
            tile = TileId(t)
            if not self._live.get(tile, False) and \
                    tile not in self._final_clock:
                return tile
        # Allow reuse of tiles whose previous thread completed.
        for t in range(self.num_tiles):
            tile = TileId(t)
            if not self._live.get(tile, False):
                self._final_clock.pop(tile, None)
                return tile
        raise TargetFault(
            "thread limit reached: the maximum number of threads may "
            "not exceed the total number of tiles")

    def register_spawn(self, tile: TileId) -> None:
        self._live[tile] = True
        self._spawned.add()

    # -- exit / join ----------------------------------------------------------------

    def on_thread_exit(self, tile: TileId, final_clock: int) -> None:
        """A thread finished; wake anyone joining it."""
        self._live[tile] = False
        self._final_clock[tile] = final_clock
        for joiner in self._joiners.pop(tile, []):
            self._wake_thread(joiner, final_clock)
        self._joined.add()

    def try_join(self, joiner: TileId, target: TileId
                 ) -> Optional[int]:
        """Join attempt: final clock if ``target`` finished, else None.

        On None the caller blocks; it is registered and will be woken
        with the child's final clock.
        """
        if target == joiner:
            raise TargetFault("a thread cannot join itself")
        final = self._final_clock.get(target)
        if final is not None:
            return final
        if not self._live.get(target, False):
            raise TargetFault(
                f"join of tile {int(target)} which was never spawned")
        self._joiners.setdefault(target, []).append(joiner)
        return None

    def final_clock(self, tile: TileId) -> Optional[int]:
        """Final clock of a finished thread, or None if still running."""
        return self._final_clock.get(tile)

    # -- introspection ------------------------------------------------------------------

    def live_count(self) -> int:
        return sum(1 for alive in self._live.values() if alive)

    def is_live(self, tile: TileId) -> bool:
        return self._live.get(tile, False)
