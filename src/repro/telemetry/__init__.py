"""repro.telemetry: event tracing and metrics observability.

The subsystem the paper's evaluation implicitly depends on: clock-skew
traces (Figure 7), sync-model behaviour (Table 3) and host scaling
(Figure 4) all require sampling simulator state *while* the simulation
runs.  Four pieces:

* :mod:`repro.telemetry.events` / :mod:`repro.telemetry.bus` — a typed
  event bus with per-subsystem enable masks, costing a single ``is not
  None`` check on every instrumented hot path when disabled;
* :mod:`repro.telemetry.registry` — cadenced snapshots of the
  :mod:`repro.common.stats` tree into time-series;
* :mod:`repro.telemetry.sinks` / :mod:`repro.telemetry.chrome` — JSONL,
  Chrome trace-event (``chrome://tracing`` / Perfetto) and in-memory
  sinks;
* :mod:`repro.telemetry.aggregate` — batching and merging of worker
  telemetry for the mp backend (one coherent, timestamp-ordered stream
  at the coordinator).

See ``docs/observability.md`` for the event taxonomy and sink formats.
"""

from repro.telemetry.aggregate import TelemetryBatch, merge_batch, order_events
from repro.telemetry.bus import Channel, TelemetryBus, create_bus
from repro.telemetry.chrome import ChromeTraceSink, write_chrome_trace
from repro.telemetry.events import (
    ALL_CATEGORIES,
    Event,
    EventCategory,
    parse_event_mask,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sinks import JsonlTraceSink, LoggerSink, MemorySink, Sink
from repro.telemetry.skew import ClockSkewSampler

__all__ = [
    "ALL_CATEGORIES",
    "Channel",
    "ChromeTraceSink",
    "ClockSkewSampler",
    "Event",
    "EventCategory",
    "JsonlTraceSink",
    "LoggerSink",
    "MemorySink",
    "MetricsRegistry",
    "Sink",
    "TelemetryBatch",
    "TelemetryBus",
    "create_bus",
    "merge_batch",
    "order_events",
    "parse_event_mask",
    "write_chrome_trace",
]
