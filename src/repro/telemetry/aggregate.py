"""Distributed telemetry aggregation for the mp backend.

Each worker process runs its own sink-less bus and periodically drains
it into a :class:`TelemetryBatch` — the events plus the worker's local
histogram reservoirs — shipped to the coordinator inside a
``TELEMETRY`` wire frame.  The coordinator absorbs batches into its
own bus (stamping each event's ``origin``) and folds the histogram
states into the master statistics tree, yielding one coherent,
timestamp-ordered stream identical in content to an in-process run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.common.stats import StatGroup
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.events import Event


@dataclass
class TelemetryBatch:
    """One worker's drained telemetry, as carried on the wire.

    ``worker`` is the 0-based worker index; the coordinator maps it to
    event origin ``worker + 1`` (origin 0 is the coordinator itself).
    ``histograms`` uses the ``StatGroup.histogram_states`` flat format
    and is normally only populated on the final (collection) batch.
    """

    worker: int
    events: List[Event] = field(default_factory=list)
    histograms: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.events)


def merge_batch(bus: Optional[TelemetryBus], stats: Optional[StatGroup],
                batch: TelemetryBatch) -> int:
    """Absorb one worker batch at the coordinator; returns event count.

    Tolerates a ``None`` bus (a worker can race a final flush against
    a coordinator whose telemetry is disabled) by dropping events while
    still folding histogram state into ``stats``.
    """
    count = 0
    if bus is not None:
        count = bus.absorb(batch.events, origin=batch.worker + 1)
    if stats is not None and batch.histograms:
        stats.merge_histogram_states(batch.histograms)
    return count


def order_events(events: Iterable[Event]) -> List[Event]:
    """Deterministic total order: ``(t, origin, seq)``.

    The standalone counterpart of ``TelemetryBus.ordered_events`` for
    event lists that never passed through a bus (trace files, tests).
    """
    return sorted(events, key=lambda e: (e.t, e.origin, e.seq))
