"""The event bus: fan-out point between emission sites and sinks.

Zero-overhead-when-disabled contract: :func:`create_bus` returns
``None`` unless telemetry is enabled, and every instrumented component
resolves its :class:`Channel` once at construction time — a disabled
category resolves to ``None``, so the per-event cost on a cold path is
one attribute test.  When enabled, ``Channel.emit`` builds the event,
appends it to the bus's in-memory store and hands it to every sink.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Tuple

from repro.telemetry.events import Event, EventCategory, parse_event_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.config import TelemetryConfig
    from repro.telemetry.sinks import Sink


class Channel:
    """One category's pre-resolved handle onto the bus.

    Emission sites hold a channel (or ``None``); the category is baked
    in so the hot path never re-checks the enable mask.
    """

    __slots__ = ("_bus", "category")

    def __init__(self, bus: "TelemetryBus", category: int) -> None:
        self._bus = bus
        self.category = int(category)

    def emit(self, name: str, tile: Optional[int], t: int,
             args: Optional[dict] = None) -> None:
        self._bus.emit(self.category, name, tile, t, args)


class TelemetryBus:
    """Event hub: enable mask, in-memory store, attached sinks."""

    def __init__(self, mask: int) -> None:
        self.mask = mask
        self.sinks: List["Sink"] = []
        self.events: List[Event] = []
        self._seq = 0
        #: Events absorbed from remote processes (mp aggregation).
        self.absorbed = 0
        #: Observers see events without recording them: categories in
        #: ``observer_mask`` but not ``mask`` are built and handed to
        #: observers, yet never enter the store, the sinks or the
        #: sequence numbering — so the recorded trace is byte-identical
        #: whether observers (e.g. the runtime sanitizers) are attached
        #: or not.
        self.observer_mask = 0
        self._observers: List[Tuple[int, Callable[[Event], None]]] = []

    # -- wiring --------------------------------------------------------------

    def enabled_for(self, category: int) -> bool:
        return bool((self.mask | self.observer_mask) & int(category))

    def channel(self, category: EventCategory) -> Optional[Channel]:
        """The category's channel, or ``None`` when masked off."""
        if not self.enabled_for(category):
            return None
        return Channel(self, category)

    def subscribe(self, sink: "Sink") -> "Sink":
        self.sinks.append(sink)
        return sink

    def observe(self, observer: Callable[[Event], None],
                mask: int) -> None:
        """Attach an observer for the categories in ``mask``.

        Must be attached before emission sites resolve their channels:
        ``channel()`` considers the observer mask, so late attachment
        would miss sites that already resolved to ``None``.
        """
        self._observers.append((int(mask), observer))
        self.observer_mask |= int(mask)

    # -- emission ------------------------------------------------------------

    def emit(self, category: int, name: str, tile: Optional[int],
             t: int, args: Optional[dict] = None) -> None:
        recorded = bool(self.mask & category)
        if not recorded and not (self.observer_mask & category):
            return
        event = Event(category, name, tile, t, args, seq=self._seq)
        if recorded:
            self._seq += 1
            self.events.append(event)
            for sink in self.sinks:
                sink.handle(event)
        for mask, observer in self._observers:
            if mask & category:
                observer(event)

    def absorb(self, events: Iterable[Event], origin: int) -> int:
        """Merge remote events into this bus (mp aggregation).

        Remote events keep their own ``seq`` (their process-local
        emission order) and are stamped with ``origin`` so the merged
        stream totally orders by ``(t, origin, seq)``.
        """
        count = 0
        for event in events:
            event.origin = origin
            self.events.append(event)
            for sink in self.sinks:
                sink.handle(event)
            for mask, observer in self._observers:
                if mask & event.category:
                    observer(event)
            count += 1
        self.absorbed += count
        return count

    # -- consumption ---------------------------------------------------------

    def ordered_events(self) -> List[Event]:
        """The merged stream, timestamp-ordered.

        Sorted by simulated time first, then by emitting process and
        its emission order — a deterministic total order for any fixed
        set of events.
        """
        return sorted(self.events,
                      key=lambda e: (e.t, e.origin, e.seq))

    def drain_pending(self) -> List[Event]:
        """Remove and return locally emitted events (worker batching)."""
        pending, self.events = self.events, []
        return pending

    def close(self) -> None:
        """Flush and close every sink (ordered store stays readable)."""
        for sink in self.sinks:
            sink.close(self)


def create_bus(config: "TelemetryConfig",
               with_sinks: bool = True) -> Optional[TelemetryBus]:
    """Build the bus for a configuration; ``None`` when disabled.

    File sinks named by ``trace_path`` are attached here so every
    entry point shares one construction path; mp workers — which only
    batch events over the wire — pass ``with_sinks=False`` so a worker
    never opens the coordinator's trace file.
    """
    if not config.enabled:
        return None
    bus = TelemetryBus(parse_event_mask(config.events))
    if with_sinks and config.trace_path:
        from repro.telemetry.chrome import ChromeTraceSink
        from repro.telemetry.sinks import JsonlTraceSink
        fmt = config.resolved_trace_format()
        if fmt == "chrome":
            bus.subscribe(ChromeTraceSink(config.trace_path))
        else:
            bus.subscribe(JsonlTraceSink(config.trace_path))
    return bus
