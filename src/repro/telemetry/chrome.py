"""Chrome trace-event exporter (``chrome://tracing`` / Perfetto).

Maps the simulator onto the trace-event JSON format [1]: host
processes become trace *processes*, tiles become *tracks* (threads),
scheduler quanta become duration (``X``) events on their tile's track,
network messages become flow (``s``/``f``) arrows from source to
destination tile, DRAM queue occupancy becomes counter (``C``) series,
and everything else renders as instant (``i``) events.  Time is the
*simulated* clock, scaled so one target cycle at the configured clock
is its real duration in microseconds — the timeline a cycle-accurate
simulator would show.

[1] https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.common.log import get_logger
from repro.telemetry.events import Event, EventCategory
from repro.telemetry.sinks import Sink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import TelemetryBus

#: Track id used for events that belong to no tile (MCP, registry).
SIM_TRACK = 1_000_000

#: Trace process id of the host-profiler view (``--profile``): host
#: wall time renders as its own process so Perfetto shows target time
#: and host time on one timeline without conflating their clocks.
HOST_PID = 2_000_000

#: Worker utilization tracks start at this tid within HOST_PID.
_HOST_WORKER_TRACK = 1000

#: Trace process id of the span-tree view (:mod:`repro.obs`): job
#: lifecycle spans render as async nestable events in their own
#: process so the causal tree sits beside the per-tile timeline.
OBS_PID = 3_000_000


def _us(cycles: float, clock_hz: float) -> float:
    return cycles * 1e6 / clock_hz


def _host_profile_records(host_profile: Dict) -> List[dict]:
    """Render a host-profiler export as trace records under HOST_PID.

    Each subsystem scope becomes a track holding one duration slice of
    its *self* time (a flame-bar of where host wall time went); each mp
    worker becomes a track with consecutive busy and idle slices.
    Timestamps are host microseconds, anchored at zero.
    """
    from repro.profile.report import summarize_worker

    records: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": HOST_PID,
         "args": {"name": "host profiler (wall time)"}}]
    scopes = host_profile.get("scopes", {})
    ranked = sorted(scopes.items(),
                    key=lambda item: (-item[1]["self_ns"], item[0]))
    for tid, (name, row) in enumerate(ranked):
        records.append({"name": "thread_name", "ph": "M",
                        "pid": HOST_PID, "tid": tid,
                        "args": {"name": name}})
        records.append({
            "name": name, "cat": "host", "ph": "X",
            "pid": HOST_PID, "tid": tid, "ts": 0.0,
            "dur": row["self_ns"] / 1e3,
            "args": {"calls": row["calls"],
                     "cum_ms": row["cum_ns"] / 1e6,
                     "self_ms": row["self_ns"] / 1e6}})
    for index, scope_dict in sorted(host_profile.get("workers",
                                                     {}).items()):
        summary = summarize_worker(scope_dict)
        tid = _HOST_WORKER_TRACK + int(index)
        busy_us = summary["busy_seconds"] * 1e6
        idle_us = summary["idle_seconds"] * 1e6
        records.append({"name": "thread_name", "ph": "M",
                        "pid": HOST_PID, "tid": tid,
                        "args": {"name": f"worker {index} host"}})
        records.append({
            "name": "busy", "cat": "host", "ph": "X",
            "pid": HOST_PID, "tid": tid, "ts": 0.0, "dur": busy_us,
            "args": {"utilization": summary["utilization"],
                     "serialize_ms":
                         summary["serialize_seconds"] * 1e3}})
        records.append({
            "name": "idle", "cat": "host", "ph": "X",
            "pid": HOST_PID, "tid": tid, "ts": busy_us,
            "dur": idle_us, "args": {}})
    return records


def write_chrome_trace(events: Iterable[Event], path: str,
                       clock_hz: float = 1e9,
                       tile_process: Optional[Dict[int, int]] = None,
                       host_profile: Optional[Dict] = None,
                       ) -> int:
    """Write ``events`` as a Chrome trace; returns the event count.

    ``tile_process`` maps tiles onto host processes (the mp backend's
    shards); unmapped tiles land in process 0.
    """
    tile_process = tile_process or {}
    out: List[dict] = []
    seen_tracks = set()

    def track(tile: Optional[int]) -> tuple:
        if tile is None:
            return 0, SIM_TRACK
        return tile_process.get(tile, 0), tile

    def base(event: Event, pid: int, tid: int) -> dict:
        return {"name": event.name, "cat": event.category_name,
                "pid": pid, "tid": tid,
                "ts": _us(event.t, clock_hz)}

    for event in events:
        pid, tid = track(event.tile)
        seen_tracks.add((pid, tid))
        category = event.category
        if category == EventCategory.QUANTUM and event.name == "quantum":
            record = base(event, pid, tid)
            record["ph"] = "X"
            record["dur"] = _us(
                max(int(event.args.get("cycles", event.t)) - event.t, 0),
                clock_hz)
            record["args"] = dict(event.args)
            out.append(record)
        elif category == EventCategory.NETWORK and event.name == "msg":
            src = event.args.get("src")
            dst = event.args.get("dst")
            latency = int(event.args.get("latency", 0))
            flow_id = f"{event.origin}.{event.seq}"
            spid, stid = track(src)
            dpid, dtid = track(dst)
            seen_tracks.add((spid, stid))
            seen_tracks.add((dpid, dtid))
            start = {"name": "msg", "cat": "network", "ph": "s",
                     "id": flow_id, "pid": spid, "tid": stid,
                     "ts": _us(event.t, clock_hz),
                     "args": dict(event.args)}
            finish = {"name": "msg", "cat": "network", "ph": "f",
                      "bp": "e", "id": flow_id, "pid": dpid, "tid": dtid,
                      "ts": _us(event.t + latency, clock_hz)}
            out.extend((start, finish))
        elif category == EventCategory.OBS and \
                event.name in ("span.begin", "span.end", "span.note"):
            # Async nestable events: one Perfetto track group per
            # trace id, spans correlated by their deterministic ids.
            phase = {"span.begin": "b", "span.end": "e",
                     "span.note": "n"}[event.name]
            record = {
                "name": event.args.get("op",
                                       event.args.get("note", "span")),
                "cat": "obs", "ph": phase,
                "id": event.args.get("span", ""),
                "scope": event.args.get("trace", ""),
                "pid": OBS_PID, "tid": 0,
                "ts": _us(event.t, clock_hz),
                "args": dict(event.args)}
            out.append(record)
            seen_tracks.add((OBS_PID, 0))
        elif category == EventCategory.DRAM:
            record = base(event, pid, tid)
            record["ph"] = "C"
            record["name"] = f"dram{event.tile}.queue"
            record["args"] = {
                "occupancy": event.args.get("occupancy", 0)}
            out.append(record)
        else:
            record = base(event, pid, tid)
            record["ph"] = "i"
            record["s"] = "t"
            record["args"] = dict(event.args)
            out.append(record)

    metadata: List[dict] = []
    for pid in sorted({p for p, _ in seen_tracks}):
        pname = ("job spans (repro.obs)" if pid == OBS_PID
                 else f"host process {pid}")
        metadata.append({"name": "process_name", "ph": "M", "pid": pid,
                         "args": {"name": pname}})
    for pid, tid in sorted(seen_tracks):
        if pid == OBS_PID:
            label = "spans"
        elif tid == SIM_TRACK:
            label = "simulator"
        else:
            label = f"tile {tid}"
        metadata.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": label}})

    host_records: List[dict] = []
    if host_profile is not None:
        host_records = _host_profile_records(host_profile)

    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": metadata + out + host_records,
                   "displayTimeUnit": "ns"},
                  handle, separators=(",", ":"), default=repr)
    return len(out) + len(host_records)


class ChromeTraceSink(Sink):
    """Buffers nothing: renders the bus's ordered stream at close.

    The Chrome format is order-insensitive, but flow arrows and
    counters come out cleaner from the merged, timestamp-ordered
    stream — which only exists once mp workers have flushed their
    final batches.
    """

    def __init__(self, path: str, clock_hz: float = 1e9) -> None:
        self.path = path
        self.clock_hz = clock_hz
        #: Tile -> host process mapping; the simulator fills this in.
        self.tile_process: Dict[int, int] = {}
        #: Host-profiler export (``--profile``); the simulator hands it
        #: over just before close so host wall-time tracks render on
        #: the same Perfetto timeline as the target events.
        self.host_profile: Optional[Dict] = None
        self.events_written = 0
        self._log = get_logger("telemetry.chrome")

    def handle(self, event: Event) -> None:
        pass  # everything happens at close, from the ordered store

    def close(self, bus: "TelemetryBus") -> None:
        self.events_written = write_chrome_trace(
            bus.ordered_events(), self.path, clock_hz=self.clock_hz,
            tile_process=self.tile_process,
            host_profile=self.host_profile)
        self._log.debug("chrome trace written: %s (%d records)",
                        self.path, self.events_written)
