"""Typed telemetry events and the per-subsystem category masks.

Every observable happening in the simulator is one :class:`Event` in
one :class:`EventCategory`.  Categories form a bitmask so a run can
enable exactly the subsystems under study (``config.telemetry.events``)
and every other emission site stays a dead ``None`` check.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Optional, Tuple

from repro.common.errors import ConfigError


class EventCategory(enum.IntFlag):
    """Bitmask of instrumented subsystems (the event taxonomy)."""

    #: Scheduler quantum boundaries: one event per executed quantum.
    QUANTUM = 0x01
    #: Cache misses, fills, evictions and invalidations.
    CACHE = 0x02
    #: Directory state transitions, pointer evictions, software traps.
    DIRECTORY = 0x04
    #: Network routing: per-packet hop/latency plus message flows.
    NETWORK = 0x08
    #: DRAM controller queue occupancy per request.
    DRAM = 0x10
    #: Synchronization: barrier epochs, P2P checks/sleeps, core sync
    #: stalls, clock-skew samples.
    SYNC = 0x20
    #: System calls forwarded to the MCP.
    SYSCALL = 0x40
    #: Worker lifecycle in the mp backend (start, spawn, stop).
    WORKER = 0x80
    #: Cadenced metrics-registry snapshots.
    METRICS = 0x100
    #: Simulation-service lifecycle (:mod:`repro.serve`): job
    #: submissions, cache hits, preemptions, worker deaths.
    SERVE = 0x200
    #: Multi-host membership (:mod:`repro.net`): worker.joined,
    #: worker.left, worker.migrated (live shard migration).
    NET = 0x400
    #: Observability spans and warnings (:mod:`repro.obs`):
    #: span.begin/span.end/span.note with trace context, plus the
    #: straggler watchdog's straggler.warn.
    OBS = 0x800
    #: Checkpoint-accelerated sampling (:mod:`repro.sample`): execution
    #: mode switches, fast-forward completion, measurement windows,
    #: snapshot-library hits and primes.
    SAMPLE = 0x1000


#: Every category, i.e. the mask for ``events: ["all"]``.
ALL_CATEGORIES = 0
for _category in EventCategory:
    ALL_CATEGORIES |= _category.value

_BY_NAME: Dict[str, int] = {c.name.lower(): c.value for c in EventCategory}


def parse_event_mask(names: Iterable[str]) -> int:
    """Resolve category names (``"cache"``, ``"all"``) into a bitmask."""
    mask = 0
    for name in names:
        key = str(name).strip().lower()
        if key == "all":
            return ALL_CATEGORIES
        bit = _BY_NAME.get(key)
        if bit is None:
            raise ConfigError(
                f"telemetry: unknown event category {name!r} "
                f"(choose from {sorted(_BY_NAME)} or 'all')")
        mask |= bit
    return mask


class Event:
    """One telemetry event.

    ``t`` is the simulated timestamp in target cycles (0 when the
    emission site has no simulated clock in scope); ``seq`` is the
    per-process emission order assigned by the bus; ``origin`` names
    the emitting process (0 = coordinator/in-process, ``1 + worker``
    for mp workers) and is stamped during distributed aggregation.
    """

    __slots__ = ("category", "name", "tile", "t", "args", "seq", "origin")

    def __init__(self, category: int, name: str, tile: Optional[int],
                 t: int, args: Optional[dict] = None, seq: int = 0,
                 origin: int = 0) -> None:
        self.category = int(category)
        self.name = name
        self.tile = tile
        self.t = t
        self.args = args if args is not None else {}
        self.seq = seq
        self.origin = origin

    @property
    def category_name(self) -> str:
        try:
            return EventCategory(self.category).name.lower()
        except ValueError:  # pragma: no cover - defensive
            return f"0x{self.category:x}"

    def content_key(self) -> Tuple:
        """Backend-independent identity: what the event *says*.

        Excludes ``seq`` and ``origin`` (emission bookkeeping that
        legitimately differs between the inproc and mp backends).
        """
        return (self.t, self.category, self.name,
                -1 if self.tile is None else self.tile,
                tuple(sorted((k, repr(v)) for k, v in self.args.items())))

    def to_dict(self) -> dict:
        return {
            "cat": self.category_name,
            "name": self.name,
            "tile": self.tile,
            "t": self.t,
            "args": dict(self.args),
            "seq": self.seq,
            "origin": self.origin,
        }

    # Events cross the mp wire inside TELEMETRY batches.

    def __getstate__(self) -> tuple:
        return (self.category, self.name, self.tile, self.t, self.args,
                self.seq, self.origin)

    def __setstate__(self, state: tuple) -> None:
        (self.category, self.name, self.tile, self.t, self.args,
         self.seq, self.origin) = state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.__getstate__() == other.__getstate__()

    def __hash__(self) -> int:
        return hash((self.category, self.name, self.tile, self.t,
                     self.seq, self.origin))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = "" if self.tile is None else f" tile={self.tile}"
        return (f"Event({self.category_name}.{self.name}{where} "
                f"t={self.t} {self.args})")
