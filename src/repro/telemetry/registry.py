"""Cadenced metrics snapshots of the simulator's statistics tree.

The :class:`MetricsRegistry` turns the instantaneous counters of
:mod:`repro.common.stats` into *time series*: every ``interval``
scheduler turns it walks the tree, appends each counter's current
value to a per-path :class:`~repro.common.stats.TimeSeries`, and
snapshots each histogram's moments and quantiles.  That is what lets a
single run answer rate questions ("how did miss rate evolve as the
working set warmed up?") that end-of-run totals cannot.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.stats import StatGroup, TimeSeries
from repro.telemetry.bus import Channel


class MetricsRegistry:
    """Samples a :class:`StatGroup` tree on a fixed cadence.

    Driven by a scheduler periodic hook (see
    ``Scheduler.add_periodic_hook``); ``sample`` receives the current
    simulated timestamp.  When a ``metrics`` channel is supplied each
    sample also lands on the event bus, so traces interleave metric
    snapshots with the raw event stream.
    """

    #: Quantiles captured per histogram snapshot.
    QUANTILES = (0.5, 0.95)

    def __init__(self, stats: StatGroup, interval: int,
                 channel: Optional[Channel] = None) -> None:
        self.stats = stats
        self.interval = interval
        self.series: Dict[str, TimeSeries] = {}
        self.histogram_series: Dict[str, List[dict]] = {}
        self.samples_taken = 0
        self._channel = channel

    def sample(self, t: int) -> None:
        """Snapshot every counter and histogram at simulated time ``t``."""
        counters = 0
        for path, counter in self.stats.walk():
            series = self.series.get(path)
            if series is None:
                series = TimeSeries(path)
                self.series[path] = series
            series.record(t, counter.value)
            counters += 1
        for path, hist in self.stats.walk_histograms():
            snapshot = {"t": t, "count": hist.count, "mean": hist.mean,
                        "min": hist.min, "max": hist.max}
            for q in self.QUANTILES:
                snapshot[f"p{int(q * 100)}"] = hist.quantile(q)
            self.histogram_series.setdefault(path, []).append(snapshot)
        self.samples_taken += 1
        if self._channel is not None:
            self._channel.emit("sample", None, int(t),
                               {"n": self.samples_taken,
                                "counters": counters})

    def to_dict(self) -> dict:
        """Plain-dict summary (results/report plumbing)."""
        return {
            "interval": self.interval,
            "samples": self.samples_taken,
            "series": {path: list(zip(s.times, s.values))
                       for path, s in sorted(self.series.items())},
            "histograms": {path: list(snaps) for path, snaps
                           in sorted(self.histogram_series.items())},
        }
