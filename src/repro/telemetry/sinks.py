"""Event sinks: where the bus delivers events.

Three shapes cover the use cases: :class:`MemorySink` for tests and
programmatic analysis, :class:`JsonlTraceSink` for durable streaming
traces, and :class:`LoggerSink` for piggybacking on the namespaced
``repro.*`` loggers of :mod:`repro.common.log` (so ``enable_tracing``
surfaces telemetry alongside ordinary debug output).  The Chrome
trace-event exporter lives in :mod:`repro.telemetry.chrome`.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, TYPE_CHECKING

from repro.common.log import get_logger
from repro.telemetry.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import TelemetryBus


class Sink:
    """Base sink: receives every enabled event, in emission order."""

    def handle(self, event: Event) -> None:
        raise NotImplementedError

    def close(self, bus: "TelemetryBus") -> None:
        """End of run; ``bus.ordered_events()`` offers the full stream."""


class MemorySink(Sink):
    """Collects events in a list (tests, notebooks)."""

    def __init__(self) -> None:
        self.events: List[Event] = []
        self.closed = False

    def handle(self, event: Event) -> None:
        self.events.append(event)

    def close(self, bus: "TelemetryBus") -> None:
        self.closed = True

    def __len__(self) -> int:
        return len(self.events)


class JsonlTraceSink(Sink):
    """Streams events as one JSON object per line.

    Lines appear in *emission* order (absorbed worker batches arrive
    late); each line carries ``t``/``origin``/``seq`` so a consumer can
    reconstruct the timestamp-ordered stream with a single sort.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._file: Optional[IO[str]] = None
        self._log = get_logger("telemetry.jsonl")
        self.lines_written = 0

    def _ensure_open(self) -> IO[str]:
        if self._file is None:
            self._file = open(self.path, "w", encoding="utf-8")
            self._log.debug("trace opened: %s", self.path)
        return self._file

    def handle(self, event: Event) -> None:
        out = self._ensure_open()
        json.dump(event.to_dict(), out, separators=(",", ":"),
                  sort_keys=True, default=repr)
        out.write("\n")
        self.lines_written += 1

    def close(self, bus: "TelemetryBus") -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
            self._log.debug("trace closed: %s (%d events)",
                            self.path, self.lines_written)


class LoggerSink(Sink):
    """Re-emits events onto the namespaced simulator loggers.

    Events for category ``cache`` go to ``repro.telemetry.cache`` and
    so on — the same logger tree :func:`repro.common.log.enable_tracing`
    switches on, so telemetry needs no second console plumbing.
    """

    def __init__(self) -> None:
        self._loggers: dict = {}

    def handle(self, event: Event) -> None:
        name = event.category_name
        logger = self._loggers.get(name)
        if logger is None:
            logger = get_logger(f"telemetry.{name}")
            self._loggers[name] = logger
        if logger.isEnabledFor(10):  # logging.DEBUG
            logger.debug("%s tile=%s t=%d %s", event.name, event.tile,
                         event.t, event.args)

    def close(self, bus: "TelemetryBus") -> None:
        pass
