"""Clock-skew sampling: per-tile deviation from global progress.

The paper's Figure 7 characterises the lax synchronization models by
how far individual tile clocks stray from the mean.  The sampler here
is the data source for that figure: on a fixed scheduler cadence it
reads every *active* tile thread's local clock and records the mean
together with the maximum positive and negative deviations — the skew
envelope.  With a ``sync`` channel attached, each sample also becomes
a telemetry event, so the envelope shows up in traces alongside the
barrier/P2P activity that shapes it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.telemetry.bus import Channel


class ClockSkewSampler:
    """Samples ``(mean, max-mean, min-mean)`` from active tile clocks.

    Appends to ``trace`` — the list surfaced as
    ``SimulationResult.skew_trace`` — using exactly the arithmetic the
    simulator always used, so Figure 7 outputs are unchanged; the event
    emission rides along.
    """

    def __init__(self, trace: List[Tuple[float, float, float]],
                 channel: Optional[Channel] = None) -> None:
        self.trace = trace
        self._channel = channel

    def __call__(self, scheduler) -> None:
        clocks = scheduler.active_thread_clocks()
        if len(clocks) < 2:
            return
        mean = sum(clocks) / len(clocks)
        hi = max(clocks)
        lo = min(clocks)
        self.trace.append((mean, hi - mean, lo - mean))
        if self._channel is not None:
            self._channel.emit("clock_skew", None, int(mean),
                               {"max_dev": hi - mean, "min_dev": lo - mean,
                                "threads": len(clocks)})
