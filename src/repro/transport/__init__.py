"""Physical transport layer (paper §3.3.1).

Provides generic point-to-point communication between tiles, abstracting
whether the two endpoints live in the same host process, different
processes on one machine, or different machines.  The paper's
implementation uses TCP/IP sockets; ours is an in-memory channel fabric
plus a host-cost model (`repro.host.costmodel`) that charges realistic
latencies for each locality class.  The API mirrors the paper's: the
network component is the only client, and the back end is swappable.
"""

from repro.transport.message import Message, MessageKind
from repro.transport.transport import Locality, Transport

__all__ = ["Locality", "Message", "MessageKind", "Transport"]
