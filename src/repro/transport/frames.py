"""Length-prefixed byte framing over stream sockets.

The byte-level building block under every socket-borne protocol in the
repo: the serve client/daemon channel today (:mod:`repro.serve.
protocol`), the multi-host TCP transport tomorrow.  A frame is a
4-byte big-endian length followed by that many payload bytes; the
framing layer moves opaque ``bytes`` and knows nothing about what they
encode — schema and versioning live with the protocol that owns the
payload.
"""

from __future__ import annotations

import socket
import struct
from typing import Optional

from repro.common.errors import TransportError

#: Frame length prefix: unsigned 32-bit big-endian.
_LENGTH = struct.Struct(">I")

#: Upper bound on one frame; a corrupt or hostile length prefix fails
#: here instead of as a multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(TransportError):
    """The byte stream violated the framing discipline.

    Raised for an oversized length prefix (corrupt or hostile peer)
    and for truncated reads — every way a stream can stop being a
    sequence of well-formed frames, as one typed error callers can
    catch without also swallowing unrelated transport failures.
    """


class ConnectionClosed(FrameError):
    """The peer closed the stream (possibly mid-frame)."""


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ConnectionClosed`."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed(
                f"peer closed with {remaining} of {count} bytes unread")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _frame_body(sock: socket.socket, header: bytes) -> bytes:
    length = _LENGTH.unpack(header)[0]
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"incoming frame claims {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return recv_exact(sock, length) if length else b""


def recv_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame (blocking)."""
    return _frame_body(sock, recv_exact(sock, _LENGTH.size))


def try_recv_frame(sock: socket.socket) -> Optional[bytes]:
    """Like :func:`recv_frame`, but ``None`` on a clean pre-frame EOF.

    A peer that closes between frames (a client done with its
    request/reply exchange) is normal protocol flow, not an error; a
    close *inside* a frame still raises :class:`ConnectionClosed`.
    """
    first = sock.recv(_LENGTH.size)
    if not first:
        return None
    header = first if len(first) == _LENGTH.size else \
        first + recv_exact(sock, _LENGTH.size - len(first))
    return _frame_body(sock, header)
