"""Messages carried by the physical transport.

Every inter-tile interaction in Graphite — memory-system coherence
traffic, application-level messages, system/control traffic — travels as
a :class:`Message` with a simulated-time *timestamp* set from the
sender's local clock (paper §3.6.1).  Timestamps are the only mechanism
by which loosely synchronized tiles agree on time.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.ids import TileId

_sequence = itertools.count()


class MessageKind(enum.Enum):
    """Traffic class of a message; selects the network model used."""

    #: Application-level messages sent via the user messaging API.
    USER = "user"
    #: Memory-subsystem traffic (coherence requests, data, DRAM).
    MEMORY = "memory"
    #: Simulator-internal control traffic (MCP/LCP, spawn, syscalls).
    #: Always routed over the zero-delay model so it cannot perturb
    #: simulation results (paper §3.3).
    SYSTEM = "system"


@dataclass
class Message:
    """A timestamped point-to-point message.

    ``timestamp`` is in target cycles at send time; the network model
    adds its modelled latency to produce ``arrival_time``.  Functionally
    the message is delivered immediately regardless of timestamps
    (paper §3.3: "the network forwards messages immediately and delivers
    them in the order they are received").
    """

    src: TileId
    dst: TileId
    kind: MessageKind
    payload: Any = None
    size_bytes: int = 8
    timestamp: int = 0
    #: Target-cycle arrival time; filled in by the network model.
    arrival_time: int = 0
    #: Monotonic sequence number preserving physical send order.
    seqno: int = field(default_factory=lambda: next(_sequence))
    #: Optional tag for user-API receive filtering.
    tag: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("message size must be non-negative")

    @property
    def latency(self) -> int:
        """Modelled network latency in target cycles."""
        return max(self.arrival_time - self.timestamp, 0)

    # -- pickling (wire format) ---------------------------------------------
    #
    # Messages cross process boundaries in the distributed backend, so
    # their pickled form is an explicit, versioned field tuple rather
    # than a raw ``__dict__`` dump.  Unpickling restores the original
    # ``seqno`` and does NOT consume the receiving process's sequence
    # counter: physical send order is assigned exactly once, by the
    # process that created the message.

    _PICKLE_VERSION = 1

    def __getstate__(self) -> tuple:
        return (self._PICKLE_VERSION, int(self.src), int(self.dst),
                self.kind.value, self.payload, self.size_bytes,
                self.timestamp, self.arrival_time, self.seqno, self.tag)

    def __setstate__(self, state: tuple) -> None:
        version = state[0]
        if version != self._PICKLE_VERSION:
            raise ValueError(
                f"Message pickle version {version!r} is not supported "
                f"(expected {self._PICKLE_VERSION})")
        (_, src, dst, kind, payload, size_bytes,
         timestamp, arrival_time, seqno, tag) = state
        self.src = TileId(src)
        self.dst = TileId(dst)
        self.kind = MessageKind(kind)
        self.payload = payload
        self.size_bytes = size_bytes
        self.timestamp = timestamp
        self.arrival_time = arrival_time
        self.seqno = seqno
        self.tag = tag
