"""The transport fabric: per-tile delivery queues over the cluster layout.

All inter-tile communication — coherence traffic, user messages, system
control — goes through :class:`Transport` (paper §3.3.1).  Delivery is
physically immediate (a deque append) and in physical send order, which
is exactly the paper's semantics: the network forwards messages
immediately regardless of their simulated timestamps.  Host-time costs
of message transfer are charged separately by the scheduler using the
locality class this module reports.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.common.errors import TransportError
from repro.common.ids import TileId
from repro.common.stats import StatGroup
from repro.host.cluster import ClusterLayout, Locality
from repro.transport.message import Message, MessageKind

#: Called for every delivered message: (message, locality).  Used by the
#: scheduler to charge host communication costs.
DeliveryHook = Callable[[Message, Locality], None]


class Transport:
    """In-memory message fabric between tiles.

    Each tile owns one inbound FIFO per traffic class.  ``send`` is the
    only mutation entry point; receivers either poll (memory/system
    handlers) or block via the scheduler (user messaging API).
    """

    def __init__(self, layout: ClusterLayout,
                 stats: Optional[StatGroup] = None) -> None:
        self.layout = layout
        self._queues: List[Dict[MessageKind, Deque[Message]]] = [
            {kind: deque() for kind in MessageKind}
            for _ in range(layout.num_tiles)
        ]
        self._hooks: List[DeliveryHook] = []
        self.stats = stats if stats is not None else StatGroup("transport")
        self._sent = self.stats.counter("messages_sent")
        self._bytes = self.stats.counter("bytes_sent")
        self._by_locality = {
            loc: self.stats.counter(f"messages_{loc.value}")
            for loc in Locality
        }

    def add_delivery_hook(self, hook: DeliveryHook) -> None:
        """Register a callback fired on every delivery (cost charging)."""
        self._hooks.append(hook)

    # -- sending ------------------------------------------------------------

    def send(self, message: Message) -> Locality:
        """Deliver ``message`` to its destination queue immediately.

        Returns the locality class of the transfer so callers can charge
        modelled costs.
        """
        dst = int(message.dst)
        if not 0 <= dst < self.layout.num_tiles:
            raise TransportError(f"destination tile {dst} out of range")
        if not 0 <= int(message.src) < self.layout.num_tiles:
            raise TransportError(f"source tile {int(message.src)} out of range")
        locality = self.layout.locality(message.src, message.dst)
        self._deliver(message)
        self._sent.add()
        self._bytes.add(message.size_bytes)
        self._by_locality[locality].add()
        for hook in self._hooks:
            hook(message, locality)
        return locality

    def _deliver(self, message: Message) -> None:
        """Place a validated message in its destination queue.

        The single physical delivery point: subclasses (e.g. the
        distributed backend's :class:`~repro.distrib.shard.ShardTransport`)
        override this to route the message to the process owning the
        destination tile instead of a local queue.
        """
        self._queues[int(message.dst)][message.kind].append(message)

    def account(self, src: TileId, dst: TileId, kind: MessageKind,
                size_bytes: int) -> Locality:
        """Account for a transfer that is processed synchronously.

        Coherence and system-control messages are serviced at the
        destination the moment they are sent (the engine processes them
        inline), so nothing is enqueued — but the transfer still
        happened physically: statistics and host-cost hooks fire exactly
        as for :meth:`send`.
        """
        locality = self.layout.locality(src, dst)
        self._sent.add()
        self._bytes.add(size_bytes)
        self._by_locality[locality].add()
        if self._hooks:
            message = Message(src=src, dst=dst, kind=kind,
                              size_bytes=size_bytes)
            for hook in self._hooks:
                hook(message, locality)
        return locality

    # -- receiving ----------------------------------------------------------

    def poll(self, tile: TileId, kind: MessageKind) -> Optional[Message]:
        """Dequeue the oldest pending message of ``kind``, if any."""
        queue = self._queues[int(tile)][kind]
        return queue.popleft() if queue else None

    def poll_match(self, tile: TileId, kind: MessageKind,
                   src: Optional[TileId] = None,
                   tag: Optional[int] = None) -> Optional[Message]:
        """Dequeue the oldest message matching ``src``/``tag`` filters.

        Non-matching messages stay queued in order, mirroring tagged
        receive in the user messaging API.
        """
        queue = self._queues[int(tile)][kind]
        for i, msg in enumerate(queue):
            if src is not None and msg.src != src:
                continue
            if tag is not None and msg.tag != tag:
                continue
            del queue[i]
            return msg
        return None

    def pending(self, tile: TileId, kind: MessageKind) -> int:
        """Number of queued messages of ``kind`` at ``tile``."""
        return len(self._queues[int(tile)][kind])

    def total_pending(self) -> int:
        """Total queued messages across all tiles (deadlock detection)."""
        return sum(len(q) for per_tile in self._queues
                   for q in per_tile.values())
