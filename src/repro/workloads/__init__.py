"""Target workloads: SPLASH-2 / PARSEC pattern-faithful kernels.

Real Graphite runs unmodified x86 SPLASH-2 and PARSEC binaries; our
front-end runs Python generator programs instead (see DESIGN.md).  Each
kernel here reimplements its benchmark's *data layout and sharing
pattern* — the properties the paper's evaluation actually measures:

* computation-to-communication ratio (Figure 4 / Table 2 scaling),
* allocation contiguity and spatial locality (Figure 8 miss rates),
* record ownership and read-sharing (Figure 8 true/false sharing),
* synchronization structure (Table 3 / Figures 6-7 accuracy studies),
* read-only broadcast sharing (Figure 9 coherence study).

Every workload also computes a real result that is validated at the end
of the run, so the coherent memory system is exercised functionally.
"""

from repro.workloads.base import (
    WORKLOADS,
    WorkloadFactory,
    get_workload,
    register_workload,
)
# Importing the modules registers the workloads.
from repro.workloads import (  # noqa: F401
    barnes,
    blackscholes,
    cholesky,
    fft,
    fmm,
    lu,
    matmul,
    ocean,
    radix,
    water,
)

__all__ = [
    "WORKLOADS",
    "WorkloadFactory",
    "get_workload",
    "register_workload",
]
